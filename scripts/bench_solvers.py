"""Solver benchmark: sweep engines (full / dirty-full-scan / dirty) and
serial vs persistent-pool parallel restarts.

Times, on the PR-1 ``bls_cell`` scenario (NYC scale, seed 7):

* **the BLS local-search loop** under all three engines — ``"full"``
  (rescan every billboard every sweep), ``"dirty-full-scan"`` (PR-3:
  version-counter certificates choose *which* billboards to scan, but each
  surviving scan still popcounts every row), and ``"dirty"`` (this PR:
  surviving scans are restricted to the screened candidate ids, so the
  kernel popcounts ``|candidates| × words`` instead of ``n × words``).  All
  three must report identical total regret and accepted-move counts — the
  benchmark *fails* otherwise.  ``restricted_speedup`` is the
  dirty-full-scan → dirty ratio, i.e. the gain attributable purely to
  row restriction;
* **random restarts** — ``RandomizedLocalSearch(restarts=N)`` run serially
  vs fanned out over a *persistent* shared-memory worker pool
  (:mod:`repro.parallel.pool`).  An untimed warm-up spawns the pool (and
  collects ``shm.attach`` / ``pool.spawn`` under observability); the timed
  runs then execute with observability off in both parent and workers —
  symmetric conditions — against the already-warm pool, which is what
  repeated driver calls (restart batches, harness cells) actually pay.
  The best allocation must be identical to serial.

``best_restart`` uses ``-1`` as a sentinel meaning the deterministic greedy
start was never beaten by a random restart; restart indices count from 0.

Appends to ``BENCH_solvers.json`` — an append-only, commit-stamped time
series (see ``scripts/_bench_history.py``); ``--gate-regression 1.15`` fails
the run when any timing is >15% slower than the best recorded run of the
same scenario.

Usage::

    PYTHONPATH=src python scripts/bench_solvers.py            # full bench
    PYTHONPATH=src python scripts/bench_solvers.py --smoke    # seconds-fast
    PYTHONPATH=src python scripts/bench_solvers.py --smoke \
        --assert-parallel-speedup 1.0                         # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _bench_history

from repro import env, obs
from repro.algorithms.bls import SWEEP_ENGINES, billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.market.scenario import Scenario
from repro.obs import ledger
from repro.parallel.pool import OVERSUBSCRIBE_ENV, close_all_pools

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_commit() -> str:
    """Hash of the commit that produced this report (``unknown`` outside git).

    A ``-dirty`` suffix marks reports produced from an uncommitted tree; the
    head hash itself comes from the shared :mod:`repro.obs.ledger` helper.
    """
    head = ledger.git_commit()
    if head == "unknown":
        return head
    try:
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout.strip()
        return f"{head}-dirty" if dirty else head
    except Exception:
        return head


def bench_sweep_engines(instance: MROAMInstance, repeats: int = 3) -> dict:
    """Best-of-``repeats`` timings of the BLS loop under all three engines.

    The greedy start is rebuilt (not cloned) per run so no engine benefits
    from warm allocation state; only the local-search loop is timed.
    Hard-fails unless every engine lands on the identical regret and
    accepted-move counts.
    """
    # Interleave the repeats across engines (like the parallel-restart
    # section) so background-load drift hits every engine equally; best-of
    # per engine.
    timings: dict = {engine: float("inf") for engine in SWEEP_ENGINES}
    outcomes: dict = {}
    for _ in range(repeats):
        for engine in SWEEP_ENGINES:
            allocation = Allocation(instance)
            synchronous_greedy(allocation)
            stats: dict = {}
            started = time.perf_counter()
            billboard_driven_local_search(allocation, stats=stats, engine=engine)
            timings[engine] = min(timings[engine], time.perf_counter() - started)
            outcomes[engine] = {
                "total_regret": allocation.total_regret(),
                "bls_exchanges": stats.get("bls_exchanges", 0),
                "bls_releases": stats.get("bls_releases", 0),
                "bls_topups": stats.get("bls_topups", 0),
                "bls_exchange_evaluated": stats.get("bls_exchange_evaluated", 0),
                "bls_dirty_scanned": stats.get("bls_dirty_scanned"),
                "bls_dirty_skipped": stats.get("bls_dirty_skipped"),
            }

    for engine in SWEEP_ENGINES:
        assert (
            outcomes[engine]["total_regret"] == outcomes["full"]["total_regret"]
        ), (
            f"{engine} engine diverged from full-scan regret: "
            f"{outcomes[engine]['total_regret']} != {outcomes['full']['total_regret']}"
        )
        for key in ("bls_exchanges", "bls_releases", "bls_topups"):
            assert outcomes[engine][key] == outcomes["full"][key], (
                f"{engine} engine accepted a different move sequence ({key}: "
                f"{outcomes[engine][key]} != {outcomes['full'][key]})"
            )
    return {
        "full_engine_s": timings["full"],
        "dirty_full_scan_engine_s": timings["dirty-full-scan"],
        "dirty_engine_s": timings["dirty"],
        "speedup": timings["full"] / timings["dirty"]
        if timings["dirty"] > 0
        else float("inf"),
        "restricted_speedup": timings["dirty-full-scan"] / timings["dirty"]
        if timings["dirty"] > 0
        else float("inf"),
        "total_regret": outcomes["dirty"]["total_regret"],
        **{engine: outcomes[engine] for engine in SWEEP_ENGINES},
    }


def collect_restricted_rows(instance: MROAMInstance) -> tuple[dict, dict]:
    """Restricted-row and sweep-phase telemetry of one instrumented dirty run.

    Runs *outside* the timed sections with collection enabled.  Restricted
    batch dispatches record the number of rows they actually compute (under
    either kernel); ``max`` far below ``num_billboards`` is the observable
    proof that surviving scans no longer touch the full matrix.  The same
    pass's ``bls.phase.*`` histograms yield the dirty engine's wall split —
    ``screen_share`` is the fraction the exchange screen takes of the summed
    phase wall, the number the round-fused screen (DESIGN.md §13) drives
    down.
    """
    obs.enable()
    obs.reset()
    try:
        allocation = Allocation(instance)
        synchronous_greedy(allocation)
        billboard_driven_local_search(allocation, engine="dirty")
        histogram = obs.get_registry().histogram("influence.popcount.rows")
        empty = histogram.count == 0
        rows = {
            "count": histogram.count,
            "total": histogram.total,
            "min": None if empty else histogram.min,
            "max": None if empty else histogram.max,
            "mean": histogram.mean,
            "num_billboards": instance.num_billboards,
            "note": (
                "rows computed per restricted batch dispatch (either kernel); "
                "max far below num_billboards is the restriction at work"
            ),
        }
        phase_names = ("screen", "exchange", "release", "topup", "verify")
        phases = {
            name: obs.get_registry().histogram(f"bls.phase.{name}").total
            for name in phase_names
        }
        phase_wall = sum(phases.values())
        phases = {f"{name}_s": seconds for name, seconds in phases.items()}
        phases["sweeps"] = obs.get_registry().histogram("bls.phase.screen").count
        phases["screen_share"] = (
            phases["screen_s"] / phase_wall if phase_wall > 0 else 0.0
        )
        phases["screen_rounds"] = int(
            obs.counter_value("bls.screen.rounds")
        )
        phases["note"] = (
            "one instrumented dirty-BLS pass; screen_share = screen wall / "
            "summed phase wall"
        )
        return rows, phases
    finally:
        obs.disable()
        obs.reset()


def bench_parallel_restarts(
    instance: MROAMInstance,
    restarts: int,
    workers: int,
    seed: int,
    repeats: int = 4,
    restart_batch_size="auto",
) -> dict:
    """Serial vs persistent-pool parallel restarts; identical best allocation.

    Three phases keep the timing honest:

    1. *warm-up* (untimed, observability on) — spawns the persistent pool,
       collecting ``shm.attach`` / ``pool.spawn``;
    2. *timed* (observability off in parent **and** workers) — best-of-
       ``repeats`` serial vs best-of-``repeats`` parallel against the warm
       pool, which is the steady-state cost of every driver call after the
       first;
    3. *reuse proof* (untimed, observability on) — one more parallel call,
       which must hit the live pool (``pool.reuse``), not spawn a new one.
    """

    def solver(pool_workers: int | None) -> RandomizedLocalSearch:
        return RandomizedLocalSearch(
            "bls",
            restarts=restarts,
            seed=seed,
            restart_workers=pool_workers,
            restart_batch_size=restart_batch_size,
        )

    obs.enable()
    obs.reset()
    try:
        warmup = solver(workers).solve(instance)
        spawn_counters = dict(obs.get_registry().counters)
        task_spans = obs.get_registry().histogram("span.pool.task")
        batch_sizes = obs.get_registry().histogram("pool.task.batch")
        grain = {
            "tasks": int(task_spans.count),
            "restarts_per_task": float(batch_sizes.mean)
            if batch_sizes.count
            else 1.0,
            "mean_task_compute_s": float(task_spans.mean)
            if task_spans.count
            else None,
            "note": (
                "from the obs-on warm-up run: pool.task span count / mean "
                "seconds, pool.task.batch = restarts packed per task"
            ),
        }
    finally:
        obs.disable()
        obs.reset()

    # Interleave the repeats (serial, parallel, serial, parallel, ...) so a
    # drift in background load hits both sides equally; best-of each.
    serial_s = parallel_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        serial = solver(None).solve(instance)
        serial_s = min(serial_s, time.perf_counter() - started)
        started = time.perf_counter()
        parallel = solver(workers).solve(instance)
        parallel_s = min(parallel_s, time.perf_counter() - started)

    obs.enable()
    obs.reset()
    try:
        solver(workers).solve(instance)
        reuse_counters = dict(obs.get_registry().counters)
    finally:
        obs.disable()
        obs.reset()

    for run, label in ((warmup, "warm-up"), (parallel, "timed")):
        assert (
            run.allocation.assignment_map() == serial.allocation.assignment_map()
        ), f"{label} parallel restarts reached a different allocation than serial"
        assert run.total_regret == serial.total_regret
        assert run.stats.get("best_restart") == serial.stats.get("best_restart")
    assert int(reuse_counters.get("pool.spawn", 0)) == 0, (
        "the reuse-proof call spawned a fresh pool — persistence is broken"
    )
    return {
        "restarts": restarts,
        "workers": workers,
        "restart_batch_size": restart_batch_size,
        "grain": grain,
        "timed_repeats": repeats,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "total_regret": serial.total_regret,
        "best_restart": serial.stats.get("best_restart"),
        "best_restart_note": (
            "-1 = the deterministic greedy start; random restarts count from 0"
        ),
        "shm_attach": int(spawn_counters.get("shm.attach", 0)),
        "shm_create": int(spawn_counters.get("shm.create", 0)),
        "pool_spawn": int(spawn_counters.get("pool.spawn", 0)),
        "pool_reuse": int(reuse_counters.get("pool.reuse", 0)),
        "timing_note": (
            "timed runs execute with observability off in parent and workers "
            "against the pool spawned during the untimed warm-up"
        ),
    }


def traced_engine_passes(instance: MROAMInstance) -> None:
    """One fully-instrumented BLS pass per engine, for the trace artifact.

    Runs with collection *and* tracing on (outside the timed sections): each
    pass contributes per-sweep ``bls.sweep`` phase events, and the kernel
    dispatch counter deltas of the pass are stamped as a ``kernel.dispatch``
    instant event so the report can attribute kernel choice per engine.
    """
    attributed = ("influence.dispatch.", "influence.kernel.", "influence.tier.")
    for engine in SWEEP_ENGINES:
        before = dict(obs.get_registry().counters)
        allocation = Allocation(instance)
        synchronous_greedy(allocation)
        billboard_driven_local_search(allocation, engine=engine)
        after = obs.get_registry().counters
        delta = {
            name: after[name] - before.get(name, 0)
            for name in after
            if name.startswith(attributed) and after[name] != before.get(name, 0)
        }
        obs.emit_instant("kernel.dispatch", {"engine": engine, **delta})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny city + few restarts (CI wiring)"
    )
    parser.add_argument("--output", default="BENCH_solvers.json")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a clock-aligned Chrome trace of the whole bench (worker "
        "pids included) to this JSON file; implies pool oversubscription so "
        f"multi-worker traces exist even on 1-CPU runners; ${obs.TRACE_ENV} "
        "is the default",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append per-section outcome records to this JSONL ledger; "
        f"${obs.LEDGER_ENV} is the default",
    )
    parser.add_argument(
        "--assert-parallel-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless warm-pool parallel restarts reach X× over serial",
    )
    parser.add_argument(
        "--assert-restricted-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the dirty engine reaches X× over dirty-full-scan",
    )
    parser.add_argument(
        "--gate-regression",
        type=float,
        default=None,
        nargs="?",
        const=_bench_history.DEFAULT_THRESHOLD,
        metavar="X",
        help="fail when any timing exceeds X times the best recorded run of "
        f"the same scenario (default X={_bench_history.DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    if args.ledger is not None:
        os.environ[obs.LEDGER_ENV] = args.ledger
    trace_out = args.trace_out or env.OBS_TRACE.raw()
    if trace_out is not None:
        # Attribution needs real worker processes even on 1-CPU runners; the
        # oversubscription knob lifts the affinity cap for this (non-timing)
        # run.  Must be exported before the first pool spawns.
        os.environ.setdefault(OVERSUBSCRIBE_ENV, "1")
        obs.trace_enable(out=trace_out)

    if args.smoke:
        scenario = Scenario(
            dataset="nyc", n_billboards=200, n_trajectories=2_000, seed=args.seed
        )
        repeats, restarts, workers = 2, 6, 2
    else:
        scenario = Scenario(
            dataset="nyc", n_billboards=800, n_trajectories=8_000, seed=args.seed
        )
        repeats, restarts, workers = 5, 4, 2

    instance = scenario.build_instance()
    sweep_engines = bench_sweep_engines(instance, repeats=repeats)
    restricted_rows, sweep_phases = collect_restricted_rows(instance)
    parallel = bench_parallel_restarts(
        instance, restarts=restarts, workers=workers, seed=args.seed, repeats=repeats
    )

    report = {
        "benchmark": "solver-sweep-engine",
        "smoke": bool(args.smoke),
        "commit": git_commit(),
        "scenario": {
            "dataset": scenario.dataset,
            "n_billboards": scenario.n_billboards,
            "n_trajectories": scenario.n_trajectories,
            "lambda_m": scenario.lambda_m,
            "seed": scenario.seed,
        },
        "machine": {"python": platform.python_version(), "numpy": np.__version__},
        "bls_local_search": sweep_engines,
        "restricted_rows": restricted_rows,
        "bls_sweep_phases": sweep_phases,
        "parallel_restarts": parallel,
    }
    path = Path(args.output)
    prior = _bench_history.load_history(path)
    history = _bench_history.append_run(path, report)
    print(json.dumps(report, indent=2))
    print(f"\nappended run {len(history['runs'])} to {path}")

    if ledger.enabled():
        timing_keys = {
            "full": "full_engine_s",
            "dirty-full-scan": "dirty_full_scan_engine_s",
            "dirty": "dirty_engine_s",
        }
        for engine in SWEEP_ENGINES:
            ledger.record_run(
                "bench.sweep",
                instance=instance,
                engine=engine,
                wall_s=float(sweep_engines[timing_keys[engine]]),
                regret=float(sweep_engines["total_regret"]),
                smoke=bool(args.smoke),
            )
        ledger.record_run(
            "bench.restarts",
            instance=instance,
            engine="dirty",
            workers=int(parallel["workers"]),
            restarts=int(parallel["restarts"]),
            serial_s=float(parallel["serial_s"]),
            wall_s=float(parallel["parallel_s"]),
            speedup=float(parallel["speedup"]),
            regret=float(parallel["total_regret"]),
            grain=parallel["grain"],
            smoke=bool(args.smoke),
        )
        print(f"appended ledger records to {ledger.ledger_path()}")

    if obs.trace_enabled():
        # Per-engine instrumented passes for the trace artifact, then retire
        # the pools so every worker's teardown spill is on disk before the
        # trace is assembled.
        obs.enable()
        traced_engine_passes(instance)
        close_all_pools()
        trace_path = obs.write_trace()
        print(f"wrote Chrome trace to {trace_path}")
        obs.trace_disable()
        obs.disable()

    if args.gate_regression is not None:
        failures = _bench_history.gate_regression(prior, report, args.gate_regression)
        if failures:
            print("\nREGRESSION GATE FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression gate passed (threshold {args.gate_regression:.2f}x)")
    if args.assert_parallel_speedup is not None:
        cpus = os.cpu_count() or 1
        if cpus < 2:
            # A 1-CPU runner cannot produce a parallel speedup: either the
            # affinity cap collapses the pool to one worker, or (with
            # REPRO_POOL_OVERSUBSCRIBE, e.g. under --trace-out) two workers
            # time-slice one core.  Asserting would only flake.
            mode = (
                "oversubscribed pool"
                if env.POOL_OVERSUBSCRIBE.is_set()
                else "affinity-capped pool"
            )
            print(
                f"skipping --assert-parallel-speedup "
                f"{args.assert_parallel_speedup}: os.cpu_count()={cpus} "
                f"({mode}) — this hardware cannot produce a parallel "
                f"speedup (measured {parallel['speedup']:.3f}x)",
                file=sys.stderr,
            )
        else:
            assert parallel["speedup"] >= args.assert_parallel_speedup, (
                f"warm-pool parallel speedup {parallel['speedup']:.3f} below "
                f"the required {args.assert_parallel_speedup}"
            )
    if args.assert_restricted_speedup is not None:
        assert sweep_engines["restricted_speedup"] >= args.assert_restricted_speedup, (
            f"restricted-kernel speedup {sweep_engines['restricted_speedup']:.3f} "
            f"below the required {args.assert_restricted_speedup}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
