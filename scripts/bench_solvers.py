"""Solver benchmark: dirty-set sweep engine vs full rescans, serial vs
shared-memory parallel restarts.

Times, on the PR-1 ``bls_cell`` scenario (NYC scale, seed 7):

* **the BLS local-search loop** — a synchronous-greedy start refined by
  ``billboard_driven_local_search`` with ``engine="full"`` (rescan every
  billboard every sweep) vs ``engine="dirty"`` (version-counter certificates
  skip provably unchanged scans; one final unrestricted sweep before
  declaring local optimality).  Both engines must report the identical total
  regret and accepted-move counts — the benchmark *fails* otherwise;
* **random restarts** — ``RandomizedLocalSearch(restarts=N)`` run serially
  vs fanned out over ``restart_workers`` processes attached to one
  shared-memory coverage index.  The best allocation must be identical.

Writes ``BENCH_solvers.json``.

Usage::

    PYTHONPATH=src python scripts/bench_solvers.py            # full bench
    PYTHONPATH=src python scripts/bench_solvers.py --smoke    # seconds-fast
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.market.scenario import Scenario


def bench_sweep_engines(
    instance: MROAMInstance, repeats: int = 3
) -> dict:
    """Best-of-``repeats`` timings of the BLS loop after a greedy start.

    The greedy start is rebuilt (not cloned) per run so neither engine
    benefits from warm allocation state; only the local-search loop is
    timed.  Hard-fails unless both engines land on the identical regret and
    accepted-move counts.
    """
    timings: dict = {}
    outcomes: dict = {}
    for engine in ("full", "dirty"):
        best_s = float("inf")
        for _ in range(repeats):
            allocation = Allocation(instance)
            synchronous_greedy(allocation)
            stats: dict = {}
            started = time.perf_counter()
            billboard_driven_local_search(allocation, stats=stats, engine=engine)
            best_s = min(best_s, time.perf_counter() - started)
            outcomes[engine] = {
                "total_regret": allocation.total_regret(),
                "bls_exchanges": stats.get("bls_exchanges", 0),
                "bls_releases": stats.get("bls_releases", 0),
                "bls_topups": stats.get("bls_topups", 0),
                "bls_exchange_evaluated": stats.get("bls_exchange_evaluated", 0),
                "bls_dirty_scanned": stats.get("bls_dirty_scanned"),
                "bls_dirty_skipped": stats.get("bls_dirty_skipped"),
            }
        timings[engine] = best_s

    assert outcomes["dirty"]["total_regret"] == outcomes["full"]["total_regret"], (
        "dirty engine diverged from full-scan regret: "
        f"{outcomes['dirty']['total_regret']} != {outcomes['full']['total_regret']}"
    )
    for key in ("bls_exchanges", "bls_releases", "bls_topups"):
        assert outcomes["dirty"][key] == outcomes["full"][key], (
            f"dirty engine accepted a different move sequence ({key}: "
            f"{outcomes['dirty'][key]} != {outcomes['full'][key]})"
        )
    return {
        "full_engine_s": timings["full"],
        "dirty_engine_s": timings["dirty"],
        "speedup": timings["full"] / timings["dirty"]
        if timings["dirty"] > 0
        else float("inf"),
        "total_regret": outcomes["dirty"]["total_regret"],
        "full": outcomes["full"],
        "dirty": outcomes["dirty"],
    }


def bench_parallel_restarts(
    instance: MROAMInstance, restarts: int, workers: int, seed: int
) -> dict:
    """Serial vs shared-memory-parallel restarts; identical best allocation.

    On a single-core container the parallel wall clock can exceed the serial
    one — the numbers are reported honestly either way; the identical-result
    assertion is the gate.
    """
    started = time.perf_counter()
    serial = RandomizedLocalSearch("bls", restarts=restarts, seed=seed).solve(instance)
    serial_s = time.perf_counter() - started

    obs.enable()
    obs.reset()
    try:
        started = time.perf_counter()
        parallel = RandomizedLocalSearch(
            "bls", restarts=restarts, seed=seed, restart_workers=workers
        ).solve(instance)
        parallel_s = time.perf_counter() - started
        counters = dict(obs.get_registry().counters)
    finally:
        obs.disable()
        obs.reset()

    assert (
        parallel.allocation.assignment_map() == serial.allocation.assignment_map()
    ), "parallel restarts reached a different allocation than serial restarts"
    assert parallel.total_regret == serial.total_regret
    return {
        "restarts": restarts,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "total_regret": serial.total_regret,
        "best_restart": serial.stats.get("best_restart"),
        "shm_attach": int(counters.get("shm.attach", 0)),
        "shm_create": int(counters.get("shm.create", 0)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny city + few restarts (CI wiring)"
    )
    parser.add_argument("--output", default="BENCH_solvers.json")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        scenario = Scenario(
            dataset="nyc", n_billboards=60, n_trajectories=400, seed=args.seed
        )
        repeats, restarts, workers = 1, 2, 2
    else:
        scenario = Scenario(
            dataset="nyc", n_billboards=800, n_trajectories=8_000, seed=args.seed
        )
        repeats, restarts, workers = 3, 4, 2

    instance = scenario.build_instance()
    sweep_engines = bench_sweep_engines(instance, repeats=repeats)
    parallel = bench_parallel_restarts(
        instance, restarts=restarts, workers=workers, seed=args.seed
    )

    report = {
        "benchmark": "solver-sweep-engine",
        "smoke": bool(args.smoke),
        "scenario": {
            "dataset": scenario.dataset,
            "n_billboards": scenario.n_billboards,
            "n_trajectories": scenario.n_trajectories,
            "lambda_m": scenario.lambda_m,
            "seed": scenario.seed,
        },
        "machine": {"python": platform.python_version(), "numpy": np.__version__},
        "bls_local_search": sweep_engines,
        "parallel_restarts": parallel,
    }
    path = Path(args.output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
