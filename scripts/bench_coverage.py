"""Coverage-kernel benchmark: seed (id-array) vs packed-bitmap kernels.

Times, on the default NYC-scale benchmark city:

* **index build** — the seed's per-billboard grid-query loop vs the batched
  cell-bucket join now used by :class:`CoverageIndex`;
* **1k ``influence_of_set`` queries** — the seed ``np.unique(concatenate)``
  id-array kernel vs the packed-bitmap OR/popcount kernel;
* **a BLS cell** — the full billboard-driven local search solved with the
  bitmap kernel disabled vs enabled (the ``influence_of_set``-heavy workload
  of the paper's efficiency study).

Appends to ``BENCH_coverage.json`` — an append-only, commit-stamped time
series (see ``scripts/_bench_history.py``); ``--gate-regression 1.15`` fails
the run when any timing is >15% slower than the best recorded run of the
same scenario.

Usage::

    PYTHONPATH=src python scripts/bench_coverage.py            # full bench
    PYTHONPATH=src python scripts/bench_coverage.py --smoke    # seconds-fast
    PYTHONPATH=src python scripts/bench_coverage.py \
        --gate-regression 1.15                                 # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _bench_history

from repro import env, obs
from repro.billboard import coverage_cache
from repro.billboard.influence import BITMAP_BUDGET_ENV, CoverageIndex
from repro.billboard.model import BillboardDB
from repro.experiments.harness import run_cell
from repro.market.scenario import Scenario
from repro.obs import ledger
from repro.spatial.grid import GridIndex
from repro.trajectory.model import TrajectoryDB
from repro.utils.rng import as_generator

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_commit() -> str:
    """Hash of the commit that produced this report (``unknown`` outside git).

    A ``-dirty`` suffix marks reports produced from an uncommitted tree; the
    head hash itself comes from the shared :mod:`repro.obs.ledger` helper so
    every artifact (bench history, run ledger, trace) stamps the same id.
    """
    head = ledger.git_commit()
    if head == "unknown":
        return head
    try:
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout.strip()
        return f"{head}-dirty" if dirty else head
    except Exception:
        return head


def legacy_covered_lists(
    billboards: BillboardDB, trajectories: TrajectoryDB, lambda_m: float
) -> list[np.ndarray]:
    """The seed repo's coverage build: one Python-level grid query per billboard."""
    grid = GridIndex(trajectories.all_points, cell_size=lambda_m)
    point_owner = np.repeat(
        np.arange(len(trajectories), dtype=np.int64), trajectories.point_counts
    )
    covered = []
    for billboard in billboards:
        hits = grid.query_radius(billboard.location.x, billboard.location.y, lambda_m)
        covered.append(np.unique(point_owner[hits]))
    return covered


def bench_build(scenario: Scenario, repeats: int = 3) -> tuple[dict, CoverageIndex]:
    """Best-of-``repeats`` timings so first-call overheads don't skew either side."""
    city = scenario.build_city()
    legacy_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        legacy = legacy_covered_lists(
            city.billboards, city.trajectories, scenario.lambda_m
        )
        legacy_s = min(legacy_s, time.perf_counter() - started)

    vectorized_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        index = CoverageIndex(
            city.billboards, city.trajectories, lambda_m=scenario.lambda_m
        )
        vectorized_s = min(vectorized_s, time.perf_counter() - started)

    for billboard_id in range(index.num_billboards):
        assert np.array_equal(legacy[billboard_id], index.covered_by(billboard_id)), (
            f"vectorized join disagrees with legacy build at billboard {billboard_id}"
        )
    return {
        "legacy_loop_s": legacy_s,
        "vectorized_join_s": vectorized_s,
        "speedup": legacy_s / vectorized_s if vectorized_s > 0 else float("inf"),
        "note": "legacy loop also runs on the rewritten CSR grid, so this "
        "under-reports the gain over the seed's dict-of-cells grid",
    }, index


def bench_influence_queries(index: CoverageIndex, num_queries: int, seed: int = 0) -> dict:
    rng = as_generator(seed)
    max_set = max(2, min(50, index.num_billboards))
    query_sets = [
        rng.choice(
            index.num_billboards, size=int(rng.integers(1, max_set)), replace=False
        ).tolist()
        for _ in range(num_queries)
    ]
    assert index.has_bitmap, "bitmap kernel unavailable — raise REPRO_BITMAP_BUDGET_MB"

    started = time.perf_counter()
    ids_answers = [index.influence_of_set_ids(s) for s in query_sets]
    ids_s = time.perf_counter() - started

    started = time.perf_counter()
    bitmap_answers = [index.influence_of_set(s) for s in query_sets]
    bitmap_s = time.perf_counter() - started

    assert ids_answers == bitmap_answers, "bitmap kernel disagrees with id kernel"
    return {
        "queries": num_queries,
        "id_array_s": ids_s,
        "bitmap_s": bitmap_s,
        "speedup": ids_s / bitmap_s if bitmap_s > 0 else float("inf"),
    }


def bench_bls_cell(scenario: Scenario, restarts: int) -> dict:
    """One BLS cell solved with the bitmap kernel off vs on.

    Fresh cities per mode so no coverage cache leaks across the comparison;
    the regret outcome must be identical (the kernels are bit-identical).
    """
    timings = {}
    regrets = {}
    for label, budget in (("id_array_s", "0"), ("bitmap_s", "")):
        with env.temporary(BITMAP_BUDGET_ENV, budget or None):
            city = scenario.build_city()
            instance = scenario.build_instance(city)
            started = time.perf_counter()
            metrics = run_cell(
                scenario, methods=["bls"], restarts=restarts, instance=instance
            )
            timings[label] = time.perf_counter() - started
            regrets[label] = metrics["bls"].total_regret
    assert regrets["id_array_s"] == regrets["bitmap_s"], (
        "BLS reached different regret under the two kernels"
    )
    return {
        **timings,
        "total_regret": regrets["bitmap_s"],
        "restarts": restarts,
        "speedup": timings["id_array_s"] / timings["bitmap_s"]
        if timings["bitmap_s"] > 0
        else float("inf"),
    }


def collect_obs_columns(scenario: Scenario, index: CoverageIndex, seed: int) -> dict:
    """Kernel-dispatch and cache-hit counters for the BENCH JSON.

    Runs *outside* the timed sections with collection enabled: a short
    instrumented replay of both query kernels, plus one cold + one warm
    coverage-cache round trip in a temporary directory, so the timed
    benchmark itself keeps the (default, disabled) no-op instrumentation
    path that the <5% regression criterion measures.
    """
    rng = as_generator(seed)
    max_set = max(2, min(50, index.num_billboards))
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        for _ in range(50):
            ids = rng.choice(
                index.num_billboards, size=int(rng.integers(1, max_set)), replace=False
            ).tolist()
            index.influence_of_set(ids)
            index.influence_of_set_ids(ids)
            index.batch_add_gains(np.zeros(index.num_trajectories, dtype=np.int64))
        city = scenario.build_city()
        with tempfile.TemporaryDirectory() as cache_dir:
            for _ in range(2):  # cold miss, then warm hit
                coverage_cache.get_or_build(
                    city.billboards,
                    city.trajectories,
                    lambda_m=scenario.lambda_m,
                    cache_dir=cache_dir,
                )
        counters = dict(obs.get_registry().counters)
    finally:
        if was_enabled:
            obs.reset()
        else:
            obs.disable()
    keys = (
        "influence.dispatch.idarray",
        "influence.dispatch.bitmap",
        "influence.bitmap.builds",
        "coverage_cache.hit",
        "coverage_cache.miss",
    )
    return {key: int(counters.get(key, 0)) for key in keys}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny city + few queries (CI wiring)"
    )
    parser.add_argument("--output", default="BENCH_coverage.json")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--gate-regression",
        type=float,
        default=None,
        nargs="?",
        const=_bench_history.DEFAULT_THRESHOLD,
        metavar="X",
        help="fail when any timing exceeds X times the best recorded run of "
        f"the same scenario (default X={_bench_history.DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scenario = Scenario(
            dataset="nyc", n_billboards=60, n_trajectories=400, seed=args.seed
        )
        num_queries, restarts = 100, 1
    else:
        scenario = Scenario(
            dataset="nyc", n_billboards=800, n_trajectories=8_000, seed=args.seed
        )
        num_queries, restarts = 1_000, 1

    build, index = bench_build(scenario)
    queries = bench_influence_queries(index, num_queries, seed=args.seed)
    bls = bench_bls_cell(scenario, restarts)
    obs_columns = collect_obs_columns(scenario, index, seed=args.seed)

    report = {
        "benchmark": "coverage-kernel",
        "smoke": bool(args.smoke),
        "commit": git_commit(),
        "scenario": {
            "dataset": scenario.dataset,
            "n_billboards": scenario.n_billboards,
            "n_trajectories": scenario.n_trajectories,
            "lambda_m": scenario.lambda_m,
            "seed": scenario.seed,
        },
        "machine": {"python": platform.python_version(), "numpy": np.__version__},
        "build": build,
        "influence_of_set": queries,
        "bls_cell": bls,
        "obs": obs_columns,
    }
    path = Path(args.output)
    prior = _bench_history.load_history(path)
    history = _bench_history.append_run(path, report)
    print(json.dumps(report, indent=2))
    print(f"\nappended run {len(history['runs'])} to {path}")
    if args.gate_regression is not None:
        failures = _bench_history.gate_regression(prior, report, args.gate_regression)
        if failures:
            print("\nREGRESSION GATE FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression gate passed (threshold {args.gate_regression:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
