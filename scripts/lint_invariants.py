"""Invariant linter wrapper for bare checkouts (``repro lint`` equivalent).

Runs the stdlib-``ast`` rule set over ``src/``, ``scripts/``,
``benchmarks/`` and ``examples/``: determinism contracts, shared-memory
lifecycles, the obs name taxonomy, the ``repro.env`` knob registry,
bit-identity test coverage, and telemetry-free tight loops.

Usage::

    python scripts/lint_invariants.py
    python scripts/lint_invariants.py --json          # shared findings schema
    python scripts/lint_invariants.py --list-rules
    python scripts/lint_invariants.py src/repro/algorithms/bls.py

Equivalent to ``PYTHONPATH=src python -m repro.cli lint``; this wrapper
bootstraps ``src`` itself so it runs from a bare checkout.  Exit status 0
when every finding is suppressed or baselined, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
