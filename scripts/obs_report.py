"""Bottleneck report over an observability artifact.

Accepts any of the three artifact kinds the repo's tooling writes and
prints the matching human-readable report:

* a **Chrome trace** (``--trace-out`` / ``REPRO_OBS_TRACE``) — restart-bench
  time attribution (spawn / export / attach / warm-up / compute / reduce),
  per-engine BLS sweep-phase breakdowns, kernel-dispatch tables, and
  peak-RSS per process;
* a **run ledger** (``--ledger`` / ``REPRO_OBS_LEDGER``) — per-kind outcome
  summaries with instance features;
* an **obs run log** (``--obs-out`` JSONL) — span / counter / histogram
  tables.

Usage::

    PYTHONPATH=src python scripts/bench_solvers.py --smoke --trace-out t.json
    python scripts/obs_report.py t.json
    python scripts/obs_report.py --validate t.json

Equivalent to ``repro obs report`` for environments where the package is on
the path; this wrapper bootstraps ``src`` itself so it runs from a bare
checkout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("path", help="trace JSON, ledger JSONL, or obs run log")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check Chrome-trace schema conformance (clock alignment, "
        "required fields) and exit non-zero on problems",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="with --validate: emit the shared findings JSON schema (the "
        "same shape `repro lint --json` prints) instead of text",
    )
    args = parser.parse_args(argv)

    if args.validate:
        import json

        from repro.lint.findings import findings_payload, problems_to_findings

        with open(args.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        problems = obs.validate_chrome_trace(data)
        if args.as_json:
            findings = problems_to_findings("trace-schema", args.path, problems)
            print(json.dumps(findings_payload("repro-obs-validate", findings), indent=2))
            return 1 if problems else 0
        if problems:
            print(f"{args.path}: {len(problems)} schema problem(s)")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"{args.path}: valid Chrome trace")
    print(obs.render_report(args.path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
