"""Append-only benchmark history and the >15% regression gate.

The bench scripts used to overwrite their ``BENCH_*.json`` with the latest
single report, losing the perf trajectory the ROADMAP's querytorque-style
bench discipline wants.  This module turns those files into append-only time
series::

    {"schema": "bench-history-v1", "runs": [<report>, <report>, ...]}

Each run is the same commit-stamped report dict the scripts always produced
(legacy single-report files are migrated in place on first append).  Runs are
keyed by a *scenario key* — benchmark name + scenario parameters — so a
smoke run never gates against a full run and a resized scenario starts a
fresh baseline.

The regression gate compares every ``*_s`` timing of the new run against the
**best** (minimum) value recorded for the same scenario key and metric, and
fails when any is slower than ``threshold`` (default 1.15 = >15% slower).
With no prior baseline for the key the gate passes trivially — a fresh CI
workspace gates nothing, while a checked-in history gates every run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

SCHEMA = "bench-history-v1"

#: Fail when a timing exceeds best-recorded × this factor.
DEFAULT_THRESHOLD = 1.15


def scenario_key(report: dict) -> str:
    """Stable identity of one benchmark configuration."""
    scenario = report.get("scenario", {})
    parts = [str(report.get("benchmark", "unknown"))]
    parts.extend(f"{k}={scenario[k]}" for k in sorted(scenario))
    if report.get("smoke"):
        parts.append("smoke")
    return "|".join(parts)


def load_history(path: str | Path) -> dict:
    """The history at ``path`` (empty, or migrated from a legacy report)."""
    path = Path(path)
    if not path.is_file():
        return {"schema": SCHEMA, "runs": []}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema": SCHEMA, "runs": []}
    if isinstance(data, dict) and data.get("schema") == SCHEMA:
        runs = data.get("runs")
        return {"schema": SCHEMA, "runs": runs if isinstance(runs, list) else []}
    if isinstance(data, dict) and "benchmark" in data:
        # Legacy layout: the file held one bare report.
        return {"schema": SCHEMA, "runs": [data]}
    return {"schema": SCHEMA, "runs": []}


def append_run(path: str | Path, report: dict) -> dict:
    """Append ``report`` to the history at ``path`` and write it back."""
    path = Path(path)
    history = load_history(path)
    entry = dict(report)
    entry.setdefault(
        "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
    )
    history["runs"].append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return history


def timing_metrics(report: dict, prefix: str = "") -> dict[str, float]:
    """Every ``*_s`` timing in a report, flattened to dotted paths."""
    metrics: dict[str, float] = {}
    for key, value in report.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(timing_metrics(value, prefix=f"{dotted}."))
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and key.endswith("_s")
        ):
            metrics[dotted] = float(value)
    return metrics


def best_baselines(history: dict, key: str) -> dict[str, tuple[float, str]]:
    """Best (minimum) recorded ``(value, commit)`` per timing metric for one
    scenario key.  The commit is the ``commit`` stamp of the run that set the
    best value (``"unknown"`` when the run carries none), so gate failures
    can name the exact commit to bisect against."""
    best: dict[str, tuple[float, str]] = {}
    for run in history.get("runs", []):
        if scenario_key(run) != key:
            continue
        commit = str(run.get("commit", "unknown"))
        for metric, value in timing_metrics(run).items():
            if value > 0 and (metric not in best or value < best[metric][0]):
                best[metric] = (value, commit)
    return best


def gate_regression(
    history: dict, report: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Messages for every timing of ``report`` slower than best × threshold.

    ``history`` should hold the *prior* runs (gate before appending, or
    accept that the new run is its own >=1.0x baseline and can never fail).
    An empty list means the gate passes; no baseline for the scenario key
    passes trivially.  Each failure names the commit that set the best value
    and the regression as a percentage over it.
    """
    baselines = best_baselines(history, scenario_key(report))
    failures = []
    for metric, value in timing_metrics(report).items():
        baseline = baselines.get(metric)
        if baseline is None:
            continue
        best, commit = baseline
        if value > best * threshold:
            failures.append(
                f"{metric}: {value:.4f}s is {value / best:.2f}x "
                f"(+{(value / best - 1.0) * 100:.1f}%) the best recorded "
                f"{best:.4f}s from commit {commit} "
                f"(threshold {threshold:.2f}x)"
            )
    return failures
