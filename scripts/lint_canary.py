"""Prove every shipped lint rule still fires (the CI canary step).

Writes one deliberately-violating module per rule into a throwaway tree
shaped like the repo (``src/repro/algorithms/``, ``src/repro/parallel/``,
...), runs the linter over it with no baseline, and fails unless **each**
rule reports a finding in its canary file — so a rule that silently stops
matching (an ``ast`` drift, a scoping typo) breaks CI instead of letting
real violations through.

Also round-trips the two escape hatches on the same tree: an inline
``# repro-lint: ignore[rule]`` suppression must hide exactly its finding,
and ``--write-baseline`` → re-run must report everything as baselined.

Usage::

    python scripts/lint_canary.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import load_baseline, run_lint, write_baseline
from repro.lint.core import BASELINE_FILENAME

#: rule id -> (repo-relative canary path, violating source).
CANARIES: dict[str, tuple[str, str]] = {
    "determinism": (
        "src/repro/algorithms/canary_determinism.py",
        """\
import random
import time


def pick(items):
    started = time.perf_counter()
    for item in {1, 2, 3}:
        items.append(item)
    return random.random() + started
""",
    ),
    "shm-lifecycle": (
        "src/repro/parallel/canary_shm.py",
        """\
from multiprocessing.shared_memory import SharedMemory


def create_segment(size):
    return SharedMemory(create=True, size=size)


def attach_segment(name):
    segment = SharedMemory(name=name)
    segment.unlink()
    return segment
""",
    ),
    "obs-naming": (
        "src/repro/algorithms/canary_obs_naming.py",
        """\
from repro import obs


def tick():
    obs.counter_add("canary.not.in.taxonomy")
""",
    ),
    "env-registry": (
        "src/repro/algorithms/canary_env.py",
        """\
import os


def knob():
    return os.environ.get("REPRO_CANARY_UNDECLARED")
""",
    ),
    "kernel-contract": (
        "src/repro/billboard/popcount_jit.py",
        '''\
def canary_kernel(words):
    """Claims to be bit-identical to the numpy path; no test references it."""
    return words
''',
    ),
    "obs-guard": (
        "src/repro/algorithms/canary_obs_guard.py",
        """\
from repro import obs


def sweep(rows):
    for row in rows:
        obs.record_event("solver.row", row=row)
""",
    ),
}


def write_tree(root: Path) -> None:
    for rel, text in CANARIES.values():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-lint-canary-") as tmp:
        root = Path(tmp)
        write_tree(root)

        result = run_lint(root)
        fired = {}
        for finding in result.new:
            fired.setdefault(finding.rule, set()).add(finding.path)
        for rule_id, (rel, _) in CANARIES.items():
            if rel in fired.get(rule_id, set()):
                print(f"ok: [{rule_id}] fired on {rel}")
            else:
                failures.append(rule_id)
                print(f"FAIL: [{rule_id}] did not fire on {rel}")

        # Inline suppression must hide exactly the suppressed rule's finding.
        env_path = root / CANARIES["env-registry"][0]
        env_path.write_text(
            CANARIES["env-registry"][1].replace(
                'os.environ.get("REPRO_CANARY_UNDECLARED")',
                'os.environ.get("REPRO_CANARY_UNDECLARED")'
                "  # repro-lint: ignore[env-registry]",
            ),
            encoding="utf-8",
        )
        suppressed = run_lint(root, paths=[env_path])
        if suppressed.new:
            failures.append("suppression")
            print("FAIL: inline ignore[env-registry] left findings behind")
        else:
            print("ok: inline ignore[env-registry] suppresses its finding")

        # Baseline round-trip: grandfather everything, re-run, expect clean.
        write_baseline(result.new, root / BASELINE_FILENAME)
        baselined = run_lint(root, baseline=load_baseline(root / BASELINE_FILENAME))
        if baselined.new or len(baselined.baselined) < len(result.new) - 1:
            failures.append("baseline")
            print("FAIL: baseline round-trip did not grandfather the findings")
        else:
            print(
                f"ok: baseline round-trip grandfathers "
                f"{len(baselined.baselined)} finding(s)"
            )

    if failures:
        print(f"canary FAILED: {', '.join(failures)}")
        return 1
    print(f"canary ok: all {len(CANARIES)} rules fire; escape hatches round-trip")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
