"""Quote-throughput benchmark: incremental vs from-scratch pricing.

Builds a standing book on the PR-1 NYC-scale scenario (two
:class:`~repro.market.online.OnlineHost` instances — ``pricing="incremental"``
and ``pricing="full"`` — fed the identical acceptance sequence, asserting
they land on the identical plan), then measures:

* **per-quote wall time** on both engines over the same cyclic proposal
  stream, asserting every overlapping quote is bit-identical in
  ``(regret_before, regret_after, would_satisfy)``.  ``speedup`` is the
  from-scratch / incremental ratio — the number the journaled allocation +
  warm restricted repair exists to move (the acceptance bar is 10× at bench
  scale);
* **quotes/sec** of the incremental engine over a long stream (toward the
  10⁴–10⁵ regime the ISSUE sweeps at full scale);
* **p50/p95/p99 quote latency** from the ``quote.price`` span's log-bucket
  histogram, collected in a separate instrumented pass (observability on)
  so the timed sections stay obs-off;
* **journal hygiene**: the instrumented pass asserts every priced quote
  rolled back through the journal (``journal.rollback`` fired per quote) and
  the host's allocation object survived identically — rejected quotes
  allocate no copies;
* **batched pricing** (``quote_many``): serial batch per-quote time, plus a
  pool-fanned batch (bit-identity asserted) when the hardware has ≥ 2
  schedulable CPUs.

Appends to ``BENCH_quotes.json`` — an append-only, commit-stamped time
series (see ``scripts/_bench_history.py``); ``--gate-regression`` fails the
run when any per-quote timing regresses >15% against the best recorded run
of the same scenario.

Usage::

    PYTHONPATH=src python scripts/bench_quotes.py            # full bench
    PYTHONPATH=src python scripts/bench_quotes.py --smoke    # seconds-fast
    PYTHONPATH=src python scripts/bench_quotes.py --smoke \
        --assert-speedup 2.0                                 # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _bench_history

from repro import obs
from repro.market.online import OnlineHost
from repro.market.scenario import Scenario
from repro.obs import ledger
from repro.parallel.pool import close_all_pools

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_commit() -> str:
    """Hash of the commit that produced this report (``-dirty`` if unclean)."""
    head = ledger.git_commit()
    if head == "unknown":
        return head
    try:
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout.strip()
        return f"{head}-dirty" if dirty else head
    except Exception:
        return head


def quote_key(quote) -> tuple:
    return (quote.regret_before, quote.regret_after, quote.would_satisfy)


def build_books(scenario: Scenario, book_size: int):
    """Two hosts (incremental + full) holding the identical standing book.

    The scenario's generated advertisers are split: the first ``book_size``
    are accepted into both hosts (lockstep, identity asserted), the rest
    become the held-out proposal stream the timed sections quote from.
    """
    instance = scenario.build_instance()
    if instance.num_advertisers <= book_size:
        raise SystemExit(
            f"scenario generates {instance.num_advertisers} advertisers; "
            f"need > {book_size} to hold out a proposal stream"
        )
    booked = instance.advertisers[:book_size]
    proposals = [
        (advertiser.demand, advertiser.payment)
        for advertiser in instance.advertisers[book_size:]
    ]
    incremental = OnlineHost(
        instance.coverage, gamma=scenario.gamma, pricing="incremental"
    )
    full = OnlineHost(instance.coverage, gamma=scenario.gamma, pricing="full")
    for advertiser in booked:
        quote_inc = incremental.accept(advertiser.demand, advertiser.payment)
        quote_full = full.accept(advertiser.demand, advertiser.payment)
        assert quote_key(quote_inc) == quote_key(quote_full), (
            "book construction diverged between pricing engines"
        )
    for advertiser_id in range(book_size):
        assert incremental.allocation.billboards_of(
            advertiser_id
        ) == full.allocation.billboards_of(advertiser_id), (
            f"standing plans diverged at advertiser {advertiser_id}"
        )
    return incremental, full, proposals


def bench_quote_paths(incremental, full, proposals, n_incremental, n_full) -> dict:
    """Timed (obs-off) per-quote cost on both engines, bit-identity asserted.

    Both engines quote the same cyclic proposal stream; the overlapping
    prefix must match quote-for-quote.  The incremental side then continues
    to ``n_incremental`` quotes for the throughput figure.
    """

    def proposal(index):
        return proposals[index % len(proposals)]

    full_keys = []
    started = time.perf_counter()
    for index in range(n_full):
        demand, payment = proposal(index)
        full_keys.append(quote_key(full.quote(demand, payment)))
    full_wall = time.perf_counter() - started

    incremental_keys = []
    started = time.perf_counter()
    for index in range(n_incremental):
        demand, payment = proposal(index)
        quote = incremental.quote(demand, payment)
        if index < n_full:
            incremental_keys.append(quote_key(quote))
    incremental_wall = time.perf_counter() - started

    assert incremental_keys == full_keys, (
        "incremental quotes diverged from the from-scratch path"
    )
    full_quote_s = full_wall / n_full
    incremental_quote_s = incremental_wall / n_incremental
    return {
        "n_full_quotes": n_full,
        "n_incremental_quotes": n_incremental,
        "full_quote_s": full_quote_s,
        "incremental_quote_s": incremental_quote_s,
        "quotes_per_s": n_incremental / incremental_wall,
        "full_quotes_per_s": n_full / full_wall,
        "speedup": full_quote_s / incremental_quote_s,
        "identity_checked_quotes": len(full_keys),
        "note": (
            "per-quote wall time, obs off; every overlapping quote asserted "
            "bit-identical across engines"
        ),
    }


def collect_quote_latency(incremental, proposals, samples) -> dict:
    """Instrumented pass: span quantiles + journal-hygiene assertions."""
    obs.enable()
    obs.reset()
    try:
        allocation = incremental.allocation
        owners_before = allocation.owners.copy()
        for index in range(samples):
            demand, payment = proposals[index % len(proposals)]
            incremental.quote(demand, payment)
        histogram = obs.get_registry().histogram("span.quote.price")
        rollbacks = int(obs.counter_value("journal.rollback"))
        cache_hits = int(obs.counter_value("quote.cache.hit"))
        cache_misses = int(obs.counter_value("quote.cache.miss"))
        assert rollbacks >= samples, (
            f"expected >= {samples} journal rollbacks, saw {rollbacks} — "
            "rejected quotes are not rolling back through the journal"
        )
        assert incremental.allocation is allocation, (
            "quoting replaced the allocation object — the zero-copy contract "
            "is broken"
        )
        assert np.array_equal(incremental.allocation.owners, owners_before), (
            "quoting left residue in the standing plan"
        )
        return {
            "samples": int(histogram.count),
            "p50_s": histogram.p50,
            "p95_s": histogram.p95,
            "p99_s": histogram.p99,
            "mean_s": histogram.mean,
            "journal_rollbacks": rollbacks,
            "regret_cache_hits": cache_hits,
            "regret_cache_misses": cache_misses,
            "regret_cache_hit_rate": (
                cache_hits / (cache_hits + cache_misses)
                if cache_hits + cache_misses
                else 0.0
            ),
            "note": (
                "log-bucket quantiles of the quote.price span over an "
                "instrumented (obs-on) pass; timed sections run obs-off"
            ),
        }
    finally:
        obs.disable()
        obs.reset()


def bench_quote_many(incremental, proposals, batch_size, workers) -> dict:
    """Serial batch timing + pool-fanned bit-identity when CPUs allow."""
    batch = [proposals[index % len(proposals)] for index in range(batch_size)]
    started = time.perf_counter()
    serial_quotes = incremental.quote_many(batch)
    serial_wall = time.perf_counter() - started

    result = {
        "batch_size": batch_size,
        "serial_batch_quote_s": serial_wall / batch_size,
        "note": "quote_many per-quote wall time, obs off",
    }
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    if schedulable >= 2 and workers >= 2:
        started = time.perf_counter()
        parallel_quotes = incremental.quote_many(batch, workers=workers)
        parallel_wall = time.perf_counter() - started
        assert [quote_key(q) for q in parallel_quotes] == [
            quote_key(q) for q in serial_quotes
        ], "pool-fanned batch quotes diverged from the serial batch"
        result["workers"] = workers
        result["parallel_batch_quote_s"] = parallel_wall / batch_size
        result["parallel_identical"] = True
    else:
        result["parallel_skipped"] = (
            f"{schedulable} schedulable CPU(s) — pool fan-out would only "
            "time-slice one core"
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny city + short stream (CI wiring)"
    )
    parser.add_argument("--output", default="BENCH_quotes.json")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool size for the quote_many section (skipped on 1-CPU hosts)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless incremental pricing reaches X× over from-scratch",
    )
    parser.add_argument(
        "--gate-regression",
        type=float,
        default=None,
        nargs="?",
        const=_bench_history.DEFAULT_THRESHOLD,
        metavar="X",
        help="fail when any timing exceeds X times the best recorded run of "
        f"the same scenario (default X={_bench_history.DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scenario = Scenario(
            dataset="nyc",
            n_billboards=200,
            n_trajectories=2_000,
            p_avg=0.05,
            seed=args.seed,
        )
        book_size, n_incremental, n_full, latency_samples, batch_size = 12, 200, 8, 40, 16
    else:
        # alpha/p_avg = 120 generated advertisers: an 80-deep standing book
        # (the ISSUE floor is 32) plus a 40-proposal held-out stream both
        # quote loops cycle through.  The deep book is the point — the
        # from-scratch path re-prices O(book) per quote while the journaled
        # path re-prices O(delta), so this is where the asymmetry shows.
        # The book stops at 80 of 120: booking toward the full demand (or
        # raising alpha) saturates the supply, the 2-sweep repairs stop
        # converging, the settle pass cannot certify the standing plan, and
        # the warm path loses its restriction.  n_full is one whole proposal
        # cycle and n_incremental an exact multiple of it, so both means
        # average the identical proposal mix (the per-proposal spread is
        # wide — see the latency percentiles).
        scenario = Scenario(
            dataset="nyc",
            n_billboards=800,
            n_trajectories=8_000,
            alpha=1.2,
            p_avg=0.01,
            seed=args.seed,
        )
        book_size, n_incremental, n_full, latency_samples, batch_size = (
            80,
            10_000,
            40,
            500,
            64,
        )

    incremental, full, proposals = build_books(scenario, book_size)
    quote_paths = bench_quote_paths(
        incremental, full, proposals, n_incremental, n_full
    )
    latency = collect_quote_latency(incremental, proposals, latency_samples)
    batched = bench_quote_many(incremental, proposals, batch_size, args.workers)
    close_all_pools()

    report = {
        "benchmark": "quote-throughput",
        "smoke": bool(args.smoke),
        "commit": git_commit(),
        "scenario": {
            "dataset": scenario.dataset,
            "n_billboards": scenario.n_billboards,
            "n_trajectories": scenario.n_trajectories,
            "alpha": scenario.alpha,
            "p_avg": scenario.p_avg,
            "book_size": book_size,
            "seed": scenario.seed,
        },
        "machine": {"python": platform.python_version(), "numpy": np.__version__},
        "quote_paths": quote_paths,
        "quote_latency": latency,
        "quote_many": batched,
    }
    path = Path(args.output)
    prior = _bench_history.load_history(path)
    history = _bench_history.append_run(path, report)
    print(json.dumps(report, indent=2))
    print(f"\nappended run {len(history['runs'])} to {path}")

    if ledger.enabled():
        ledger.record_run(
            "bench.quotes",
            instance=incremental.instance(),
            pricing="incremental",
            book_size=book_size,
            quotes_per_s=float(quote_paths["quotes_per_s"]),
            wall_s=float(quote_paths["incremental_quote_s"]),
            speedup=float(quote_paths["speedup"]),
            p99_s=latency["p99_s"],
            smoke=bool(args.smoke),
        )
        ledger.record_run(
            "bench.quotes",
            instance=incremental.instance(),
            pricing="full",
            book_size=book_size,
            quotes_per_s=float(quote_paths["full_quotes_per_s"]),
            wall_s=float(quote_paths["full_quote_s"]),
            smoke=bool(args.smoke),
        )
        print(f"appended ledger records to {ledger.ledger_path()}")

    if args.gate_regression is not None:
        failures = _bench_history.gate_regression(prior, report, args.gate_regression)
        if failures:
            print("\nREGRESSION GATE FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression gate passed (threshold {args.gate_regression:.2f}x)")
    if args.assert_speedup is not None:
        assert quote_paths["speedup"] >= args.assert_speedup, (
            f"incremental speedup {quote_paths['speedup']:.2f}x below the "
            f"required {args.assert_speedup}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
