"""Paper-scale coverage benchmark: streaming build, storage tiers, kernels.

Sweeps synthetic-NYC corpora from 10^4 to 2*10^6 trajectories (the paper's
NYC dataset is ~1.7 M trips) and, at each size:

* **streams** the coverage build through
  :meth:`CoverageIndex.from_trajectory_chunks` in 100k-trip chunks — the
  corpus never exists in memory at once;
* times the **query workload** (union popcounts + full and
  candidate-restricted batch passes) on every available storage-tier /
  kernel variant — id-array, in-RAM bitmap, memmap-shard bitmap, and the
  numba-compiled popcount path when numba is importable — and asserts every
  variant is **bit-identical** to the id-array reference;
* records which variant **wins** at that size plus the
  ``influence.tier.*`` / ``influence.kernel.*`` dispatch counters.

The largest size also solves one greedy + BLS cell under a 512 MB bitmap
budget, demonstrating an end-to-end paper-scale solve.

Appends to ``BENCH_scale.json`` (append-only history, see
``scripts/_bench_history.py``).

Usage::

    PYTHONPATH=src python scripts/bench_scale.py --smoke   # 10^4 tier only
    PYTHONPATH=src python scripts/bench_scale.py           # full sweep
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _bench_history
from bench_coverage import git_commit

from repro import env, obs
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.billboard import bitmap_store, popcount_jit
from repro.billboard.influence import CoverageIndex
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.datasets.nyc import DEFAULT_BILLBOARDS
from repro.datasets.stream import nyc_stream
from repro.market.demand import generate_advertisers
from repro.utils.rng import as_generator

FULL_SIZES = (10_000, 100_000, 1_000_000, 2_000_000)
SMOKE_SIZES = (10_000,)
CHUNK_SIZE = 100_000
BITMAP_BUDGET_MB = 512.0
BLS_SIZE = 1_000_000  # largest available size solves a cell too

#: Advertiser market for the end-to-end solve: alpha/p_avg -> 5 advertisers.
BLS_ALPHA, BLS_P_AVG, BLS_GAMMA = 0.25, 0.05, 0.5


def numba_available() -> bool:
    return importlib.util.find_spec("numba") is not None


def build_streaming(stream, n: int, lambda_m: float) -> tuple[CoverageIndex, float]:
    started = time.perf_counter()
    index = CoverageIndex.from_trajectory_chunks(
        stream.billboards,
        stream.chunks(),
        num_trajectories=n,
        lambda_m=lambda_m,
        bitmap_budget_mb=BITMAP_BUDGET_MB,
    )
    return index, time.perf_counter() - started


def make_variant(
    flat: np.ndarray, offsets: np.ndarray, n: int, name: str
) -> CoverageIndex:
    """One query-workload configuration rebuilt from the shared CSR."""
    if name == "idarray":
        return CoverageIndex.from_flat_arrays(flat, offsets, n, bitmap_budget_mb=0.0)
    storage = "memmap" if name.startswith("memmap") else "ram"
    index = CoverageIndex.from_flat_arrays(
        flat, offsets, n, bitmap_budget_mb=BITMAP_BUDGET_MB, bitmap_storage=storage
    )
    # The workload must measure the bitmap kernels, not the adaptive
    # dispatch's density heuristic (sparse coverage would pick id-array).
    index._batch_prefers_bitmap = True
    return index


def query_workload(index: CoverageIndex, n: int, seed: int) -> tuple[dict, dict]:
    """Timings plus the raw results (for cross-variant bit-identity checks)."""
    rng = as_generator(seed)
    num_b = index.num_billboards
    # counts_row must be a real multiplicity counter over a set containing
    # the removed billboard — batch_add_gains_without assumes that
    # consistency (covered-by-removed implies count >= 1).
    owned = rng.choice(num_b, size=min(30, num_b), replace=False)
    counts_row = np.zeros(n, dtype=np.int64)
    for billboard_id in owned:
        counts_row[index.covered_by(int(billboard_id))] += 1
    removed = int(owned[0])
    union_sets = [
        np.sort(rng.choice(num_b, size=min(50, num_b), replace=False)).tolist()
        for _ in range(20)
    ]
    candidates = [
        np.sort(rng.choice(num_b, size=min(64, num_b), replace=False))
        for _ in range(8)
    ]

    started = time.perf_counter()
    unions = [index.influence_of_set(s) for s in union_sets]
    union_s = time.perf_counter() - started

    batch_full_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        gains_full = index.batch_add_gains(counts_row)
        batch_full_s = min(batch_full_s, time.perf_counter() - started)

    started = time.perf_counter()
    restricted = []
    for cand in candidates:
        restricted.append(index.batch_add_gains(counts_row, candidate_ids=cand))
        restricted.append(
            index.batch_add_gains_without(counts_row, removed, candidate_ids=cand)
        )
        restricted.append(index.batch_remove_losses(counts_row, candidate_ids=cand))
        restricted.append(index.batch_swap_deltas(removed, cand, counts_row))
    batch_restricted_s = time.perf_counter() - started

    timings = {
        "union_s": union_s,
        "batch_full_s": batch_full_s,
        "batch_restricted_s": batch_restricted_s,
        "total_s": union_s + batch_full_s + batch_restricted_s,
    }
    results = {"unions": unions, "gains_full": gains_full, "restricted": restricted}
    return timings, results


def assert_bit_identical(reference: dict, results: dict, variant: str) -> None:
    assert results["unions"] == reference["unions"], (
        f"{variant}: influence_of_set disagrees with id-array reference"
    )
    assert np.array_equal(results["gains_full"], reference["gains_full"]), (
        f"{variant}: batch_add_gains disagrees with id-array reference"
    )
    for got, expected in zip(results["restricted"], reference["restricted"]):
        assert np.array_equal(got, expected), (
            f"{variant}: restricted batch kernel disagrees with id-array reference"
        )


def dispatch_counters(index: CoverageIndex, n: int, seed: int) -> dict:
    """``influence.tier.*`` / ``influence.kernel.*`` counters for one replay."""
    rng = as_generator(seed)
    counts_row = rng.integers(0, 3, size=n).astype(np.int64)
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        index.influence_of_set(range(min(20, index.num_billboards)))
        index.batch_add_gains(counts_row)
        index.batch_add_gains(
            counts_row, candidate_ids=np.arange(min(16, index.num_billboards))
        )
        counters = dict(obs.get_registry().counters)
    finally:
        if was_enabled:
            obs.reset()
        else:
            obs.disable()
    return {
        key: int(value)
        for key, value in sorted(counters.items())
        if key.startswith(("influence.tier.", "influence.kernel."))
    }


def variant_names() -> list[str]:
    names = ["idarray", "ram", "memmap"]
    if numba_available():
        names += ["ram+numba", "memmap+numba"]
    return names


def run_variant(
    name: str, flat: np.ndarray, offsets: np.ndarray, n: int, seed: int
) -> tuple[dict, dict]:
    """Build the variant, run the workload, and report timings + results."""
    use_numba = name.endswith("+numba")
    with env.temporary(popcount_jit.NUMBA_ENV, "1" if use_numba else "0"):
        popcount_jit.reset()
        try:
            index = make_variant(flat, offsets, n, name)
            if use_numba:  # compile outside the timed region
                assert popcount_jit.enabled(), "numba requested but kernels missing"
                query_workload(index, min(n, 1_000), seed)
            timings, results = query_workload(index, n, seed)
            timings["tier"] = index.bitmap_tier or "idarray"
            timings["obs"] = dispatch_counters(index, n, seed)
            return timings, results
        finally:
            popcount_jit.reset()


def bench_size(stream, n: int, lambda_m: float, seed: int) -> dict:
    index, build_s = build_streaming(stream, n, lambda_m)
    flat, offsets = index.to_arrays()
    entry = {
        "n_trajectories": n,
        "build": {
            "streaming_build_s": build_s,
            "chunks": stream.num_chunks(),
            "coverage_nnz": int(len(flat)),
            "bitmap_tier_at_512mb": index.bitmap_tier,
        },
        "variants": {},
    }
    del index  # free the build's bitmap before the variants allocate theirs

    reference = None
    for name in variant_names():
        timings, results = run_variant(name, flat, offsets, n, seed)
        if name == "idarray":
            reference = results
            timings["bit_identical"] = True  # the reference, by definition
        else:
            assert_bit_identical(reference, results, name)
            timings["bit_identical"] = True
        entry["variants"][name] = timings
        print(
            f"  n={n:>9,} {name:<13} tier={timings['tier']:<8}"
            f" total={timings['total_s']:.4f}s",
            flush=True,
        )
    entry["query_winner"] = min(
        entry["variants"], key=lambda v: entry["variants"][v]["total_s"]
    )
    return entry


def bench_bls(stream, n: int, lambda_m: float, seed: int) -> dict:
    """Greedy + BLS on the streamed corpus under the 512 MB bitmap budget."""
    index, build_s = build_streaming(stream, n, lambda_m)
    advertisers = generate_advertisers(index.supply, BLS_ALPHA, BLS_P_AVG, seed)
    instance = MROAMInstance(index, advertisers, BLS_GAMMA)
    allocation = Allocation(instance)

    started = time.perf_counter()
    synchronous_greedy(allocation)
    greedy_s = time.perf_counter() - started
    greedy_regret = allocation.total_regret()

    stats: dict = {}
    started = time.perf_counter()
    improved = billboard_driven_local_search(allocation, max_sweeps=2, stats=stats)
    bls_s = time.perf_counter() - started

    return {
        "n_trajectories": n,
        "bitmap_budget_mb": BITMAP_BUDGET_MB,
        "bitmap_tier": index.bitmap_tier,
        "advertisers": len(advertisers),
        "alpha": BLS_ALPHA,
        "p_avg": BLS_P_AVG,
        "gamma": BLS_GAMMA,
        "streaming_build_s": build_s,
        "greedy_s": greedy_s,
        "bls_s": bls_s,
        "greedy_regret": greedy_regret,
        "total_regret": improved.total_regret(),
        "bls_sweeps": int(stats.get("bls_sweeps", 0)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="10^4-trajectory tier only (CI wiring)"
    )
    parser.add_argument("--output", default="BENCH_scale.json")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--billboards", type=int, default=DEFAULT_BILLBOARDS, help="inventory size"
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    lambda_m = 100.0

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as spill_dir:
        with env.temporary(bitmap_store.SPILL_DIR_ENV, spill_dir):
            size_entries = {}
            for n in sizes:
                stream = nyc_stream(
                    args.billboards, n, chunk_size=CHUNK_SIZE, seed=args.seed
                )
                size_entries[str(n)] = bench_size(stream, n, lambda_m, args.seed)

            bls_n = max(s for s in sizes if s <= BLS_SIZE)
            stream = nyc_stream(
                args.billboards, bls_n, chunk_size=CHUNK_SIZE, seed=args.seed
            )
            bls = bench_bls(stream, bls_n, lambda_m, args.seed)

    report = {
        "benchmark": "coverage-scale",
        "smoke": bool(args.smoke),
        "commit": git_commit(),
        "scenario": {
            "dataset": "nyc-stream",
            "n_billboards": args.billboards,
            "sizes": "-".join(str(s) for s in sizes),
            "chunk_size": CHUNK_SIZE,
            "lambda_m": lambda_m,
            "bitmap_budget_mb": BITMAP_BUDGET_MB,
            "seed": args.seed,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "numba": numba_available(),
        },
        "sizes": size_entries,
        "bls_cell": bls,
    }
    path = Path(args.output)
    history = _bench_history.append_run(path, report)
    print(json.dumps(report, indent=2))
    print(f"\nappended run {len(history['runs'])} to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
