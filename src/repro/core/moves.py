"""Side-effect-free pricing of local-search moves.

The local search methods (Sections 6.1–6.2) scan many candidate moves per
accepted move, so pricing must not mutate the allocation.  Every function
here returns the *change in total regret* ``ΔR = R(after) − R(before)``; a
negative delta means the move improves the plan.

All deltas are exact: they account for coverage overlap via the allocation's
multiplicity counters and the sorted covered-trajectory arrays.
"""

from __future__ import annotations

from repro.core.allocation import UNASSIGNED, Allocation


def _regret_at(allocation: Allocation, advertiser_id: int, influence: int) -> float:
    return allocation.instance.regret_of(advertiser_id, influence)


def delta_assign(allocation: Allocation, billboard_id: int, advertiser_id: int) -> float:
    """ΔR of assigning an unassigned billboard to an advertiser."""
    if allocation.owner_of(billboard_id) != UNASSIGNED:
        raise ValueError(f"billboard {billboard_id} is not unassigned")
    before = allocation.influence(advertiser_id)
    after = before + allocation.influence_delta_add(advertiser_id, billboard_id)
    return _regret_at(allocation, advertiser_id, after) - _regret_at(
        allocation, advertiser_id, before
    )


def delta_release(allocation: Allocation, billboard_id: int) -> float:
    """ΔR of releasing an assigned billboard back to the pool."""
    advertiser_id = allocation.owner_of(billboard_id)
    if advertiser_id == UNASSIGNED:
        raise ValueError(f"billboard {billboard_id} is not assigned")
    before = allocation.influence(advertiser_id)
    after = before - allocation.influence_delta_remove(advertiser_id, billboard_id)
    return _regret_at(allocation, advertiser_id, after) - _regret_at(
        allocation, advertiser_id, before
    )


def _swap_influence_delta(
    allocation: Allocation,
    advertiser_id: int,
    removed_billboard: int,
    added_billboard: int,
) -> int:
    """Exact influence change for one advertiser that loses ``removed_billboard``
    and gains ``added_billboard`` in the same move.

    With ``c`` the advertiser's counters, ``cov_r``/``cov_a`` the two coverage
    arrays::

        loss = |{t ∈ cov_r : c[t] == 1}|
        gain = |{t ∈ cov_a : c[t] − [t ∈ cov_r] == 0}|

    A trajectory covered only by the removed billboard but re-covered by the
    added one contributes to both terms and cancels, which is correct.

    The arithmetic lives in :meth:`CoverageIndex.swap_delta`; on the packed
    bitmap kernel both terms are masked popcounts fed by the allocation's
    incrementally maintained ``counts == 0`` / ``counts == 1`` bitmasks.
    """
    coverage = allocation.instance.coverage
    masks = allocation.packed_masks(advertiser_id)
    free_bits, ones_bits = masks if masks is not None else (None, None)
    return coverage.swap_delta(
        removed_billboard,
        added_billboard,
        allocation.counts_row(advertiser_id),
        free_bits=free_bits,
        ones_bits=ones_bits,
    )


def delta_exchange_billboards(
    allocation: Allocation, billboard_a: int, billboard_b: int
) -> float:
    """ΔR of swapping the owners of two billboards.

    Covers both BLS exchange families: owner↔owner (move 1) and
    owner↔unassigned (move 2).  Swapping two billboards of the same owner, or
    two unassigned billboards, is a zero-delta no-op.
    """
    owner_a = allocation.owner_of(billboard_a)
    owner_b = allocation.owner_of(billboard_b)
    if owner_a == owner_b:
        return 0.0

    delta = 0.0
    if owner_a != UNASSIGNED and owner_b != UNASSIGNED:
        for advertiser_id, removed, added in (
            (owner_a, billboard_a, billboard_b),
            (owner_b, billboard_b, billboard_a),
        ):
            before = allocation.influence(advertiser_id)
            after = before + _swap_influence_delta(allocation, advertiser_id, removed, added)
            delta += _regret_at(allocation, advertiser_id, after) - _regret_at(
                allocation, advertiser_id, before
            )
        return delta

    # Exactly one side is assigned: the move replaces that advertiser's
    # billboard with the free one.
    if owner_a != UNASSIGNED:
        advertiser_id, removed, added = owner_a, billboard_a, billboard_b
    else:
        advertiser_id, removed, added = owner_b, billboard_b, billboard_a
    before = allocation.influence(advertiser_id)
    after = before + _swap_influence_delta(allocation, advertiser_id, removed, added)
    return _regret_at(allocation, advertiser_id, after) - _regret_at(
        allocation, advertiser_id, before
    )


def delta_exchange_sets(
    allocation: Allocation, advertiser_a: int, advertiser_b: int
) -> float:
    """ΔR of exchanging the whole billboard sets of two advertisers (ALS).

    Influence depends only on the set, so the delta needs nothing beyond the
    two influence scalars — this is what makes the advertiser-driven search
    cheap per candidate.
    """
    if advertiser_a == advertiser_b:
        return 0.0
    influence_a = allocation.influence(advertiser_a)
    influence_b = allocation.influence(advertiser_b)
    before = _regret_at(allocation, advertiser_a, influence_a) + _regret_at(
        allocation, advertiser_b, influence_b
    )
    after = _regret_at(allocation, advertiser_a, influence_b) + _regret_at(
        allocation, advertiser_b, influence_a
    )
    return after - before


def delta_move(allocation: Allocation, billboard_id: int, advertiser_id: int) -> float:
    """ΔR of reassigning a billboard from its current owner to another advertiser."""
    owner = allocation.owner_of(billboard_id)
    if owner == advertiser_id:
        return 0.0
    delta = 0.0
    if owner != UNASSIGNED:
        before = allocation.influence(owner)
        after = before - allocation.influence_delta_remove(owner, billboard_id)
        delta += _regret_at(allocation, owner, after) - _regret_at(allocation, owner, before)
    before = allocation.influence(advertiser_id)
    after = before + allocation.influence_delta_add(advertiser_id, billboard_id)
    delta += _regret_at(allocation, advertiser_id, after) - _regret_at(
        allocation, advertiser_id, before
    )
    return delta
