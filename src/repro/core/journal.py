"""Journaled allocation: O(moves) undo for the incremental quoting engine.

The online host prices a proposal by *repairing the live plan in place* and
then deciding whether to keep the repair.  A rejected quote must leave the
host byte-identical to before the quote — without copying the allocation.
:class:`JournaledAllocation` makes that cheap: every ``assign``/``release``
(the primitives all repair moves decompose into) appends one delta record to
an in-memory journal, and :meth:`rollback_to` replays the records in reverse
with the exact inverse operations.  Both directions use the same integer
counter arithmetic, so a rollback restores the counts matrix, influence
vector, owner vector, and sets bit-for-bit (see DESIGN.md §15).

An accepted quote is the dual operation: the journal slice recorded while
pricing is handed out as replay material (:meth:`journal_entries`) and
applied later via :meth:`replay` — the repair is committed without being
recomputed.

The class also keeps a per-advertiser **regret cache** warm across quotes:
``regret(i)`` is a pure function of advertiser ``i``'s influence and its
(immutable) contract, so the cached value stays valid until one of ``i``'s
billboards moves — which is exactly when the journal records a delta for it.
``total_regret()`` (inherited) sums the cached values in the identical id
order as the uncached base class, so the float result is bit-identical.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro import obs
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


class JournaledAllocation(Allocation):
    """An :class:`Allocation` with a delta journal, undo, and a regret cache.

    Recording is off until :meth:`journal_enable`; the quoting workspace
    turns it on once and leaves it on, so every repair move lands in the
    journal.  :meth:`rollback_to` and :meth:`replay` suspend recording
    internally — undo and commit traffic never re-enters the journal.
    """

    def __init__(self, instance: MROAMInstance) -> None:
        super().__init__(instance)
        self._entries: list[tuple[str, int, int]] = []
        self._recording = False
        self._regret_cache = np.zeros(instance.num_advertisers, dtype=np.float64)
        self._regret_valid = np.zeros(instance.num_advertisers, dtype=bool)

    # ---------------------------------------------------------- journal API

    @property
    def journaling(self) -> bool:
        """Whether moves are currently being recorded (the repair engines
        switch to in-place top-ups when this is set, keeping object
        identity)."""
        return self._recording

    def journal_enable(self) -> None:
        """Start recording every assign/release delta."""
        self._recording = True

    def journal_mark(self) -> int:
        """The current journal position (pass to :meth:`rollback_to`)."""
        return len(self._entries)

    def journal_entries(self, mark: int = 0) -> tuple[tuple[str, int, int], ...]:
        """A copy of the records appended since ``mark`` (replay material)."""
        return tuple(self._entries[mark:])

    def journal_commit(self, mark: int = 0) -> None:
        """Drop the records since ``mark``, keeping the state they built."""
        del self._entries[mark:]

    def rollback_to(self, mark: int = 0) -> int:
        """Undo every move recorded after ``mark``; returns the undo count.

        O(moves touched): each record is inverted with the same counter
        arithmetic the forward move used (``release`` exactly inverts
        ``assign`` on the multiplicity counters), so the restored state is
        byte-identical — no copies are made.
        """
        undone = len(self._entries) - mark
        recording = self._recording
        self._recording = False
        try:
            while len(self._entries) > mark:
                kind, billboard_id, advertiser_id = self._entries.pop()
                if kind == "assign":
                    self.release(billboard_id)
                else:
                    self.assign(billboard_id, advertiser_id)
        finally:
            self._recording = recording
        obs.counter_add("journal.rollback")
        return undone

    def replay(self, entries: Iterable[tuple[str, int, int]]) -> None:
        """Apply previously recorded deltas forward (recording suspended)."""
        recording = self._recording
        self._recording = False
        try:
            for kind, billboard_id, advertiser_id in entries:
                if kind == "assign":
                    self.assign(billboard_id, advertiser_id)
                else:
                    self.release(billboard_id)
        finally:
            self._recording = recording

    # ------------------------------------------------------- recorded moves

    def assign(self, billboard_id: int, advertiser_id: int) -> None:
        super().assign(billboard_id, advertiser_id)
        self._regret_valid[advertiser_id] = False
        if self._recording:
            self._entries.append(("assign", billboard_id, advertiser_id))

    def release(self, billboard_id: int) -> int:
        advertiser_id = super().release(billboard_id)
        self._regret_valid[advertiser_id] = False
        if self._recording:
            self._entries.append(("release", billboard_id, advertiser_id))
        return advertiser_id

    def exchange_sets(self, advertiser_a: int, advertiser_b: int) -> None:
        if self._recording:
            # A whole-set swap has no assign/release decomposition, so the
            # journal cannot undo it; the billboard-driven repair paths never
            # use it (it is the ALS move).
            raise RuntimeError(
                "exchange_sets is not journaled; disable recording first"
            )
        super().exchange_sets(advertiser_a, advertiser_b)
        self._regret_valid[advertiser_a] = False
        self._regret_valid[advertiser_b] = False

    def copy_assignments_from(self, other: Allocation) -> None:
        if self._entries:
            raise RuntimeError(
                "cannot bulk-copy assignments over uncommitted journal entries"
            )
        super().copy_assignments_from(other)
        self._regret_valid[:] = False

    # ----------------------------------------------------------- regret cache

    def regret(self, advertiser_id: int) -> float:
        """Cached Eq. 1 regret, invalidated by this advertiser's moves.

        The cached value is the exact float the base class would recompute:
        regret is a pure function of (payment, demand, γ, influence), and
        every influence change funnels through :meth:`assign`/:meth:`release`
        which drop the cache entry.  Callers that mutate the *contract* of a
        slot (the quoting workspace's newcomer slot) must call
        :meth:`invalidate_regret` for it.
        """
        if self._regret_valid[advertiser_id]:
            obs.counter_add("quote.cache.hit")
            return float(self._regret_cache[advertiser_id])
        value = self.instance.regret_of(advertiser_id, self.influence(advertiser_id))
        self._regret_cache[advertiser_id] = value
        self._regret_valid[advertiser_id] = True
        obs.counter_add("quote.cache.miss")
        return value

    def invalidate_regret(self, advertiser_id: int | None = None) -> None:
        """Drop cached regret values (one advertiser, or all with ``None``)."""
        if advertiser_id is None:
            self._regret_valid[:] = False
        else:
            self._regret_valid[advertiser_id] = False

    # ------------------------------------------------------------------ grow

    def grow(self, instance: MROAMInstance) -> None:
        """Adopt an instance extending this one with appended advertisers.

        Used when an accepted proposal promotes the workspace's newcomer slot
        into the book and a fresh spare slot is appended: the existing rows
        (sets, counters, influences, cached regrets) carry over untouched —
        the caller guarantees the first ``num_advertisers`` contracts are
        unchanged — and the new rows start empty.
        """
        added = instance.num_advertisers - self.instance.num_advertisers
        if added < 0 or instance.coverage is not self.instance.coverage:
            raise ValueError(
                "grow() needs an instance extending the current one over the "
                "same coverage index"
            )
        self.instance = instance
        if added:
            num_trajectories = self._counts.shape[1]
            self._sets.extend(set() for _ in range(added))
            self._counts = np.vstack(
                [self._counts, np.zeros((added, num_trajectories), dtype=np.int32)]
            )
            self._influences = np.concatenate(
                [self._influences, np.zeros(added, dtype=np.int64)]
            )
            self._regret_cache = np.concatenate(
                [self._regret_cache, np.zeros(added, dtype=np.float64)]
            )
            self._regret_valid = np.concatenate(
                [self._regret_valid, np.zeros(added, dtype=bool)]
            )
