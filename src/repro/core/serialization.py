"""Persistence of deployment plans.

A plan is meaningful only against the instance that produced it, so the
JSON document embeds a fingerprint of the instance (sizes, demands,
payments, γ) and loading validates it before reconstructing the allocation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance

FORMAT_VERSION = 1


def _fingerprint(instance: MROAMInstance) -> dict:
    return {
        "num_billboards": instance.num_billboards,
        "num_trajectories": instance.coverage.num_trajectories,
        "gamma": instance.gamma,
        "demands": [int(d) for d in instance.demands],
        "payments": [float(p) for p in instance.payments],
    }


def allocation_to_dict(allocation: Allocation) -> dict:
    """Serialize a plan (assignment only; the instance is fingerprinted)."""
    return {
        "format_version": FORMAT_VERSION,
        "instance": _fingerprint(allocation.instance),
        "assignment": {
            str(advertiser_id): sorted(billboard_set)
            for advertiser_id, billboard_set in allocation.assignment_map().items()
            if billboard_set
        },
        "total_regret": allocation.total_regret(),
    }


def allocation_from_dict(document: dict, instance: MROAMInstance) -> Allocation:
    """Rebuild a plan against ``instance``; validates the fingerprint."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {version!r}")
    expected = _fingerprint(instance)
    recorded = document.get("instance", {})
    if recorded != expected:
        mismatched = sorted(
            key for key in expected if recorded.get(key) != expected[key]
        )
        raise ValueError(
            f"plan was saved against a different instance (mismatch in {mismatched})"
        )

    allocation = Allocation(instance)
    for advertiser_key, billboard_ids in document.get("assignment", {}).items():
        advertiser_id = int(advertiser_key)
        if not 0 <= advertiser_id < instance.num_advertisers:
            raise ValueError(f"advertiser id {advertiser_id} out of range")
        for billboard_id in billboard_ids:
            allocation.assign(int(billboard_id), advertiser_id)

    recorded_regret = document.get("total_regret")
    if recorded_regret is not None:
        actual = allocation.total_regret()
        if abs(actual - recorded_regret) > 1e-6 * max(1.0, abs(recorded_regret)):
            raise ValueError(
                f"reconstructed regret {actual} differs from the recorded "
                f"{recorded_regret}; the instance does not match"
            )
    return allocation


def save_allocation(allocation: Allocation, path: str | Path) -> Path:
    """Write a plan to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(allocation_to_dict(allocation), handle, indent=2)
    return path


def load_allocation(path: str | Path, instance: MROAMInstance) -> Allocation:
    """Load a plan saved by :func:`save_allocation`."""
    with open(path) as handle:
        document = json.load(handle)
    return allocation_from_dict(document, instance)
