"""Incremental deployment-plan state.

An :class:`Allocation` is a partial assignment of billboards to advertisers
(the paper's ``S = {S_1, …, S_|A|}`` with ``S_i ∩ S_j = ∅``).  It maintains,
per advertiser, a multiplicity counter over trajectory ids so that assigning
or releasing a billboard updates the advertiser's influence in
``O(|cov(o)|)`` vectorized work, and candidate moves can be priced without
mutation (see :mod:`repro.core.moves`).

Counter invariant: for advertiser ``a`` and trajectory ``t``,
``counts[a][t]`` equals the number of billboards in ``S_a`` covering ``t``;
the advertiser's influence is the number of nonzero entries of its row.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.problem import MROAMInstance
from repro.core.regret import RegretBreakdown
from repro.utils import bitset

UNASSIGNED = -1


class Allocation:
    """A mutable deployment plan over a fixed :class:`MROAMInstance`."""

    def __init__(self, instance: MROAMInstance) -> None:
        self.instance = instance
        num_billboards = instance.num_billboards
        num_advertisers = instance.num_advertisers
        num_trajectories = instance.coverage.num_trajectories

        self._owner = np.full(num_billboards, UNASSIGNED, dtype=np.int32)
        self._sets: list[set[int]] = [set() for _ in range(num_advertisers)]
        self._counts = np.zeros((num_advertisers, num_trajectories), dtype=np.int32)
        self._influences = np.zeros(num_advertisers, dtype=np.int64)
        self._unassigned: set[int] = set(range(num_billboards))
        # Lazily packed (counts == 0, counts == 1) bitmasks per advertiser,
        # invalidated whenever that advertiser's counter row changes.  They
        # feed the coverage index's popcount kernel (see packed_masks).
        self._packed: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ state

    def owner_of(self, billboard_id: int) -> int:
        """Owning advertiser id, or :data:`UNASSIGNED`."""
        return int(self._owner[billboard_id])

    def billboards_of(self, advertiser_id: int) -> frozenset[int]:
        """The (frozen view of the) billboard set ``S_i``."""
        return frozenset(self._sets[advertiser_id])

    @property
    def unassigned(self) -> frozenset[int]:
        """Billboards currently owned by no advertiser."""
        return frozenset(self._unassigned)

    @property
    def owners(self) -> np.ndarray:
        """Read-only owner vector (``UNASSIGNED`` for free billboards)."""
        view = self._owner.view()
        view.flags.writeable = False
        return view

    def influence(self, advertiser_id: int) -> int:
        """``I(S_i)`` — maintained incrementally."""
        return int(self._influences[advertiser_id])

    @property
    def influences(self) -> np.ndarray:
        """Read-only vector of all advertiser influences."""
        view = self._influences.view()
        view.flags.writeable = False
        return view

    def is_satisfied(self, advertiser_id: int) -> bool:
        return self.influence(advertiser_id) >= self.instance.advertisers[advertiser_id].demand

    def unsatisfied_advertisers(self) -> list[int]:
        """Ids of advertisers whose demand is not met, in id order."""
        demands = self.instance.demands
        return [i for i in range(len(demands)) if self._influences[i] < demands[i]]

    # ----------------------------------------------------------------- regret

    def regret(self, advertiser_id: int) -> float:
        """Eq. 1 regret of one advertiser under the current plan."""
        return self.instance.regret_of(advertiser_id, self.influence(advertiser_id))

    def total_regret(self) -> float:
        """``R(S) = Σ_i R(S_i)`` — the MROAM objective."""
        return sum(self.regret(i) for i in range(self.instance.num_advertisers))

    def breakdown(self) -> RegretBreakdown:
        """Total regret decomposed into unsatisfied vs excessive components."""
        total = RegretBreakdown.zero()
        for advertiser_id in range(self.instance.num_advertisers):
            total = total + self.instance.breakdown_of(
                advertiser_id, self.influence(advertiser_id)
            )
        return total

    def total_dual(self) -> float:
        """``R'(S) = Σ_i R'(S_i)`` — the dual (maximization) objective."""
        return sum(
            self.instance.dual_of(i, self.influence(i))
            for i in range(self.instance.num_advertisers)
        )

    # ------------------------------------------------------------------ moves

    def assign(self, billboard_id: int, advertiser_id: int) -> None:
        """Assign an unassigned billboard to an advertiser."""
        if self._owner[billboard_id] != UNASSIGNED:
            raise ValueError(
                f"billboard {billboard_id} is already owned by advertiser "
                f"{self._owner[billboard_id]}"
            )
        covered = self.instance.coverage.covered_by(billboard_id)
        row = self._counts[advertiser_id]
        self._influences[advertiser_id] += int(np.count_nonzero(row[covered] == 0))
        row[covered] += 1
        self._packed.pop(advertiser_id, None)
        self._owner[billboard_id] = advertiser_id
        self._sets[advertiser_id].add(billboard_id)
        self._unassigned.discard(billboard_id)

    def release(self, billboard_id: int) -> int:
        """Return a billboard to the unassigned pool; returns the old owner."""
        advertiser_id = int(self._owner[billboard_id])
        if advertiser_id == UNASSIGNED:
            raise ValueError(f"billboard {billboard_id} is not assigned")
        covered = self.instance.coverage.covered_by(billboard_id)
        row = self._counts[advertiser_id]
        row[covered] -= 1
        self._influences[advertiser_id] -= int(np.count_nonzero(row[covered] == 0))
        self._packed.pop(advertiser_id, None)
        self._owner[billboard_id] = UNASSIGNED
        self._sets[advertiser_id].discard(billboard_id)
        self._unassigned.add(billboard_id)
        return advertiser_id

    def release_all(self, advertiser_id: int) -> list[int]:
        """Release every billboard of one advertiser (G-Global line 2.10)."""
        released = sorted(self._sets[advertiser_id])
        for billboard_id in released:
            self.release(billboard_id)
        return released

    def move(self, billboard_id: int, advertiser_id: int) -> None:
        """Reassign a billboard from its current owner to another advertiser."""
        self.release(billboard_id)
        self.assign(billboard_id, advertiser_id)

    def exchange_billboards(self, billboard_a: int, billboard_b: int) -> None:
        """Swap the owners of two billboards (BLS move family 1/2).

        Either billboard may be unassigned; swapping two unassigned billboards
        is a no-op.
        """
        owner_a = int(self._owner[billboard_a])
        owner_b = int(self._owner[billboard_b])
        if owner_a == owner_b:
            return
        if owner_a != UNASSIGNED:
            self.release(billboard_a)
        if owner_b != UNASSIGNED:
            self.release(billboard_b)
        if owner_b != UNASSIGNED:
            self.assign(billboard_a, owner_b)
        if owner_a != UNASSIGNED:
            self.assign(billboard_b, owner_a)

    def exchange_sets(self, advertiser_a: int, advertiser_b: int) -> None:
        """Swap the whole billboard sets of two advertisers (ALS move).

        Influence depends only on the billboard set, so this swaps the
        counter rows and influence scalars in O(1)-ish work.
        """
        if advertiser_a == advertiser_b:
            return
        set_a, set_b = self._sets[advertiser_a], self._sets[advertiser_b]
        for billboard_id in set_a:
            self._owner[billboard_id] = advertiser_b
        for billboard_id in set_b:
            self._owner[billboard_id] = advertiser_a
        self._sets[advertiser_a], self._sets[advertiser_b] = set_b, set_a
        self._counts[[advertiser_a, advertiser_b]] = self._counts[[advertiser_b, advertiser_a]]
        self._influences[[advertiser_a, advertiser_b]] = self._influences[
            [advertiser_b, advertiser_a]
        ]
        packed_a = self._packed.pop(advertiser_a, None)
        packed_b = self._packed.pop(advertiser_b, None)
        if packed_b is not None:
            self._packed[advertiser_a] = packed_b
        if packed_a is not None:
            self._packed[advertiser_b] = packed_a

    def assign_many(self, assignments: Iterable[tuple[int, int]]) -> None:
        """Bulk-assign ``(billboard_id, advertiser_id)`` pairs."""
        for billboard_id, advertiser_id in assignments:
            self.assign(billboard_id, advertiser_id)

    # ----------------------------------------------------------------- deltas

    def influence_delta_add(self, advertiser_id: int, billboard_id: int) -> int:
        """Influence gained by assigning ``billboard_id`` (no mutation)."""
        coverage = self.instance.coverage
        if coverage.bitmap_profitable_for(billboard_id):
            bits = coverage.bits_of(billboard_id)
            if bits is not None:
                free_bits, _ = self._packed_masks(advertiser_id)
                return bitset.popcount_total(bits & free_bits)
        covered = coverage.covered_by(billboard_id)
        return int(np.count_nonzero(self._counts[advertiser_id][covered] == 0))

    def influence_delta_remove(self, advertiser_id: int, billboard_id: int) -> int:
        """Influence lost by releasing ``billboard_id`` from its owner.

        The caller is responsible for ``billboard_id`` actually belonging to
        ``advertiser_id``; the returned value is non-negative.
        """
        coverage = self.instance.coverage
        if coverage.bitmap_profitable_for(billboard_id):
            bits = coverage.bits_of(billboard_id)
            if bits is not None:
                _, ones_bits = self._packed_masks(advertiser_id)
                return bitset.popcount_total(bits & ones_bits)
        covered = coverage.covered_by(billboard_id)
        return int(np.count_nonzero(self._counts[advertiser_id][covered] == 1))

    def counts_row(self, advertiser_id: int) -> np.ndarray:
        """Read-only view of one advertiser's multiplicity counters."""
        view = self._counts[advertiser_id].view()
        view.flags.writeable = False
        return view

    def _packed_masks(self, advertiser_id: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._packed.get(advertiser_id)
        if cached is None:
            row = self._counts[advertiser_id]
            cached = (bitset.pack_bits(row == 0), bitset.pack_bits(row == 1))
            self._packed[advertiser_id] = cached
        return cached

    def packed_masks(self, advertiser_id: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Packed ``(counts == 0, counts == 1)`` masks of one advertiser.

        ``None`` when the coverage index runs without its bitmap kernel, or
        when its coverage is sparse enough that the batch passes prefer the
        id arrays (packing masks they would never read is pure overhead).
        The masks are packed lazily and cached until the advertiser's counter
        row next changes; move-pricing code hands them to the coverage kernel
        so repeated delta queries against the same advertiser cost one
        popcount each instead of a fresh pack.
        """
        coverage = self.instance.coverage
        if not coverage.batch_prefers_bitmap or not coverage.has_bitmap:
            return None
        return self._packed_masks(advertiser_id)

    def copy_assignments_from(self, other: "Allocation") -> None:
        """Adopt another allocation's plan wholesale (bulk vectorized copy).

        ``other`` may live on an instance with fewer advertisers (the online
        host extends the book instance with a newcomer slot): its rows are
        copied over, and any extra rows of ``self`` are cleared.  Both sides
        must share the same coverage index — the counter rows are only
        meaningful against one trajectory universe.
        """
        if other.instance.coverage is not self.instance.coverage:
            raise ValueError("copy_assignments_from requires a shared coverage index")
        carried = other.instance.num_advertisers
        if carried > self.instance.num_advertisers:
            raise ValueError(
                "source allocation has more advertisers than the destination"
            )
        self._owner[:] = other._owner
        for advertiser_id in range(carried):
            self._sets[advertiser_id] = set(other._sets[advertiser_id])
        for advertiser_id in range(carried, self.instance.num_advertisers):
            self._sets[advertiser_id] = set()
        self._counts[:carried] = other._counts
        self._counts[carried:] = 0
        self._influences[:carried] = other._influences
        self._influences[carried:] = 0
        self._unassigned = set(other._unassigned)
        # Mask tuples are never mutated in place (see clone()), so sharing is
        # safe; extra rows were zeroed above so their stale masks must go.
        self._packed = {k: v for k, v in other._packed.items() if k < carried}

    # ------------------------------------------------------------------- misc

    def clone(self) -> "Allocation":
        """Deep copy sharing the (immutable) instance."""
        copy = Allocation.__new__(Allocation)
        copy.instance = self.instance
        copy._owner = self._owner.copy()
        copy._sets = [set(s) for s in self._sets]
        copy._counts = self._counts.copy()
        copy._influences = self._influences.copy()
        copy._unassigned = set(self._unassigned)
        # Mask tuples are never mutated in place, so sharing them is safe;
        # either side's next counter change just drops its own dict entry.
        copy._packed = dict(self._packed)
        return copy

    def assignment_map(self) -> dict[int, frozenset[int]]:
        """``{advertiser_id: S_i}`` snapshot of the plan."""
        return {i: frozenset(s) for i, s in enumerate(self._sets)}

    def __repr__(self) -> str:
        assigned = self.instance.num_billboards - len(self._unassigned)
        return (
            f"Allocation(assigned={assigned}/{self.instance.num_billboards}, "
            f"regret={self.total_regret():.2f})"
        )
