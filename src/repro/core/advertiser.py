"""Advertiser campaign proposals (paper Section 3.1).

Each advertiser submits a proposal ``(I_i, L_i)``: a minimum demanded
influence and the payment committed if the demand is met.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Advertiser:
    """One advertiser's campaign proposal.

    Attributes
    ----------
    advertiser_id:
        Dense integer id (index into the instance's advertiser list).
    demand:
        Minimum demanded influence ``I_i`` (> 0).
    payment:
        Committed payment ``L_i`` (≥ 0), fully paid only if the demand is met.
    name:
        Optional display name (the worked example uses ``a1..a3``).
    """

    advertiser_id: int
    demand: int
    payment: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"advertiser demand must be positive, got {self.demand}")
        if self.payment < 0:
            raise ValueError(f"advertiser payment must be non-negative, got {self.payment}")

    @property
    def budget_effectiveness(self) -> float:
        """``L_i / I_i`` — the ordering key of the budget-effective greedy."""
        return self.payment / self.demand
