"""The regret model (paper Eq. 1) and its dual rewiring (Eq. 2).

For an advertiser with demand ``I`` and payment ``L`` assigned a billboard
set achieving influence ``v = I(S)``:

* **Revenue regret** (``v < I``): the host forfeits part of the payment —
  ``R = L · (1 − γ · v/I)`` where ``γ ∈ [0, 1]`` is the unsatisfied penalty
  ratio (γ=1: pro-rata payment; γ=0: all-or-nothing).
* **Excessive-influence regret** (``v ≥ I``): over-delivery is an opportunity
  cost — ``R = L · (v − I)/I``.

The dual objective ``R'`` (Eq. 2) satisfies ``R + R' = L`` in the satisfied
branch and mirrors the structure in the unsatisfied branch; the paper proves
the billboard-driven local search approximates *maximizing* ``R'``.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_contract(payment: float, demand: float, gamma: float) -> None:
    if demand <= 0:
        raise ValueError(f"demand must be positive, got {demand}")
    if payment < 0:
        raise ValueError(f"payment must be non-negative, got {payment}")
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")


def regret(payment: float, demand: float, achieved: float, gamma: float) -> float:
    """Eq. 1: the host's regret for one advertiser.

    Parameters
    ----------
    payment:
        The advertiser's committed payment ``L``.
    demand:
        The demanded influence ``I`` (must be positive).
    achieved:
        The influence ``I(S)`` delivered by the assigned billboard set.
    gamma:
        Unsatisfied penalty ratio ``γ ∈ [0, 1]``.
    """
    _check_contract(payment, demand, gamma)
    if achieved < 0:
        raise ValueError(f"achieved influence must be non-negative, got {achieved}")
    if achieved < demand:
        return payment * (1.0 - gamma * achieved / demand)
    return payment * (achieved - demand) / demand


def dual_objective(payment: float, demand: float, achieved: float) -> float:
    """Eq. 2: the rewired (maximization) objective ``R'``.

    ``R'(S) = L · I(S)/I`` when unsatisfied and ``L − L · (I(S) − I)/I`` when
    satisfied; note ``R(S) = 0 ⟺ R'(S) = L`` and, with γ = 1,
    ``R(S) + R'(S) = L`` for any achieved influence.
    """
    _check_contract(payment, demand, gamma=1.0)
    if achieved < 0:
        raise ValueError(f"achieved influence must be non-negative, got {achieved}")
    if achieved < demand:
        return payment * achieved / demand
    return payment - payment * (achieved - demand) / demand


@dataclass(frozen=True, slots=True)
class RegretBreakdown:
    """Decomposition of one advertiser's regret into its two sources.

    The experiment section reports total regret as a stacked bar of the
    *unsatisfied penalty* (revenue regret) and the *excessive influence*
    (opportunity-cost regret); exactly one of the two components is nonzero
    for any single advertiser.
    """

    total: float
    unsatisfied_penalty: float
    excessive_influence: float

    def __add__(self, other: "RegretBreakdown") -> "RegretBreakdown":
        return RegretBreakdown(
            self.total + other.total,
            self.unsatisfied_penalty + other.unsatisfied_penalty,
            self.excessive_influence + other.excessive_influence,
        )

    @classmethod
    def zero(cls) -> "RegretBreakdown":
        return cls(0.0, 0.0, 0.0)

    @property
    def unsatisfied_share(self) -> float:
        """Fraction of the total regret due to the unsatisfied penalty."""
        return self.unsatisfied_penalty / self.total if self.total > 0 else 0.0

    @property
    def excessive_share(self) -> float:
        """Fraction of the total regret due to excessive influence."""
        return self.excessive_influence / self.total if self.total > 0 else 0.0


def regret_breakdown(payment: float, demand: float, achieved: float, gamma: float) -> RegretBreakdown:
    """Eq. 1 regret, labelled by which branch produced it."""
    value = regret(payment, demand, achieved, gamma)
    if achieved < demand:
        return RegretBreakdown(value, unsatisfied_penalty=value, excessive_influence=0.0)
    return RegretBreakdown(value, unsatisfied_penalty=0.0, excessive_influence=value)
