"""The MROAM problem instance (paper Definition 3.1).

An instance bundles the host's inventory (through its precomputed
:class:`~repro.billboard.influence.CoverageIndex`), the advertiser proposals,
and the unsatisfied penalty ratio ``γ``.  Solvers only ever see an instance;
the geometry that produced the coverage index is irrelevant to them, which is
what lets the hardness reduction and tests construct instances directly from
coverage lists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.regret import RegretBreakdown, dual_objective, regret, regret_breakdown


class MROAMInstance:
    """One input to the MROAM problem.

    Parameters
    ----------
    coverage:
        The billboard → trajectory coverage index.
    advertisers:
        The advertiser proposals; ids must be dense ``0..n-1`` in order.
    gamma:
        Unsatisfied penalty ratio ``γ ∈ [0, 1]`` (paper default 0.5).
    """

    def __init__(
        self,
        coverage: CoverageIndex,
        advertisers: Sequence[Advertiser],
        gamma: float = 0.5,
    ) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        advertisers = list(advertisers)
        if not advertisers:
            raise ValueError("an MROAM instance needs at least one advertiser")
        for expected_id, advertiser in enumerate(advertisers):
            if advertiser.advertiser_id != expected_id:
                raise ValueError(
                    "advertiser ids must be dense 0..n-1 in order; "
                    f"found id {advertiser.advertiser_id} at position {expected_id}"
                )
        self.coverage = coverage
        self.advertisers = advertisers
        self.gamma = float(gamma)
        self.demands = np.array([a.demand for a in advertisers], dtype=np.float64)
        self.payments = np.array([a.payment for a in advertisers], dtype=np.float64)
        if np.any(self.demands <= 0):
            # Eq. 1 divides by the demand; a zero slips through as inf/nan
            # regret deep inside the solvers, so reject it at the boundary
            # (covers advertiser-like objects that bypass Advertiser's own
            # validation).
            bad = [a.advertiser_id for a in advertisers if a.demand <= 0]
            raise ValueError(f"advertiser demands must be positive; got <= 0 for ids {bad}")

    @classmethod
    def from_contracts(
        cls,
        coverage: CoverageIndex,
        contracts: Sequence[tuple[int, float]],
        gamma: float = 0.5,
    ) -> "MROAMInstance":
        """Build an instance from ``(demand, payment)`` pairs."""
        advertisers = [
            Advertiser(i, demand, payment) for i, (demand, payment) in enumerate(contracts)
        ]
        return cls(coverage, advertisers, gamma)

    @property
    def num_advertisers(self) -> int:
        return len(self.advertisers)

    @property
    def num_billboards(self) -> int:
        return self.coverage.num_billboards

    def regret_of(self, advertiser_id: int, achieved: float) -> float:
        """Eq. 1 regret of one advertiser at a given achieved influence."""
        advertiser = self.advertisers[advertiser_id]
        return regret(advertiser.payment, advertiser.demand, achieved, self.gamma)

    def breakdown_of(self, advertiser_id: int, achieved: float) -> RegretBreakdown:
        advertiser = self.advertisers[advertiser_id]
        return regret_breakdown(advertiser.payment, advertiser.demand, achieved, self.gamma)

    def dual_of(self, advertiser_id: int, achieved: float) -> float:
        """Eq. 2 dual objective ``R'`` of one advertiser."""
        advertiser = self.advertisers[advertiser_id]
        return dual_objective(advertiser.payment, advertiser.demand, achieved)

    @property
    def global_demand(self) -> float:
        """``I^A = Σ_i I_i`` — total demanded influence."""
        return float(self.demands.sum())

    @property
    def demand_supply_ratio(self) -> float:
        """The realized ``α = I^A / I*`` of this instance."""
        supply = self.coverage.supply
        return self.global_demand / supply if supply else float("inf")

    def total_payment(self) -> float:
        """``Σ_i L_i`` — the revenue ceiling (upper bound of ``Σ R'``)."""
        return float(self.payments.sum())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"MROAM(|U|={self.num_billboards}, |T|={self.coverage.num_trajectories}, "
            f"|A|={self.num_advertisers}, gamma={self.gamma}, "
            f"alpha={self.demand_supply_ratio:.2f})"
        )
