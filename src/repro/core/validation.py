"""Structural invariant checks for deployment plans.

Used by tests and (optionally) by the harness after each solver run to catch
any drift between the incremental counters and the ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import UNASSIGNED, Allocation


class AllocationInvariantError(AssertionError):
    """Raised when an allocation violates a structural invariant."""


def validate_allocation(allocation: Allocation) -> None:
    """Check every invariant of an :class:`Allocation`; raise on violation.

    Invariants checked:

    1. Billboard sets are pairwise disjoint and consistent with the owner map.
    2. The unassigned pool is exactly the complement of all assigned billboards.
    3. Each advertiser's multiplicity counters equal a from-scratch recount of
       its billboard set's coverage.
    4. Each cached influence scalar equals the number of nonzero counters.
    """
    instance = allocation.instance
    seen: set[int] = set()
    for advertiser_id in range(instance.num_advertisers):
        billboard_set = allocation.billboards_of(advertiser_id)
        overlap = seen & billboard_set
        if overlap:
            raise AllocationInvariantError(
                f"billboards {sorted(overlap)} appear in multiple advertiser sets"
            )
        seen |= billboard_set
        for billboard_id in billboard_set:
            if allocation.owner_of(billboard_id) != advertiser_id:
                raise AllocationInvariantError(
                    f"billboard {billboard_id} is in S_{advertiser_id} but the owner "
                    f"map says {allocation.owner_of(billboard_id)}"
                )

    expected_unassigned = set(range(instance.num_billboards)) - seen
    if set(allocation.unassigned) != expected_unassigned:
        raise AllocationInvariantError(
            "unassigned pool does not match the complement of assigned billboards"
        )
    for billboard_id in expected_unassigned:
        if allocation.owner_of(billboard_id) != UNASSIGNED:
            raise AllocationInvariantError(
                f"billboard {billboard_id} is in no set but has owner "
                f"{allocation.owner_of(billboard_id)}"
            )

    coverage = instance.coverage
    for advertiser_id in range(instance.num_advertisers):
        recount = np.zeros(coverage.num_trajectories, dtype=np.int32)
        for billboard_id in allocation.billboards_of(advertiser_id):
            recount[coverage.covered_by(billboard_id)] += 1
        if not np.array_equal(recount, allocation.counts_row(advertiser_id)):
            raise AllocationInvariantError(
                f"multiplicity counters of advertiser {advertiser_id} drifted from "
                "a from-scratch recount"
            )
        true_influence = int(np.count_nonzero(recount))
        if true_influence != allocation.influence(advertiser_id):
            raise AllocationInvariantError(
                f"cached influence {allocation.influence(advertiser_id)} of advertiser "
                f"{advertiser_id} != recomputed {true_influence}"
            )
