"""Core of the reproduction: the MROAM problem (paper Section 3).

* :mod:`repro.core.regret` — the regret model of Eq. 1 and its dual (Eq. 2).
* :mod:`repro.core.advertiser` — advertiser campaign proposals ``(I_i, L_i)``.
* :mod:`repro.core.problem` — :class:`MROAMInstance`, the full problem input.
* :mod:`repro.core.allocation` — :class:`Allocation`, the incremental
  deployment-plan state every solver manipulates.
* :mod:`repro.core.moves` — side-effect-free delta evaluation of the local
  search move families.
* :mod:`repro.core.validation` — structural invariant checks.
"""

from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.regret import RegretBreakdown, dual_objective, regret, regret_breakdown
from repro.core.serialization import load_allocation, save_allocation
from repro.core.validation import validate_allocation

__all__ = [
    "Advertiser",
    "Allocation",
    "MROAMInstance",
    "RegretBreakdown",
    "dual_objective",
    "load_allocation",
    "regret",
    "regret_breakdown",
    "save_allocation",
    "validate_allocation",
]
