"""Shared utilities: RNG plumbing and timing helpers."""

from repro.utils.rng import as_generator, spawn_children
from repro.utils.timing import Stopwatch

__all__ = ["as_generator", "spawn_children", "Stopwatch"]
