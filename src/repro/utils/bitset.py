"""Packed ``uint64`` bitset helpers for the coverage kernel.

Trajectory-id sets are packed 64 ids per word: id ``t`` lives in word
``t >> 6`` at bit ``t & 63`` (little bit order, little-endian words, so the
layout is exactly ``np.packbits(..., bitorder="little")`` viewed as
``"<u8"``).  Set algebra then becomes bitwise ops and cardinality becomes a
popcount — the packed counterpart of the sorted-id arrays in
:class:`repro.billboard.influence.CoverageIndex`.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
#: Packed word dtype — explicitly little-endian so the bit-position layout
#: ``t -> (word t >> 6, bit t & 63)`` holds on any host.
WORD_DTYPE = np.dtype("<u8")


def num_words(num_bits: int) -> int:
    """Words needed to hold ``num_bits`` bits."""
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean array into ``uint64`` words along its last axis.

    ``(..., n)`` bools become ``(..., num_words(n))`` words; padding bits are
    zero.  Bit ``t`` of the result is ``mask[..., t]``.
    """
    mask = np.ascontiguousarray(mask, dtype=bool)
    n = mask.shape[-1]
    words = num_words(n)
    if words == 0:
        return np.zeros(mask.shape[:-1] + (0,), dtype=WORD_DTYPE)
    packed = np.packbits(mask, axis=-1, bitorder="little")
    pad = words * 8 - packed.shape[-1]
    if pad:
        padding = [(0, 0)] * (packed.ndim - 1) + [(0, pad)]
        packed = np.pad(packed, padding)
    return np.ascontiguousarray(packed).view(WORD_DTYPE)


def pack_ids(ids: np.ndarray, num_bits: int) -> np.ndarray:
    """Pack an integer id array into a single bitset of ``num_bits`` bits."""
    mask = np.zeros(num_bits, dtype=bool)
    mask[np.asarray(ids, dtype=np.int64)] = True
    return pack_bits(mask)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (same shape as ``words``)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy 1.x
    _BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (same shape as ``words``)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        counts = _BYTE_POPCOUNT[as_bytes].reshape(words.shape + (8,))
        return counts.sum(axis=-1, dtype=np.uint64)


def popcount_inplace(words: np.ndarray) -> np.ndarray:
    """Per-word population count, reusing ``words`` as the output buffer.

    On numpy >= 2.0 the counts overwrite ``words`` (zero extra allocation —
    this is what the restricted batch passes run on their scratch block); on
    the 1.x fallback a fresh array is returned and ``words`` is untouched.
    Callers must treat ``words`` as clobbered either way.
    """
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words, out=words)
    return popcount(words)  # pragma: no cover - numpy 1.x only


def popcount_total(words: np.ndarray) -> int:
    """Total number of set bits across the whole array."""
    if words.size == 0:
        return 0
    return int(popcount(words).sum())


def unpack_ids(bits: np.ndarray, num_bits: int) -> np.ndarray:
    """Sorted ``int64`` ids of the set bits (inverse of :func:`pack_ids`)."""
    if bits.size == 0:
        return np.empty(0, dtype=np.int64)
    as_bytes = np.ascontiguousarray(bits).view(np.uint8)
    mask = np.unpackbits(as_bytes, bitorder="little")[:num_bits]
    return np.nonzero(mask)[0].astype(np.int64)
