"""Wall-clock timing helpers used by the efficiency experiments."""

from __future__ import annotations

import time


class Stopwatch:
    """A simple cumulative wall-clock stopwatch.

    Usage::

        watch = Stopwatch()
        with watch:
            run_solver()
        print(watch.elapsed)

    The stopwatch accumulates across multiple ``with`` blocks, which lets the
    harness exclude setup work from an algorithm's reported runtime.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the duration of this lap."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started_at
        self.elapsed += lap
        self._started_at = None
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Stop even when an exception is propagating out of the block, and
        # never raise from here (a "not running" error would mask the
        # original exception if the block stopped the watch itself).
        if self._started_at is not None:
            self.stop()
