"""Seeded random-number-generator plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects created here, so every experiment is reproducible from a single seed.
Functions accept either a seed (``int`` or ``None``) or an existing generator
and normalize it with :func:`as_generator`.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can share one RNG across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Useful for running repeated trials (e.g. the five runs averaged by the
    paper's efficiency study) whose streams do not overlap.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be split directly; draw child seeds from it.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
