"""Numerical 3-dimensional matching (N3DM), the NP-complete source problem.

Given three multisets of integers ``X, Y, Z`` of size ``n`` each and a bound
``b``, decide whether they can be partitioned into ``n`` disjoint triples
``(x, y, z)`` — one element from each multiset — with ``x + y + z = b`` for
every triple.  A matching can exist only if ``b = (ΣX + ΣY + ΣZ)/n``.

This module provides small-instance machinery for exercising the paper's
hardness reduction: a brute-force matcher and generators for yes- and
random instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.utils.rng import as_generator


@dataclass(frozen=True)
class N3DMInstance:
    """One N3DM decision instance."""

    x: tuple[int, ...]
    y: tuple[int, ...]
    z: tuple[int, ...]
    bound: int

    def __post_init__(self) -> None:
        if not len(self.x) == len(self.y) == len(self.z):
            raise ValueError(
                f"multisets must share a size, got {len(self.x)}, {len(self.y)}, {len(self.z)}"
            )
        if len(self.x) == 0:
            raise ValueError("N3DM instances must be non-empty")

    @property
    def size(self) -> int:
        return len(self.x)

    def is_consistent(self) -> bool:
        """Necessary condition: ``b·n = ΣX + ΣY + ΣZ``."""
        return sum(self.x) + sum(self.y) + sum(self.z) == self.bound * self.size


def find_matching(instance: N3DMInstance) -> list[tuple[int, int, int]] | None:
    """Brute-force a matching; returns index triples ``(i, j, k)`` or ``None``.

    Tries every permutation pair — ``O(n!²)`` — so only for small ``n``.
    """
    if not instance.is_consistent():
        return None
    n = instance.size
    indices = range(n)
    for y_perm in itertools.permutations(indices):
        # Prune per-y_perm: the z choice is forced per position only as a
        # full permutation; try all.
        for z_perm in itertools.permutations(indices):
            if all(
                instance.x[i] + instance.y[y_perm[i]] + instance.z[z_perm[i]]
                == instance.bound
                for i in indices
            ):
                return [(i, y_perm[i], z_perm[i]) for i in indices]
    return None


def yes_instance(n: int, seed=None, value_range: tuple[int, int] = (1, 20)) -> N3DMInstance:
    """Generate an instance guaranteed to admit a matching.

    Triples are sampled first so every ``x + y + z`` equals the bound, then
    the multisets are shuffled independently to hide the matching.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    low, high = value_range
    xs = [int(rng.integers(low, high + 1)) for _ in range(n)]
    ys = [int(rng.integers(low, high + 1)) for _ in range(n)]
    bound = max(x + y for x, y in zip(xs, ys)) + int(rng.integers(low, high + 1))
    zs = [bound - x - y for x, y in zip(xs, ys)]
    rng.shuffle(xs)
    rng.shuffle(ys)
    rng.shuffle(zs)
    return N3DMInstance(tuple(xs), tuple(ys), tuple(zs), bound)


def random_instance(n: int, seed=None, value_range: tuple[int, int] = (1, 20)) -> N3DMInstance:
    """Generate a random instance that may or may not admit a matching.

    The bound is set to the average triple sum rounded to an integer (the
    necessary condition), so both YES and NO instances occur.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = as_generator(seed)
    low, high = value_range
    xs = tuple(int(rng.integers(low, high + 1)) for _ in range(n))
    ys = tuple(int(rng.integers(low, high + 1)) for _ in range(n))
    zs = tuple(int(rng.integers(low, high + 1)) for _ in range(n))
    total = sum(xs) + sum(ys) + sum(zs)
    bound = total // n
    if bound * n != total:
        # Nudge one z element so the necessary condition holds and the
        # instance is at least plausible.
        delta = bound * n - total
        zs = zs[:-1] + (zs[-1] + delta,)
    return N3DMInstance(xs, ys, zs, bound)
