"""The paper's hardness reduction: N3DM → MROAM (Section 4).

Construction (following steps (1)–(4) of the paper):

* ``3n`` billboards split into three groups ``D1, D2, D3`` mirroring
  ``X, Y, Z``; each billboard covers a *disjoint* block of trajectories.
* Influence values are revised with a large constant ``c``:
  ``D1: c + x_i``, ``D2: 3c + y_j``, ``D3: 9c + z_k``, which forces any
  zero-regret advertiser set to contain exactly one billboard from each
  group (the powers of ``c`` act as digits: 1 + 3 + 9 = 13 is the only way
  to reach 13 with up to three terms from {1, 3, 9} without repetition
  overflowing a digit, given ``c`` dominates the element values).
* Every advertiser demands ``I_i = b + 13c`` with ``γ = 0``.

Zero total regret is then achievable iff the N3DM instance has a matching,
which proves MROAM NP-hard and NP-hard to approximate within any constant
factor.
"""

from __future__ import annotations

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.theory.n3dm import N3DMInstance


def _revised_influences(instance: N3DMInstance, c: int) -> list[int]:
    """The 3n revised billboard influences, ordered D1 ++ D2 ++ D3."""
    return (
        [c + value for value in instance.x]
        + [3 * c + value for value in instance.y]
        + [9 * c + value for value in instance.z]
    )


def reduce_n3dm_to_mroam(
    instance: N3DMInstance,
    c: int | None = None,
    payment: float = 1.0,
) -> MROAMInstance:
    """Build the MROAM instance of the reduction.

    Parameters
    ----------
    instance:
        The source N3DM instance.
    c:
        The large constant of step (4).  Defaults to a value strictly
        dominating every element and the bound, which suffices for the
        digit argument on finite instances.
    payment:
        Payment ``L_i`` of every advertiser (any positive value works; regret
        zero ⟺ demand exactly met regardless of ``L``).

    Returns
    -------
    An :class:`MROAMInstance` with ``γ = 0`` whose minimum regret is zero iff
    the N3DM instance admits a matching.
    """
    if payment <= 0:
        raise ValueError(f"payment must be positive, got {payment}")
    if c is None:
        largest = max(max(instance.x), max(instance.y), max(instance.z), instance.bound, 1)
        c = 20 * largest
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")

    influences = _revised_influences(instance, c)
    coverage_lists: list[range] = []
    cursor = 0
    for influence in influences:
        coverage_lists.append(range(cursor, cursor + influence))
        cursor += influence
    coverage = CoverageIndex.from_coverage_lists(coverage_lists, num_trajectories=cursor)

    demand = instance.bound + 13 * c
    advertisers = [
        Advertiser(i, demand, payment, name=f"n3dm-{i}") for i in range(instance.size)
    ]
    return MROAMInstance(coverage, advertisers, gamma=0.0)


def matching_to_allocation(
    mroam: MROAMInstance,
    matching: list[tuple[int, int, int]],
) -> Allocation:
    """Translate an N3DM matching into the corresponding zero-regret plan.

    ``matching`` holds index triples ``(i, j, k)`` into ``X, Y, Z``; the
    billboard layout is ``D1 = [0, n)``, ``D2 = [n, 2n)``, ``D3 = [2n, 3n)``.
    """
    n = mroam.num_advertisers
    if mroam.num_billboards != 3 * n:
        raise ValueError(
            f"instance does not look like a reduction output: |U|={mroam.num_billboards}, "
            f"|A|={n}"
        )
    allocation = Allocation(mroam)
    for advertiser_id, (i, j, k) in enumerate(matching):
        allocation.assign(i, advertiser_id)
        allocation.assign(n + j, advertiser_id)
        allocation.assign(2 * n + k, advertiser_id)
    return allocation
