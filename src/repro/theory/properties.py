"""Executable objective-structure analysis (paper Example 2, Section 6).

The paper's key structural claim — the regret objective is *neither
monotone nor submodular*, so plain greedy carries no guarantee — is made
executable here:

* :func:`example2_instance` reproduces the paper's Example 2 witness
  verbatim;
* :func:`find_monotonicity_violation` / :func:`find_submodularity_violation`
  search a single-advertiser set function for witnesses, so tests can verify
  both that the regret objective violates the properties and that the plain
  coverage influence ``I(·)`` satisfies them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance

SetFunction = Callable[[frozenset[int]], float]


@dataclass(frozen=True)
class MonotonicityViolation:
    """A witness ``subset ⊆ superset`` with ``f(subset) > f(superset)``
    (for increasing checks; the regret objective is checked as a *gain*
    function, see callers)."""

    subset: frozenset[int]
    superset: frozenset[int]
    value_subset: float
    value_superset: float


@dataclass(frozen=True)
class SubmodularityViolation:
    """A witness ``A ⊆ B``, ``o ∉ B`` where the marginal gain grows:
    ``f(A ∪ o) − f(A) < f(B ∪ o) − f(B)``."""

    small: frozenset[int]
    big: frozenset[int]
    element: int
    gain_small: float
    gain_big: float


def find_monotonicity_violation(
    function: SetFunction, ground_set: Iterable[int]
) -> MonotonicityViolation | None:
    """First pair ``A ⊂ A ∪ {o}`` with ``f`` decreasing, or ``None``.

    Exhaustive over the powerset — only for small ground sets.
    """
    ground = sorted(ground_set)
    for size in range(len(ground) + 1):
        for subset in itertools.combinations(ground, size):
            base = frozenset(subset)
            value_base = function(base)
            for element in ground:
                if element in base:
                    continue
                extended = base | {element}
                value_extended = function(extended)
                if value_extended < value_base - 1e-12:
                    return MonotonicityViolation(base, extended, value_base, value_extended)
    return None


def find_submodularity_violation(
    function: SetFunction, ground_set: Iterable[int]
) -> SubmodularityViolation | None:
    """First diminishing-returns violation, or ``None`` (exhaustive)."""
    ground = sorted(ground_set)
    for small_size in range(len(ground)):
        for small in itertools.combinations(ground, small_size):
            small_set = frozenset(small)
            for big_size in range(small_size, len(ground)):
                for big in itertools.combinations(ground, big_size):
                    big_set = frozenset(big)
                    if not small_set <= big_set:
                        continue
                    for element in ground:
                        if element in big_set:
                            continue
                        gain_small = function(small_set | {element}) - function(small_set)
                        gain_big = function(big_set | {element}) - function(big_set)
                        if gain_small < gain_big - 1e-12:
                            return SubmodularityViolation(
                                small_set, big_set, element, gain_small, gain_big
                            )
    return None


def example2_instance() -> MROAMInstance:
    """The paper's Example 2 witness instance.

    One advertiser with ``I = 10, L = 10``; billboards shaped so that
    ``S1 ⊂ S2`` with ``I(S1) = 8``, ``I(S2) = 9``, and a billboard ``o1``
    adding one unit to either.  Layout (trajectory blocks):

    * ``b0``: 8 trajectories   (S1 = {b0})
    * ``b1``: 1 new trajectory (S2 = {b0, b1}, influence 9)
    * ``b2``: 1 new trajectory (the example's ``o1``)
    * ``b3``: 1 new trajectory (the follow-up ``o2`` pushing past the demand)
    """
    coverage = CoverageIndex.from_coverage_lists(
        [list(range(8)), [8], [9], [10]], num_trajectories=11
    )
    return MROAMInstance(coverage, [Advertiser(0, 10, 10.0)], gamma=0.5)


def regret_gain_function(instance: MROAMInstance, advertiser_id: int = 0) -> SetFunction:
    """The single-advertiser *regret reduction* set function
    ``g(S) = R(∅) − R(S)``.

    Greedy guarantees need ``g`` monotone and submodular; the paper's point
    is that it is neither.
    """
    empty_regret = instance.regret_of(advertiser_id, 0)

    def gain(subset: frozenset[int]) -> float:
        achieved = instance.coverage.influence_of_set(subset)
        return empty_regret - instance.regret_of(advertiser_id, achieved)

    return gain


def influence_function(instance: MROAMInstance) -> SetFunction:
    """The plain coverage influence ``I(S)`` (monotone and submodular)."""

    def influence(subset: frozenset[int]) -> float:
        return float(instance.coverage.influence_of_set(subset))

    return influence
