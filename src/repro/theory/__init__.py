"""Theory companion modules (paper Sections 4 and 6.3).

* :mod:`repro.theory.n3dm` — the numerical 3-dimensional matching problem
  used as the hardness source, with a brute-force decision oracle.
* :mod:`repro.theory.hardness` — the paper's polynomial reduction
  N3DM → MROAM (zero regret achievable iff a matching exists).
* :mod:`repro.theory.duality` — the dual objective machinery: Definition 6.1
  approximate local maxima and the Lemma 6.1 / Theorem 2 bound ``ρ``.
* :mod:`repro.theory.properties` — executable Example 2: the regret
  objective is neither monotone nor submodular.
"""

from repro.theory.duality import (
    approximation_bound,
    is_approximate_local_maximum,
    max_influence_ratio,
)
from repro.theory.hardness import matching_to_allocation, reduce_n3dm_to_mroam
from repro.theory.n3dm import N3DMInstance, find_matching, random_instance, yes_instance
from repro.theory.properties import (
    example2_instance,
    find_monotonicity_violation,
    find_submodularity_violation,
)

__all__ = [
    "N3DMInstance",
    "approximation_bound",
    "example2_instance",
    "find_matching",
    "find_monotonicity_violation",
    "find_submodularity_violation",
    "is_approximate_local_maximum",
    "matching_to_allocation",
    "max_influence_ratio",
    "random_instance",
    "reduce_n3dm_to_mroam",
    "yes_instance",
]
