"""Dual-objective machinery (paper Section 6.3).

The rewired objective ``R'`` (Eq. 2) turns regret minimization into revenue
maximization; ``R(S_i) = 0 ⟺ R'(S_i) = L_i``.  The billboard-driven local
search reaches a ``(1+r)``-approximate local maximum of ``R'``
(Definition 6.1), which Lemma 6.1 / Theorem 2 convert into the approximation
factor

    ρ = max( 1 + r·|U| , (1 − ψ)^{−|U|} )

where ``ψ = max_o I({o}) / I`` is the largest single-billboard influence
relative to the advertiser's demand.  The analysis is stated for a single
advertiser; the helpers here follow that framing and are exercised
empirically by the test suite against exhaustive optima.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


def max_influence_ratio(instance: MROAMInstance, advertiser_id: int) -> float:
    """``ψ = max_o I({o}) / I_i`` for one advertiser."""
    demand = instance.advertisers[advertiser_id].demand
    return float(instance.coverage.individual_influences.max()) / demand


def approximation_bound(instance: MROAMInstance, advertiser_id: int, r: float) -> float:
    """Theorem 2's factor ``ρ`` for one advertiser.

    Returns ``inf`` when ``ψ ≥ 1`` (a single billboard can satisfy the whole
    demand, collapsing case (b) of Lemma 6.1).
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    num_billboards = instance.num_billboards
    psi = max_influence_ratio(instance, advertiser_id)
    linear_term = 1.0 + r * num_billboards
    if psi >= 1.0:
        return float("inf")
    geometric_term = (1.0 - psi) ** (-num_billboards)
    return max(linear_term, geometric_term)


def _dual_of_set(instance: MROAMInstance, advertiser_id: int, billboard_set: set[int]) -> float:
    achieved = instance.coverage.influence_of_set(billboard_set)
    return instance.dual_of(advertiser_id, achieved)


def is_approximate_local_maximum(
    allocation: Allocation,
    advertiser_id: int,
    r: float,
    candidate_pool: set[int] | None = None,
) -> bool:
    """Check Definition 6.1 for one advertiser's set ``S``.

    ``S`` is a ``(1+r)``-approximate local maximum if
    ``(1+r)·R'(S) ≥ R'(S \\ {o})`` for every ``o ∈ S`` and
    ``(1+r)·R'(S) ≥ R'(S ∪ {o})`` for every ``o ∉ S`` (drawn from
    ``candidate_pool``, default: all billboards).
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    instance = allocation.instance
    current_set = set(allocation.billboards_of(advertiser_id))
    current_dual = _dual_of_set(instance, advertiser_id, current_set)
    threshold = (1.0 + r) * current_dual

    for billboard_id in current_set:
        if _dual_of_set(instance, advertiser_id, current_set - {billboard_id}) > threshold:
            return False

    pool = candidate_pool if candidate_pool is not None else set(range(instance.num_billboards))
    for billboard_id in pool - current_set:
        if _dual_of_set(instance, advertiser_id, current_set | {billboard_id}) > threshold:
            return False
    return True
