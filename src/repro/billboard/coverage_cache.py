"""Content-keyed on-disk cache for :class:`CoverageIndex`.

Building coverage is the dominant fixed cost of every experiment: a radius
join of the whole inventory against millions of trajectory points.  The join
is a pure function of (billboard locations, trajectory points, λ, meet-test
mode), so its result can be cached on disk keyed by a fingerprint of exactly
those inputs.  A sweep then recomputes coverage for an unchanged (city, λ)
cell at most once *ever* — across processes, workers, and runs.

The cache lives in the directory named by the ``REPRO_COVERAGE_CACHE``
environment variable (or an explicit ``cache_dir`` argument); when neither is
set, caching is disabled and :func:`get_or_build` degrades to a plain build.
Entries are ``npz`` files holding the CSR serialization of the covered-id
arrays; writes are atomic (temp file + rename) so concurrent workers can
share one cache directory safely.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro import env, obs
from repro.billboard import bitmap_store
from repro.billboard.influence import CoverageIndex, _resolve_bitmap_budget_mb
from repro.billboard.model import BillboardDB
from repro.trajectory.model import TrajectoryDB

#: Environment variable naming the cache directory (unset = caching off).
CACHE_ENV = env.COVERAGE_CACHE.name

#: Bumped whenever the meet-test semantics or the file layout change, so a
#: stale cache can never leak wrong coverage into an experiment.  v2 added
#: the bitmap budget / storage mode to the content key: an in-RAM index and
#: a memmap-sharded index of the same scenario are distinct cache entries,
#: and a cached load now rebuilds with the caller's bitmap configuration
#: instead of silently reverting to the defaults.
_FORMAT_VERSION = 2


def resolve_cache_dir(cache_dir: str | os.PathLike | None = None) -> Path | None:
    """The effective cache directory: explicit argument, else environment."""
    if cache_dir is not None:
        return Path(cache_dir)
    from_env = env.COVERAGE_CACHE.raw()
    return Path(from_env) if from_env else None


def coverage_fingerprint(
    billboards: BillboardDB,
    trajectories: TrajectoryDB,
    lambda_m: float,
    exact_segments: bool = False,
    bitmap_budget_mb: float | None = None,
    bitmap_storage: str | None = None,
) -> str:
    """Hex digest identifying one coverage computation's exact inputs.

    The bitmap budget and storage mode are part of the key (resolved the
    same way the index resolves them, so argument and environment spellings
    of the same configuration hash identically): indexes that dispatch to
    different kernels/tiers must not collide in the cache.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-coverage-v{_FORMAT_VERSION}".encode())
    digest.update(np.float64(lambda_m).tobytes())
    digest.update(b"exact" if exact_segments else b"sampled")
    digest.update(np.float64(_resolve_bitmap_budget_mb(bitmap_budget_mb)).tobytes())
    digest.update(bitmap_store.resolve_storage(bitmap_storage).encode())
    digest.update(np.int64(len(billboards)).tobytes())
    digest.update(np.int64(len(trajectories)).tobytes())
    digest.update(np.ascontiguousarray(billboards.locations).tobytes())
    digest.update(np.ascontiguousarray(trajectories.point_counts).tobytes())
    digest.update(np.ascontiguousarray(trajectories.all_points).tobytes())
    return digest.hexdigest()


def cache_path(cache_dir: str | os.PathLike, fingerprint: str) -> Path:
    return Path(cache_dir) / f"coverage-{fingerprint}.npz"


def store(index: CoverageIndex, path: str | os.PathLike) -> Path:
    """Persist one index at ``path`` (atomic replace; parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    flat_ids, offsets = index.to_arrays()
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            np.savez_compressed(
                stream,
                version=np.int64(_FORMAT_VERSION),
                flat_ids=flat_ids,
                offsets=offsets,
                num_trajectories=np.int64(index.num_trajectories),
                lambda_m=np.float64(index.lambda_m),
            )
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return path


def load(
    path: str | os.PathLike,
    bitmap_budget_mb: float | None = None,
    bitmap_storage: str | None = None,
) -> CoverageIndex | None:
    """Load a cached index, or ``None`` if absent/unreadable/stale.

    The bitmap configuration is applied to the rebuilt index — a cache hit
    dispatches to exactly the kernels a fresh build would.
    """
    path = Path(path)
    if not path.is_file():
        return None
    try:
        with np.load(path) as archive:
            if int(archive["version"]) != _FORMAT_VERSION:
                obs.counter_add("coverage_cache.corrupt")
                return None
            return CoverageIndex.from_flat_arrays(
                archive["flat_ids"],
                archive["offsets"],
                num_trajectories=int(archive["num_trajectories"]),
                lambda_m=float(archive["lambda_m"]),
                bitmap_budget_mb=bitmap_budget_mb,
                bitmap_storage=bitmap_storage,
            )
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        obs.counter_add("coverage_cache.corrupt")
        return None


def get_or_build(
    billboards: BillboardDB,
    trajectories: TrajectoryDB,
    lambda_m: float = 100.0,
    exact_segments: bool = False,
    cache_dir: str | os.PathLike | None = None,
    bitmap_budget_mb: float | None = None,
    bitmap_storage: str | None = None,
    chunk_size: int | None = None,
) -> CoverageIndex:
    """Load the coverage index from cache, building (and storing) on a miss.

    With no cache directory configured this is exactly a
    :class:`CoverageIndex` construction.
    """
    directory = resolve_cache_dir(cache_dir)
    if directory is None:
        return CoverageIndex(
            billboards,
            trajectories,
            lambda_m=lambda_m,
            exact_segments=exact_segments,
            bitmap_budget_mb=bitmap_budget_mb,
            bitmap_storage=bitmap_storage,
            chunk_size=chunk_size,
        )
    fingerprint = coverage_fingerprint(
        billboards,
        trajectories,
        lambda_m,
        exact_segments,
        bitmap_budget_mb=bitmap_budget_mb,
        bitmap_storage=bitmap_storage,
    )
    path = cache_path(directory, fingerprint)
    with obs.span("coverage_cache.get_or_build", fingerprint=fingerprint[:12]):
        cached = load(path, bitmap_budget_mb, bitmap_storage)
        if cached is not None:
            obs.counter_add("coverage_cache.hit")
            return cached
        obs.counter_add("coverage_cache.miss")
        index = CoverageIndex(
            billboards,
            trajectories,
            lambda_m=lambda_m,
            exact_segments=exact_segments,
            bitmap_budget_mb=bitmap_budget_mb,
            bitmap_storage=bitmap_storage,
            chunk_size=chunk_size,
        )
        try:
            store(index, path)
        except OSError:
            # An unwritable cache location must not fail the experiment.
            obs.counter_add("coverage_cache.write_failure")
            obs.get_logger("repro.billboard.coverage_cache").warning(
                "coverage cache write failed for %s (continuing uncached)", path
            )
    return index
