"""Digital billboards: the time-slot extension discussed in Section 3.2.

The paper notes that a digital billboard can simply be treated as "multiple
billboards", one per time slot.  This module makes that concrete: given a
(physical) coverage index and trajectory departure/travel times, it expands
every physical billboard into one *virtual* billboard per slot whose
coverage is the physical coverage restricted to trajectories active during
the slot.  The resulting :class:`~repro.billboard.influence.CoverageIndex`
plugs into :class:`~repro.core.problem.MROAMInstance` unchanged — the
solvers never know slots exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.billboard.influence import CoverageIndex
from repro.trajectory.departures import SECONDS_PER_DAY
from repro.trajectory.model import TrajectoryDB


@dataclass(frozen=True, slots=True)
class TimeSlot:
    """A half-open interval of the day, ``[start_s, end_s)`` in seconds."""

    slot_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_s < self.end_s <= SECONDS_PER_DAY:
            raise ValueError(
                f"slot must satisfy 0 <= start < end <= {SECONDS_PER_DAY}, "
                f"got [{self.start_s}, {self.end_s})"
            )

    def label(self) -> str:
        return f"{int(self.start_s) // 3600:02d}:00-{int(self.end_s) // 3600:02d}:00"


def day_slots(count: int) -> list[TimeSlot]:
    """Split the day into ``count`` equal slots."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    edges = np.linspace(0.0, SECONDS_PER_DAY, count + 1)
    return [TimeSlot(i, float(edges[i]), float(edges[i + 1])) for i in range(count)]


@dataclass(frozen=True)
class DigitalExpansion:
    """The virtual inventory produced by :func:`expand_digital`.

    ``coverage`` is a normal coverage index over ``len(slots) × |U|`` virtual
    billboards; ``physical_of`` and ``slot_of`` map a virtual billboard id
    back to its panel and slot.
    """

    coverage: CoverageIndex
    slots: tuple[TimeSlot, ...]
    physical_of: np.ndarray
    slot_of: np.ndarray

    @property
    def num_virtual(self) -> int:
        return self.coverage.num_billboards

    def virtual_id(self, physical_id: int, slot_id: int) -> int:
        """The virtual billboard id of panel ``physical_id`` in ``slot_id``."""
        num_slots = len(self.slots)
        if not 0 <= slot_id < num_slots:
            raise IndexError(f"slot {slot_id} out of range [0, {num_slots})")
        return physical_id * num_slots + slot_id

    def describe_virtual(self, virtual_id: int) -> str:
        return (
            f"panel {int(self.physical_of[virtual_id])} @ "
            f"{self.slots[int(self.slot_of[virtual_id])].label()}"
        )

    def slot_supply(self, slot_id: int) -> int:
        """Total supply offered in one slot (Σ of its virtual influences)."""
        mask = self.slot_of == slot_id
        return int(self.coverage.individual_influences[mask].sum())


def expand_digital(
    physical: CoverageIndex,
    trajectories: TrajectoryDB,
    slots: list[TimeSlot] | int = 4,
) -> DigitalExpansion:
    """Expand a physical inventory into per-slot virtual billboards.

    A virtual billboard ``(o, s)`` covers trajectory ``t`` iff ``o`` covers
    ``t`` spatially *and* ``t`` is on the road during slot ``s`` (its active
    interval ``[start, start + travel_time]`` intersects the slot; trips
    wrapping past midnight are handled).

    Parameters
    ----------
    physical:
        The λ-coverage of the physical panels.
    trajectories:
        The corpus that produced ``physical`` (provides the timings).
    slots:
        Slot list, or an integer passed to :func:`day_slots`.
    """
    if physical.num_trajectories != len(trajectories):
        raise ValueError(
            f"coverage is over {physical.num_trajectories} trajectories but the "
            f"corpus has {len(trajectories)}"
        )
    if isinstance(slots, int):
        slots = day_slots(slots)
    if not slots:
        raise ValueError("at least one slot is required")

    starts = trajectories.start_times
    ends = starts + trajectories.travel_times
    wrapped = ends > SECONDS_PER_DAY

    active_masks = []
    for slot in slots:
        overlap = (starts < slot.end_s) & (ends > slot.start_s)
        # A trip wrapping past midnight is also active in the early slots it
        # spills into.
        spill = wrapped & (ends - SECONDS_PER_DAY > slot.start_s)
        active_masks.append(overlap | spill)

    num_slots = len(slots)
    coverage_lists: list[np.ndarray] = []
    physical_of = np.empty(physical.num_billboards * num_slots, dtype=np.int64)
    slot_of = np.empty_like(physical_of)
    for billboard_id in range(physical.num_billboards):
        covered = physical.covered_by(billboard_id)
        for slot in slots:
            virtual = billboard_id * num_slots + slot.slot_id
            mask = active_masks[slot.slot_id][covered]
            coverage_lists.append(covered[mask])
            physical_of[virtual] = billboard_id
            slot_of[virtual] = slot.slot_id

    coverage = CoverageIndex.from_coverage_lists(
        coverage_lists, physical.num_trajectories, lambda_m=physical.lambda_m
    )
    return DigitalExpansion(
        coverage=coverage,
        slots=tuple(slots),
        physical_of=physical_of,
        slot_of=slot_of,
    )
