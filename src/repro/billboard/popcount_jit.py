"""Optional numba-compiled popcount kernels for the bitmap coverage passes.

The numpy bitmap kernel spends its time in two places: the fused
``AND + popcount + row-sum`` of the batch passes and the ``OR-reduce +
popcount`` of union-influence queries.  Both allocate a full block-sized
temporary (``block & mask``) before counting.  The kernels here fuse the
whole loop into one compiled pass with no temporaries, which is worth
~2-4x on large blocks and keeps the working set at one cache line per row.

numba is strictly optional:

* the path is **opt-in** via ``REPRO_NUMBA=1`` (unset/0 = pure numpy);
* when requested but numba is not importable, a warning fires once and
  every caller transparently falls back to the numpy path;
* the compiled kernels are bit-identical to the numpy path — the
  bitmap-kernel property suites are the contract, and
  :func:`swar_popcount_reference` pins the exact SWAR formula the jitted
  code uses so the formula itself is verified even on numba-less hosts.
"""

from __future__ import annotations

import numpy as np

from repro import env, obs

#: Environment variable opting in to the numba-compiled popcount path.
NUMBA_ENV = env.NUMBA.name

# SWAR popcount constants (Hacker's Delight §5-1).  The jitted kernels and
# the numpy reference below use exactly these, so equality of the reference
# against ``np.bitwise_count`` validates the formula the compiled path runs.
_M1 = 0x5555555555555555
_M2 = 0x3333333333333333
_M4 = 0x0F0F0F0F0F0F0F0F
_H01 = 0x0101010101010101

_kernels = None
_resolved = False


def requested() -> bool:
    """Whether ``REPRO_NUMBA`` opts in to the compiled path."""
    return bool(env.NUMBA.get())


def reset() -> None:
    """Forget the cached resolution (tests and benches flip the env var)."""
    global _kernels, _resolved
    _kernels = None
    _resolved = False


def get_kernels():
    """The compiled kernel table, or ``None`` (not requested / no numba).

    Resolution happens once per process (or per :func:`reset`): importing
    and jitting is paid on the first bitmap dispatch after opt-in, never on
    the default numpy path.
    """
    global _kernels, _resolved
    if not _resolved:
        _resolved = True
        if requested():
            _kernels = _compile()
            if _kernels is None:
                obs.get_logger("repro.billboard.popcount_jit").warning(
                    "%s=%s requested the compiled popcount path but numba is "
                    "not importable; falling back to the numpy kernels",
                    NUMBA_ENV,
                    env.NUMBA.raw(),
                )
                obs.counter_add("influence.numba.unavailable")
    return _kernels


def enabled() -> bool:
    """Whether bitmap dispatches will run the compiled kernels."""
    return get_kernels() is not None


def swar_popcount_reference(words: np.ndarray) -> np.ndarray:
    """Pure-numpy SWAR popcount — the exact formula the jitted kernels use.

    Exists so the formula is property-tested against ``np.bitwise_count``
    even on hosts without numba; it is not used on any hot path.
    """
    x = np.ascontiguousarray(words, dtype=np.uint64).copy()
    one, two, four, s56 = (np.uint64(s) for s in (1, 2, 4, 56))
    m1, m2, m4, h01 = (np.uint64(m) for m in (_M1, _M2, _M4, _H01))
    x = x - ((x >> one) & m1)
    x = (x & m2) + ((x >> two) & m2)
    x = (x + (x >> four)) & m4
    return ((x * h01) >> s56).astype(np.int64)


class _Kernels:
    """Jitted entry points (bound as plain attributes; numba dispatchers)."""

    def __init__(self, masked_rows, union_popcount, masked_total):
        self.masked_rows = masked_rows
        self.union_popcount = union_popcount
        self.masked_total = masked_total


def _compile():
    """Build the jitted kernels, or ``None`` when numba is unavailable."""
    try:
        import numba
    except ImportError:
        return None

    m1, m2, m4, h01 = (
        np.uint64(_M1),
        np.uint64(_M2),
        np.uint64(_M4),
        np.uint64(_H01),
    )
    one, two, four, s56 = (np.uint64(s) for s in (1, 2, 4, 56))

    @numba.njit(nogil=True, cache=True)
    def _pop64(x):
        x = x - ((x >> one) & m1)
        x = (x & m2) + ((x >> two) & m2)
        x = (x + (x >> four)) & m4
        return np.int64((x * h01) >> s56)

    @numba.njit(nogil=True, cache=True)
    def masked_rows(block, mask):
        rows, words = block.shape
        out = np.empty(rows, dtype=np.int64)
        for i in range(rows):
            total = np.int64(0)
            for w in range(words):
                total += _pop64(block[i, w] & mask[w])
            out[i] = total
        return out

    @numba.njit(nogil=True, cache=True)
    def union_popcount(block, union):
        rows, words = block.shape
        total = np.int64(0)
        for w in range(words):
            acc = union[w]
            for i in range(rows):
                acc |= block[i, w]
            union[w] = acc
            total += _pop64(acc)
        return total

    @numba.njit(nogil=True, cache=True)
    def masked_total(row, mask):
        total = np.int64(0)
        for w in range(row.shape[0]):
            total += _pop64(row[w] & mask[w])
        return total

    try:
        # Force compilation now so a broken toolchain surfaces here (and the
        # caller falls back) instead of mid-solve.
        probe = np.zeros((1, 1), dtype=np.uint64)
        mask = np.ones(1, dtype=np.uint64)
        masked_rows(probe, mask)
        union_popcount(probe, np.zeros(1, dtype=np.uint64))
        masked_total(probe[0], mask)
    except Exception:  # pragma: no cover - depends on the numba install
        return None
    return _Kernels(masked_rows, union_popcount, masked_total)
