"""Billboard cost model (paper Section 7.1.2).

Hosts such as LAMAR and JCDecaux do not publish exact billboard costs; the
paper (following [26, 29]) models cost as proportional to influence with a
small random fluctuation:

    o.w = ⌊τ · I(o) / 10⌋,  τ ~ Uniform[0.9, 1.1]

The cost does not enter the regret objective (Section 3.2 argues it is a
fixed portion either way); it is provided for API completeness and for
downstream analyses.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.influence import CoverageIndex
from repro.utils.rng import as_generator

TAU_LOW = 0.9
TAU_HIGH = 1.1


def billboard_cost(influence: int, tau: float) -> int:
    """Cost of one billboard given its influence and fluctuation factor."""
    if influence < 0:
        raise ValueError(f"influence must be non-negative, got {influence}")
    if not TAU_LOW <= tau <= TAU_HIGH:
        raise ValueError(f"tau must be in [{TAU_LOW}, {TAU_HIGH}], got {tau}")
    return int(np.floor(tau * influence / 10.0))


def cost_vector(index: CoverageIndex, seed=None) -> np.ndarray:
    """Sample the cost of every billboard in the inventory."""
    rng = as_generator(seed)
    taus = rng.uniform(TAU_LOW, TAU_HIGH, size=index.num_billboards)
    return np.floor(taus * index.individual_influences / 10.0).astype(np.int64)
