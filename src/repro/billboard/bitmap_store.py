"""Tiered, row-sharded storage for the packed coverage bitmap.

PR 1's bitmap kernel kept the whole ``(num_billboards, words)`` ``uint64``
matrix in one RAM array and silently fell back to the id-array kernel when
the matrix exceeded ``REPRO_BITMAP_BUDGET_MB``.  At the paper's corpus scale
(1.7-2.2 M trajectories) that fallback is exactly where the bitmap kernel
matters most, so the bitmap now lives behind a :class:`BitmapStore` that
splits the matrix into fixed-height *row shards* and backs them with one of
three tiers:

* ``ram`` — one plain ndarray (the PR-1 layout; chosen when the matrix fits
  the budget);
* ``memmap`` — one ``numpy.memmap`` file per shard under a spill directory
  (``REPRO_BITMAP_SPILL_DIR``, else a ``bitmap-shards/`` folder inside
  ``REPRO_COVERAGE_CACHE``, else a private temp dir), chosen when the matrix
  exceeds the budget — queries then stream shard-sized working sets through
  the page cache instead of giving up the kernel;
* ``shm`` — shards attached from ``multiprocessing.shared_memory`` segments
  (what :meth:`CoverageIndex.attach_shared` workers see).

Every tier serves the same four access patterns the kernels need — single
row, restricted row gather, full-matrix masked popcount, union popcount —
and all tiers are bit-identical by construction (the shards hold the same
words).  The masked/union popcounts dispatch to the optional compiled
kernels in :mod:`repro.billboard.popcount_jit` when ``REPRO_NUMBA=1``.

The store mode is picked by ``resolve_storage`` from the ``bitmap_storage``
argument or the ``REPRO_BITMAP_STORAGE`` environment variable:

* ``auto`` (default) — ram within budget, memmap spill past it (only when a
  spill directory is configured), id-array fallback otherwise;
* ``ram`` / ``memmap`` — force that tier (``ram`` still honours the budget);
* ``none`` — disable the bitmap kernel entirely (same as budget 0).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import uuid
import weakref
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro import env
from repro.billboard import popcount_jit
from repro.utils import bitset

#: Environment variable selecting the bitmap storage mode.
STORAGE_ENV = env.BITMAP_STORAGE.name

#: Environment variable naming the memmap spill directory.
SPILL_DIR_ENV = env.BITMAP_SPILL_DIR.name

STORAGE_MODES = ("auto", "ram", "memmap", "none")

#: Target bytes per memmap shard; rows are sharded so one shard's working
#: set (the ``shard & mask`` pass) stays around this size.
DEFAULT_SHARD_BYTES = 64 * 1024 * 1024


def resolve_storage(storage: str | None) -> str:
    """Effective storage mode: explicit argument, else environment, else auto."""
    if storage is None:
        storage = env.BITMAP_STORAGE.raw() or "auto"
    storage = storage.strip().lower()
    if storage not in STORAGE_MODES:
        raise ValueError(
            f"bitmap storage must be one of {STORAGE_MODES}, got {storage!r} "
            f"(check the {STORAGE_ENV} environment variable)"
        )
    return storage


def resolve_spill_dir(spill_dir: str | os.PathLike | None = None) -> Path | None:
    """The configured memmap spill directory, or ``None`` when unset.

    Order: explicit argument, ``REPRO_BITMAP_SPILL_DIR``, then a
    ``bitmap-shards/`` folder inside ``REPRO_COVERAGE_CACHE``.
    """
    if spill_dir is not None:
        return Path(spill_dir)
    from_env = env.BITMAP_SPILL_DIR.raw()
    if from_env:
        return Path(from_env)
    cache_dir = env.COVERAGE_CACHE.raw()
    if cache_dir:
        return Path(cache_dir) / "bitmap-shards"
    return None


def rows_per_shard_for(words: int, shard_bytes: int = DEFAULT_SHARD_BYTES) -> int:
    """Shard height giving ~``shard_bytes`` per shard (always >= 1 row)."""
    return max(1, int(shard_bytes) // max(int(words) * 8, 1))


def _cleanup_spill(paths: tuple[str, ...], created_dir: str | None) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone / racing cleanup
            pass
    if created_dir is not None:
        shutil.rmtree(created_dir, ignore_errors=True)


class BitmapStore:
    """Row-sharded packed bitmap with uniform shard height.

    ``shards[k]`` holds rows ``[k * rows_per_shard, ...)``; every shard has
    exactly ``rows_per_shard`` rows except possibly the last.  The backing
    arrays may be plain ndarrays, memmaps, or views over shared-memory
    segments — the kernels only rely on the ndarray interface.
    """

    def __init__(
        self,
        shards: Sequence[np.ndarray],
        rows_per_shard: int,
        num_rows: int,
        words: int,
        tier: str,
        paths: tuple[str, ...] = (),
    ) -> None:
        self._shards = list(shards)
        self.rows_per_shard = int(rows_per_shard)
        self.num_rows = int(num_rows)
        self.words = int(words)
        self.tier = tier
        #: Absolute shard file paths (memmap tier only) — what
        #: :class:`~repro.parallel.shared.SharedCoverage` ships to workers.
        self.paths = tuple(paths)
        self._finalizer = None

    # ------------------------------------------------------------ construction

    @classmethod
    def ram(cls, bitmap: np.ndarray) -> "BitmapStore":
        """Wrap one in-RAM matrix as a single-shard store."""
        rows, words = bitmap.shape
        return cls([bitmap], max(rows, 1), rows, words, "ram")

    @classmethod
    def memmap_create(
        cls,
        num_rows: int,
        words: int,
        directory: str | os.PathLike | None,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
    ) -> "BitmapStore":
        """Create writable memmap shards (fill rows, then :meth:`seal`).

        ``directory=None`` uses a private temp dir.  The shard files (and a
        private temp dir, if one was made) are deleted when the store is
        garbage-collected — they are spill space, not a cache.
        """
        created_dir = None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-bitmap-")
            created_dir = str(directory)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        rows_per_shard = rows_per_shard_for(words, shard_bytes)
        token = uuid.uuid4().hex[:12]
        shards: list[np.ndarray] = []
        paths: list[str] = []
        for k, start in enumerate(range(0, max(num_rows, 1), rows_per_shard)):
            rows = min(rows_per_shard, num_rows - start) if num_rows else 1
            path = directory / f"bitmap-{token}-shard{k:04d}.u64"
            shard = np.memmap(
                path, dtype=bitset.WORD_DTYPE, mode="w+", shape=(max(rows, 1), max(words, 1))
            )
            shard[:] = 0
            shards.append(shard)
            paths.append(str(path))
        store = cls(shards, rows_per_shard, num_rows, words, "memmap", tuple(paths))
        store._finalizer = weakref.finalize(
            store, _cleanup_spill, tuple(paths), created_dir
        )
        return store

    @classmethod
    def memmap_attach(
        cls,
        paths: Sequence[str],
        rows_per_shard: int,
        num_rows: int,
        words: int,
    ) -> "BitmapStore":
        """Read-only view over another process's sealed shard files.

        Attachers never delete the files — the creating store's finalizer
        owns them (the same creator-owns rule as the shm segments).
        """
        shards = []
        for k, path in enumerate(paths):
            start = k * rows_per_shard
            rows = min(rows_per_shard, num_rows - start)
            shards.append(
                np.memmap(
                    path,
                    dtype=bitset.WORD_DTYPE,
                    mode="r",
                    shape=(max(rows, 1), max(words, 1)),
                )
            )
        return cls(shards, rows_per_shard, num_rows, words, "memmap", tuple(paths))

    @classmethod
    def from_shards(
        cls,
        shards: Sequence[np.ndarray],
        rows_per_shard: int,
        num_rows: int,
        words: int,
        tier: str,
    ) -> "BitmapStore":
        """Wrap already-backed shard arrays (the shm attach path)."""
        return cls(shards, rows_per_shard, num_rows, words, tier)

    def seal(self) -> None:
        """Flush written shards and reopen them read-only (memmap tier)."""
        if self.tier != "memmap":
            return
        for k, shard in enumerate(self._shards):
            if isinstance(shard, np.memmap) and shard.mode != "r":
                shard.flush()
                self._shards[k] = np.memmap(
                    self.paths[k], dtype=bitset.WORD_DTYPE, mode="r", shape=shard.shape
                )

    # ------------------------------------------------------------ row writing

    def set_rows(self, start: int, block: np.ndarray) -> None:
        """Write packed rows ``[start, start + len(block))`` (build phase)."""
        offset = 0
        while offset < len(block):
            shard_id, local = divmod(start + offset, self.rows_per_shard)
            take = min(len(block) - offset, self.rows_per_shard - local)
            self._shards[shard_id][local : local + take] = block[offset : offset + take]
            offset += take

    # ------------------------------------------------------------- row access

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[np.ndarray, ...]:
        """The backing shard arrays, in row order (read-only usage)."""
        return tuple(self._shards)

    def nbytes(self) -> int:
        return self.num_rows * self.words * 8

    def row(self, row_id: int) -> np.ndarray:
        """One packed coverage row (a view into its shard)."""
        shard_id, local = divmod(int(row_id), self.rows_per_shard)
        return self._shards[shard_id][local]

    def blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        """``(row_start, shard_array)`` pairs covering all rows in order."""
        for k, shard in enumerate(self._shards):
            yield k * self.rows_per_shard, shard

    def gather(self, row_ids: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Copy the given rows into ``out`` (any order, duplicates allowed)."""
        if len(self._shards) == 1:
            np.take(self._shards[0], row_ids, axis=0, out=out)
            return out
        shard_ids = row_ids // self.rows_per_shard
        local = row_ids - shard_ids * self.rows_per_shard
        for shard_id in np.unique(shard_ids):
            mask = shard_ids == shard_id
            out[mask] = self._shards[shard_id][local[mask]]
        return out

    # ---------------------------------------------------------------- kernels

    def masked_popcounts(self, mask: np.ndarray) -> np.ndarray:
        """``popcount(row & mask)`` for every row — the full-matrix batch pass.

        Streams one shard at a time, so peak extra memory is one shard's
        ``& mask`` temporary (numpy path) or nothing (compiled path).
        """
        kernels = popcount_jit.get_kernels()
        out = np.empty(self.num_rows, dtype=np.int64)
        for start, shard in self.blocks():
            stop = min(start + len(shard), self.num_rows)
            block = np.asarray(shard[: stop - start])
            if kernels is not None:
                out[start:stop] = kernels.masked_rows(block, mask)
            else:
                masked = block & mask
                out[start:stop] = (
                    bitset.popcount_inplace(masked).sum(axis=1).astype(np.int64)
                )
        return out

    def union_popcount(self, row_ids: np.ndarray, block_rows: int = 256) -> int:
        """Popcount of the OR of the given rows (union influence).

        Rows are gathered in bounded blocks so memmap shards never force a
        full-selection temporary.
        """
        if len(row_ids) == 0:
            return 0
        kernels = popcount_jit.get_kernels()
        union = np.zeros(self.words, dtype=bitset.WORD_DTYPE)
        scratch = np.empty(
            (min(len(row_ids), block_rows), self.words), dtype=bitset.WORD_DTYPE
        )
        total = 0
        for start in range(0, len(row_ids), block_rows):
            ids = row_ids[start : start + block_rows]
            block = self.gather(ids, scratch[: len(ids)])
            if kernels is not None:
                total = int(kernels.union_popcount(block, union))
            else:
                np.bitwise_or(np.bitwise_or.reduce(block, axis=0), union, out=union)
        if kernels is None:
            total = bitset.popcount_total(union)
        return total


def block_masked_popcounts(block: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``popcount(block[i] & mask)`` per row of an already-gathered block.

    The restricted batch passes call this on their scratch block.  The numpy
    path clobbers ``block`` (AND + in-place popcount, zero extra allocation);
    the compiled path reads it untouched.  Callers must treat ``block`` as
    clobbered either way.
    """
    kernels = popcount_jit.get_kernels()
    if kernels is not None:
        return kernels.masked_rows(np.asarray(block), mask)
    np.bitwise_and(block, mask, out=block)
    return bitset.popcount_inplace(block).sum(axis=1).astype(np.int64)


def masked_total(row: np.ndarray, mask: np.ndarray) -> int:
    """``popcount(row & mask)`` for one row (the swap-delta terms)."""
    kernels = popcount_jit.get_kernels()
    if kernels is not None:
        return int(kernels.masked_total(np.asarray(row), np.asarray(mask)))
    return bitset.popcount_total(row & mask)
