"""Billboard inventory data model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point


@dataclass(frozen=True, slots=True)
class Billboard:
    """One billboard owned by the host.

    Attributes
    ----------
    billboard_id:
        Dense integer id, the row index in the owning :class:`BillboardDB`.
    location:
        Panel location in the local metric projection.
    label:
        Optional free-form label (e.g. a street name or a bus-stop code).
    """

    billboard_id: int
    location: Point
    label: str = ""


class BillboardDB:
    """An immutable inventory of billboards with vectorized location access."""

    def __init__(self, billboards: Iterable[Billboard]) -> None:
        billboards = list(billboards)
        if not billboards:
            raise ValueError("BillboardDB needs at least one billboard")
        for expected_id, billboard in enumerate(billboards):
            if billboard.billboard_id != expected_id:
                raise ValueError(
                    "billboard ids must be dense 0..n-1 in order; "
                    f"found id {billboard.billboard_id} at position {expected_id}"
                )
        self._billboards = billboards
        self._locations = np.array(
            [[b.location.x, b.location.y] for b in billboards], dtype=np.float64
        )

    @classmethod
    def from_locations(cls, locations: np.ndarray, labels: list[str] | None = None) -> "BillboardDB":
        """Build an inventory from an ``(n, 2)`` location array."""
        locations = np.asarray(locations, dtype=np.float64)
        if labels is None:
            labels = [""] * len(locations)
        if len(labels) != len(locations):
            raise ValueError(f"got {len(locations)} locations but {len(labels)} labels")
        return cls(
            Billboard(i, Point(float(x), float(y)), label)
            for i, ((x, y), label) in enumerate(zip(locations, labels))
        )

    def __len__(self) -> int:
        return len(self._billboards)

    def __getitem__(self, billboard_id: int) -> Billboard:
        if not 0 <= billboard_id < len(self):
            raise IndexError(f"billboard id {billboard_id} out of range [0, {len(self)})")
        return self._billboards[billboard_id]

    def __iter__(self) -> Iterator[Billboard]:
        return iter(self._billboards)

    @property
    def locations(self) -> np.ndarray:
        """``(n, 2)`` array of billboard locations (no copy)."""
        return self._locations

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.from_points(self._locations)
