"""The coverage influence model (paper Section 7.1.2).

A Bernoulli meet indicator ``p(o, t) = 1`` iff some point of trajectory ``t``
lies within ``λ`` metres of billboard ``o``.  The influence of a billboard set
``S`` on ``t`` is ``1 − Π_{o∈S}(1 − p(o, t))`` — i.e. 1 iff *any* member meets
``t`` — and the influence of ``S`` is the sum over all trajectories:

    I(S) = |{t : some o ∈ S meets t}|

so influence is a set-coverage count.  :class:`CoverageIndex` materializes the
per-billboard covered-trajectory id arrays once (a grid-accelerated radius
join) and answers all influence queries from them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.billboard.model import BillboardDB
from repro.spatial.geometry import min_distance_to_polyline
from repro.spatial.grid import GridIndex
from repro.trajectory.model import TrajectoryDB


class CoverageIndex:
    """Precomputed billboard → covered-trajectory mapping for one ``λ``.

    Parameters
    ----------
    billboards, trajectories:
        The host's inventory and the audience corpus.
    lambda_m:
        Influence radius ``λ`` in metres (paper default 100 m).

    Notes
    -----
    The index is immutable.  All id arrays are sorted ``int64``; the number of
    trajectories is exposed so allocation states can size their multiplicity
    counters.
    """

    def __init__(
        self,
        billboards: BillboardDB,
        trajectories: TrajectoryDB,
        lambda_m: float = 100.0,
        exact_segments: bool = False,
    ) -> None:
        if lambda_m <= 0:
            raise ValueError(f"lambda_m must be positive, got {lambda_m}")
        self.lambda_m = float(lambda_m)
        self.num_billboards = len(billboards)
        self.num_trajectories = len(trajectories)

        # Billboard-centric radius join: index all trajectory points once,
        # then one grid query per billboard.  The inventory is thousands of
        # billboards while the corpus has millions of points, so this
        # direction keeps the Python-level loop on the small side.
        #
        # ``exact_segments`` upgrades the meet test from the paper's sampled
        # p(o, t) (some recorded point within λ) to the trajectory's actual
        # polyline coming within λ — the grid query is widened by half the
        # largest sample gap so no segment-only meet can be missed, then the
        # candidates are confirmed against the exact segment distance.
        margin = 0.0
        if exact_segments:
            gaps = [
                float(np.sqrt(np.sum(np.diff(trajectories.points_of(t), axis=0) ** 2, axis=1)).max())
                for t in range(len(trajectories))
                if len(trajectories.points_of(t)) > 1
            ]
            margin = max(gaps) / 2.0 if gaps else 0.0
        grid = GridIndex(trajectories.all_points, cell_size=lambda_m)
        point_owner = np.repeat(
            np.arange(len(trajectories), dtype=np.int64), trajectories.point_counts
        )
        covered: list[np.ndarray] = []
        for billboard in billboards:
            hits = grid.query_radius(
                billboard.location.x, billboard.location.y, lambda_m + margin
            )
            candidates = np.unique(point_owner[hits])
            if exact_segments:
                location = billboard.location.as_array()
                candidates = np.array(
                    [
                        t
                        for t in candidates
                        if min_distance_to_polyline(location, trajectories.points_of(int(t)))
                        <= lambda_m
                    ],
                    dtype=np.int64,
                )
            covered.append(candidates)
        self._covered = covered
        self._individual = np.array([len(ids) for ids in covered], dtype=np.int64)

    @classmethod
    def from_coverage_lists(
        cls,
        covered: Sequence[Sequence[int]],
        num_trajectories: int,
        lambda_m: float = 100.0,
    ) -> "CoverageIndex":
        """Build an index directly from coverage lists (no geometry).

        This constructor powers the hardness reduction (Section 4), the worked
        example of Section 1, and tests, where coverage sets are specified
        explicitly rather than derived from locations.
        """
        index = cls.__new__(cls)
        index.lambda_m = float(lambda_m)
        index.num_billboards = len(covered)
        index.num_trajectories = int(num_trajectories)
        arrays = []
        for billboard_id, ids in enumerate(covered):
            array = np.unique(np.asarray(list(ids), dtype=np.int64))
            if len(array) and (array[0] < 0 or array[-1] >= num_trajectories):
                raise ValueError(
                    f"billboard {billboard_id} covers trajectory ids outside "
                    f"[0, {num_trajectories})"
                )
            arrays.append(array)
        index._covered = arrays
        index._individual = np.array([len(a) for a in arrays], dtype=np.int64)
        return index

    def covered_by(self, billboard_id: int) -> np.ndarray:
        """Sorted trajectory ids covered by one billboard (no copy)."""
        return self._covered[billboard_id]

    def _flat_coverage(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR layout of all coverage arrays, built lazily.

        Returns ``(flat_ids, offsets)`` where billboard ``b``'s covered ids
        are ``flat_ids[offsets[b]:offsets[b + 1]]``.  Powers the batch gain
        computation the greedy solvers use to price every candidate billboard
        in one vectorized pass.
        """
        cached = getattr(self, "_flat_cache", None)
        if cached is None:
            counts = np.array([len(a) for a in self._covered], dtype=np.int64)
            offsets = np.concatenate([[0], np.cumsum(counts)])
            if offsets[-1]:
                flat = np.concatenate(self._covered)
            else:
                flat = np.empty(0, dtype=np.int64)
            cached = (flat, offsets)
            self._flat_cache = cached
        return cached

    def batch_add_gains(self, counts_row: np.ndarray) -> np.ndarray:
        """Marginal influence of adding *each* billboard to a set.

        Given an advertiser's multiplicity counter row, returns the vector
        ``g`` with ``g[b] = |{t ∈ cov(b) : counts_row[t] == 0}|`` for every
        billboard ``b``, in one vectorized pass over the flat coverage.
        """
        flat, offsets = self._flat_coverage()
        if len(flat) == 0:
            return np.zeros(self.num_billboards, dtype=np.int64)
        mask = (counts_row[flat] == 0).astype(np.int64)
        cumulative = np.concatenate([[0], np.cumsum(mask)])
        return cumulative[offsets[1:]] - cumulative[offsets[:-1]]

    def batch_remove_losses(self, counts_row: np.ndarray) -> np.ndarray:
        """Influence lost by removing *each* billboard from a set.

        ``l[b] = |{t ∈ cov(b) : counts_row[t] == 1}|``; only meaningful for
        billboards actually in the set, but computed for all.
        """
        flat, offsets = self._flat_coverage()
        if len(flat) == 0:
            return np.zeros(self.num_billboards, dtype=np.int64)
        mask = (counts_row[flat] == 1).astype(np.int64)
        cumulative = np.concatenate([[0], np.cumsum(mask)])
        return cumulative[offsets[1:]] - cumulative[offsets[:-1]]

    @property
    def individual_influences(self) -> np.ndarray:
        """``I({o})`` for every billboard, as an ``int64`` vector."""
        return self._individual

    def influence_of(self, billboard_id: int) -> int:
        """``I({o})`` of a single billboard."""
        return int(self._individual[billboard_id])

    def influence_of_set(self, billboard_ids: Iterable[int]) -> int:
        """``I(S)``: number of distinct trajectories covered by the set."""
        arrays = [self._covered[int(b)] for b in billboard_ids]
        arrays = [a for a in arrays if len(a)]
        if not arrays:
            return 0
        return int(len(np.unique(np.concatenate(arrays))))

    @property
    def supply(self) -> int:
        """The host's supply ``I* = Σ_o I({o})`` (paper Section 7.1.3).

        Note this intentionally double-counts overlapping coverage: it is the
        sum of *individual* influences, matching the paper's definition.
        """
        return int(self._individual.sum())

    def total_reachable(self) -> int:
        """Number of trajectories covered by the entire inventory.

        This is the impression-count ceiling of Figure 1b (selecting 100 % of
        billboards), and upper-bounds any single advertiser's achievable
        influence.
        """
        return self.influence_of_set(range(self.num_billboards))

    def influence_distribution(self) -> np.ndarray:
        """Per-billboard influences in descending order, normalized by the max.

        This is exactly the series plotted in Figure 1a.
        """
        influences = np.sort(self._individual)[::-1].astype(np.float64)
        peak = influences[0] if len(influences) and influences[0] > 0 else 1.0
        return influences / peak

    def impression_curve(self, fractions: Sequence[float]) -> np.ndarray:
        """Figure 1b's impression-count curve.

        For each fraction ``f``, select the top ``f·|U|`` billboards by
        individual influence and report the fraction of all trajectories their
        union covers.
        """
        order = np.argsort(self._individual)[::-1]
        results = []
        for fraction in fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"fractions must be in [0, 1], got {fraction}")
            k = int(round(fraction * self.num_billboards))
            covered = self.influence_of_set(order[:k]) if k else 0
            results.append(covered / self.num_trajectories)
        return np.array(results)
