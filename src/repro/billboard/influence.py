"""The coverage influence model (paper Section 7.1.2).

A Bernoulli meet indicator ``p(o, t) = 1`` iff some point of trajectory ``t``
lies within ``λ`` metres of billboard ``o``.  The influence of a billboard set
``S`` on ``t`` is ``1 − Π_{o∈S}(1 − p(o, t))`` — i.e. 1 iff *any* member meets
``t`` — and the influence of ``S`` is the sum over all trajectories:

    I(S) = |{t : some o ∈ S meets t}|

so influence is a set-coverage count.  :class:`CoverageIndex` materializes the
per-billboard covered-trajectory id arrays once (a grid-accelerated bulk
radius join) and answers all influence queries from them.

Two kernels answer the queries:

* the **id-array kernel** — sorted ``int64`` covered-trajectory arrays, the
  always-available representation;
* the **packed-bitmap kernel** — a ``(num_billboards, ceil(T/64))`` ``uint64``
  matrix where bit ``t`` of row ``o`` says billboard ``o`` covers trajectory
  ``t``.  Union influence becomes bitwise-OR + popcount and the batch
  gain/loss and swap-delta passes become single masked popcounts.  The bitmap
  is built lazily and only when it fits the memory budget
  (``bitmap_budget_mb`` argument, ``REPRO_BITMAP_BUDGET_MB`` environment
  variable, default 512 MB); past the budget every query transparently falls
  back to the id-array kernel, so results are bit-identical either way.

The two kernels are *bit-identical*, so each query dispatches to whichever
is cheaper for its actual operand sizes: union influence always prefers the
bitmap (popcount beats sort-based dedup), while the batch and swap passes
compare the words they would touch (``rows × ceil(T/64)``) against the
number of covered ids the id-array pass would gather — on sparse coverage
the id arrays win, on dense coverage the bitmap does.

Every batch pass additionally accepts an optional ``candidate_ids`` row
restriction: the dirty-set sweep engines and the greedy marginal scans
usually need gains for a handful of candidate billboards, not the whole
inventory, and the restricted passes compute *only those rows* — the bitmap
path gathers the candidate rows into a reusable per-index scratch block and
popcounts ``len(candidates) × words`` words (no full-matrix ``bitmap &
mask`` temporary), the id-array path gathers only the candidates' CSR
slices.  Restricted results are bit-identical to slicing the full pass:
``batch_add_gains(row, candidate_ids=c) == batch_add_gains(row)[c]``.

Paper-scale corpora (10⁶⁺ trajectories) add two more layers, both
bit-identical to the in-RAM numpy path:

* **streaming ingestion** — ``chunk_size=`` (or ``REPRO_COVERAGE_CHUNK_SIZE``)
  feeds the grid radius join bounded chunks of trajectories, and
  :meth:`CoverageIndex.from_trajectory_chunks` builds coverage from a chunk
  *generator* so the full corpus never has to exist in memory at once;
* **tiered bitmap storage** — the packed bitmap lives in a
  :class:`~repro.billboard.bitmap_store.BitmapStore` (in-RAM, shared-memory,
  or ``numpy.memmap`` row shards, see that module) so the bitmap kernel
  keeps working past the RAM budget instead of degrading to id arrays, with
  an optional numba-compiled popcount path
  (:mod:`repro.billboard.popcount_jit`, ``REPRO_NUMBA=1``).

Every bitmap dispatch records its storage tier (``influence.tier.ram`` /
``.shm`` / ``.memmap``; id-array dispatches count ``influence.tier.idarray``)
and its popcount kernel (``influence.kernel.numpy`` / ``.numba``).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import env, obs
from repro.billboard import bitmap_store, popcount_jit
from repro.billboard.bitmap_store import BitmapStore
from repro.billboard.model import BillboardDB
from repro.spatial.geometry import min_distance_to_polyline
from repro.spatial.grid import GridIndex
from repro.trajectory.model import TrajectoryDB
from repro.utils import bitset

#: Environment variable holding the bitmap memory budget in megabytes.
BITMAP_BUDGET_ENV = env.BITMAP_BUDGET_MB.name

#: Environment variable holding the default ingestion chunk size (in
#: trajectories) for coverage builds; unset = single-shot build.
CHUNK_SIZE_ENV = env.COVERAGE_CHUNK_SIZE.name

#: Default bitmap memory budget (megabytes) when neither the constructor
#: argument nor the environment variable is set.
DEFAULT_BITMAP_BUDGET_MB = 512.0

#: Rows of the dense boolean staging block used while packing the bitmap are
#: chunked so staging memory stays below this many bytes.
_PACK_CHUNK_BYTES = 64 * 1024 * 1024


def _resolve_bitmap_budget_mb(bitmap_budget_mb: float | None) -> float:
    if bitmap_budget_mb is not None:
        return float(bitmap_budget_mb)
    raw = env.BITMAP_BUDGET_MB.raw()
    if raw is not None:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(
                f"{BITMAP_BUDGET_ENV} must be a number of megabytes, got {raw!r}"
            ) from None
    return DEFAULT_BITMAP_BUDGET_MB


def _resolve_chunk_size(chunk_size: int | None) -> int | None:
    """Effective ingestion chunk size: argument, else environment, else None."""
    if chunk_size is not None:
        chunk_size = int(chunk_size)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return chunk_size
    raw = env.COVERAGE_CHUNK_SIZE.raw()
    if raw is None or not raw.strip():
        return None
    try:
        from_env = int(raw)
    except ValueError:
        raise ValueError(
            f"{CHUNK_SIZE_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if from_env <= 0:
        raise ValueError(f"{CHUNK_SIZE_ENV} must be a positive integer, got {raw!r}")
    return from_env


def _max_sample_gap(points: np.ndarray, point_counts: np.ndarray) -> float:
    """Largest distance between consecutive samples of any trajectory.

    One vectorized pass over the flat point store: consecutive-point
    distances are computed for the whole corpus at once and the diffs that
    straddle a trajectory boundary are masked out.
    """
    if len(points) < 2:
        return 0.0
    gaps = np.sqrt(np.sum(np.diff(points, axis=0) ** 2, axis=1))
    boundaries = np.cumsum(point_counts)[:-1] - 1
    within = np.ones(len(gaps), dtype=bool)
    within[boundaries] = False
    gaps = gaps[within]
    return float(gaps.max()) if gaps.size else 0.0


class _CorpusChunk:
    """Adapter giving any trajectory chunk the three members the join needs.

    Accepts a :class:`~repro.trajectory.model.TrajectoryDB` (or anything
    exposing ``all_points`` / ``point_counts`` / ``points_of``), or a plain
    ``(points, point_counts)`` pair.
    """

    __slots__ = ("points", "point_counts", "_offsets")

    def __init__(self, points: np.ndarray, point_counts: np.ndarray) -> None:
        self.points = np.asarray(points, dtype=np.float64)
        self.point_counts = np.asarray(point_counts, dtype=np.int64)
        self._offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.point_counts)

    def points_of(self, local_id: int) -> np.ndarray:
        if self._offsets is None:
            self._offsets = np.concatenate([[0], np.cumsum(self.point_counts)])
        return self.points[self._offsets[local_id] : self._offsets[local_id + 1]]


def _as_corpus_chunk(chunk) -> _CorpusChunk:
    if isinstance(chunk, _CorpusChunk):
        return chunk
    if hasattr(chunk, "all_points") and hasattr(chunk, "point_counts"):
        return _CorpusChunk(chunk.all_points, chunk.point_counts)
    points, point_counts = chunk
    return _CorpusChunk(points, point_counts)


def _join_chunk(
    locations: np.ndarray,
    chunk: _CorpusChunk,
    num_billboards: int,
    lambda_m: float,
    exact_segments: bool,
) -> list[np.ndarray]:
    """Per-billboard sorted covered ids (chunk-local) for one chunk.

    This is the single radius-join step both the single-shot and the
    streaming builds run: identical distance predicates per (billboard,
    point) pair, so chunked builds are bit-identical to one-shot builds no
    matter where the chunk boundaries fall.
    """
    num_local = len(chunk)
    margin = (
        _max_sample_gap(chunk.points, chunk.point_counts) / 2.0
        if exact_segments
        else 0.0
    )
    grid = GridIndex(chunk.points, cell_size=lambda_m)
    point_owner = np.repeat(
        np.arange(num_local, dtype=np.int64), chunk.point_counts
    )
    billboard_ids, point_ids = grid.join_radius(locations, lambda_m + margin)
    # Deduplicate (billboard, trajectory) pairs in one pass: the sorted
    # unique composite keys split into per-billboard sorted id arrays.
    keys = np.unique(billboard_ids * num_local + point_owner[point_ids])
    owners = keys // num_local
    covered_ids = keys % num_local
    split_at = np.searchsorted(owners, np.arange(1, num_billboards))
    covered = [np.ascontiguousarray(ids) for ids in np.split(covered_ids, split_at)]
    if exact_segments:
        for billboard_id, candidates in enumerate(covered):
            if not len(candidates):
                continue
            location = locations[billboard_id]
            covered[billboard_id] = np.array(
                [
                    t
                    for t in candidates
                    if min_distance_to_polyline(location, chunk.points_of(int(t)))
                    <= lambda_m
                ],
                dtype=np.int64,
            )
    return covered


def _streamed_coverage(
    locations: np.ndarray,
    chunks: Iterable,
    num_billboards: int,
    lambda_m: float,
    exact_segments: bool,
) -> tuple[list[np.ndarray], int]:
    """Accumulate per-billboard covered ids over a chunk stream.

    Chunks carry consecutive trajectory-id ranges in order, so appending
    each chunk's (sorted, base-offset) ids keeps every billboard's array
    sorted without a final re-sort.  Returns the coverage lists and the
    total trajectory count.
    """
    parts: list[list[np.ndarray]] = [[] for _ in range(num_billboards)]
    base = 0
    for raw_chunk in chunks:
        chunk = _as_corpus_chunk(raw_chunk)
        if len(chunk) == 0:
            continue
        covered_local = _join_chunk(
            locations, chunk, num_billboards, lambda_m, exact_segments
        )
        for billboard_id, ids in enumerate(covered_local):
            if len(ids):
                parts[billboard_id].append(ids + base)
        base += len(chunk)
        obs.counter_add("coverage.chunks")
    covered = [
        np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in parts
    ]
    return covered, base


def _iter_db_chunks(
    trajectories: TrajectoryDB, chunk_size: int
) -> Iterator[_CorpusChunk]:
    """Slice an in-memory corpus into consecutive-id chunks (views, no copy)."""
    points = trajectories.all_points
    counts = trajectories.point_counts
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for start in range(0, len(counts), chunk_size):
        stop = min(start + chunk_size, len(counts))
        yield _CorpusChunk(points[offsets[start] : offsets[stop]], counts[start:stop])


class CoverageIndex:
    """Precomputed billboard → covered-trajectory mapping for one ``λ``.

    Parameters
    ----------
    billboards, trajectories:
        The host's inventory and the audience corpus.
    lambda_m:
        Influence radius ``λ`` in metres (paper default 100 m).
    exact_segments:
        Upgrade the meet test from the paper's sampled ``p(o, t)`` to the
        trajectory polyline coming within ``λ``.
    bitmap_budget_mb:
        Memory budget for the packed-bitmap kernel; ``None`` reads
        ``REPRO_BITMAP_BUDGET_MB`` (default 512).  A non-positive budget
        disables the bitmap entirely.
    bitmap_storage:
        Storage mode for the packed bitmap (``auto`` / ``ram`` / ``memmap``
        / ``none``); ``None`` reads ``REPRO_BITMAP_STORAGE`` (default
        ``auto``).  See :mod:`repro.billboard.bitmap_store`.
    chunk_size:
        Stream the radius join in chunks of this many trajectories so peak
        build memory is O(chunk); ``None`` reads ``REPRO_COVERAGE_CHUNK_SIZE``
        (unset = single-shot).  Chunked builds are bit-identical to
        single-shot builds.

    Notes
    -----
    The index is immutable.  All id arrays are sorted ``int64``; the number of
    trajectories is exposed so allocation states can size their multiplicity
    counters.
    """

    def __init__(
        self,
        billboards: BillboardDB,
        trajectories: TrajectoryDB,
        lambda_m: float = 100.0,
        exact_segments: bool = False,
        bitmap_budget_mb: float | None = None,
        bitmap_storage: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if lambda_m <= 0:
            raise ValueError(f"lambda_m must be positive, got {lambda_m}")
        self.lambda_m = float(lambda_m)
        self.num_billboards = len(billboards)
        self.num_trajectories = len(trajectories)
        self._init_caches(bitmap_budget_mb, bitmap_storage)

        # Billboard-centric radius join: index the trajectory points (all at
        # once, or chunk by chunk), then one batched cell-bucket join per
        # chunk for the whole inventory (no per-billboard Python loop — see
        # GridIndex.join_radius and _join_chunk).
        #
        # ``exact_segments`` upgrades the meet test from the paper's sampled
        # p(o, t) (some recorded point within λ) to the trajectory's actual
        # polyline coming within λ — the grid query is widened by half the
        # largest sample gap so no segment-only meet can be missed, then the
        # candidates are confirmed against the exact segment distance.
        chunk = _resolve_chunk_size(chunk_size)
        with obs.span(
            "coverage.build",
            billboards=self.num_billboards,
            trajectories=self.num_trajectories,
            lambda_m=self.lambda_m,
            exact_segments=exact_segments,
        ):
            if chunk is None:
                covered = _join_chunk(
                    billboards.locations,
                    _as_corpus_chunk(trajectories),
                    self.num_billboards,
                    self.lambda_m,
                    exact_segments,
                )
            else:
                covered, _ = _streamed_coverage(
                    billboards.locations,
                    _iter_db_chunks(trajectories, chunk),
                    self.num_billboards,
                    self.lambda_m,
                    exact_segments,
                )
            self._covered = covered
            self._individual = np.array([len(ids) for ids in covered], dtype=np.int64)
            obs.counter_add("coverage.builds")

    def _init_caches(
        self, bitmap_budget_mb: float | None, bitmap_storage: str | None = None
    ) -> None:
        self._bitmap_budget_mb = _resolve_bitmap_budget_mb(bitmap_budget_mb)
        self._bitmap_storage = bitmap_store.resolve_storage(bitmap_storage)
        self._store: BitmapStore | None = None
        self._bitmap_decided = False
        self._batch_prefers_bitmap: bool | None = None
        self._flat_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._individual_f64: np.ndarray | None = None
        # Reusable (rows, words) uint64 block for the restricted bitmap
        # passes, grown geometrically and never shrunk; one per index (the
        # kernels are single-threaded per index, attachers own their own).
        self._scratch: np.ndarray | None = None

    @classmethod
    def from_trajectory_chunks(
        cls,
        billboards: BillboardDB,
        chunks: Iterable,
        num_trajectories: int | None = None,
        lambda_m: float = 100.0,
        exact_segments: bool = False,
        bitmap_budget_mb: float | None = None,
        bitmap_storage: str | None = None,
    ) -> "CoverageIndex":
        """Build coverage from a *generator* of trajectory chunks.

        Each chunk may be a :class:`~repro.trajectory.model.TrajectoryDB`,
        anything exposing ``all_points`` / ``point_counts``, or a plain
        ``(points, point_counts)`` pair; chunks must carry consecutive
        trajectory-id ranges in corpus order.  The full corpus never needs to
        exist in memory — peak build memory is one chunk plus the coverage
        arrays themselves.  Bit-identical to the single-shot constructor.

        ``num_trajectories`` may be passed when the corpus size is known up
        front (e.g. to reserve id space past the streamed chunks); it
        defaults to the total chunk length.
        """
        index = cls.__new__(cls)
        index.lambda_m = float(lambda_m)
        if lambda_m <= 0:
            raise ValueError(f"lambda_m must be positive, got {lambda_m}")
        index.num_billboards = len(billboards)
        index._init_caches(bitmap_budget_mb, bitmap_storage)
        with obs.span(
            "coverage.build",
            billboards=index.num_billboards,
            lambda_m=index.lambda_m,
            exact_segments=exact_segments,
            streaming=True,
        ):
            covered, total = _streamed_coverage(
                billboards.locations,
                chunks,
                index.num_billboards,
                index.lambda_m,
                exact_segments,
            )
            if num_trajectories is None:
                num_trajectories = total
            elif int(num_trajectories) < total:
                raise ValueError(
                    f"chunks supplied {total} trajectories but num_trajectories="
                    f"{num_trajectories}"
                )
            index.num_trajectories = int(num_trajectories)
            index._covered = covered
            index._individual = np.array(
                [len(ids) for ids in covered], dtype=np.int64
            )
            obs.counter_add("coverage.builds")
        return index

    @classmethod
    def from_coverage_lists(
        cls,
        covered: Sequence[Sequence[int]],
        num_trajectories: int,
        lambda_m: float = 100.0,
        bitmap_budget_mb: float | None = None,
        bitmap_storage: str | None = None,
    ) -> "CoverageIndex":
        """Build an index directly from coverage lists (no geometry).

        This constructor powers the hardness reduction (Section 4), the worked
        example of Section 1, and tests, where coverage sets are specified
        explicitly rather than derived from locations.
        """
        index = cls.__new__(cls)
        index.lambda_m = float(lambda_m)
        index.num_billboards = len(covered)
        index.num_trajectories = int(num_trajectories)
        index._init_caches(bitmap_budget_mb, bitmap_storage)
        arrays = []
        for billboard_id, ids in enumerate(covered):
            array = np.unique(np.asarray(list(ids), dtype=np.int64))
            if len(array) and (array[0] < 0 or array[-1] >= num_trajectories):
                raise ValueError(
                    f"billboard {billboard_id} covers trajectory ids outside "
                    f"[0, {num_trajectories})"
                )
            arrays.append(array)
        index._covered = arrays
        index._individual = np.array([len(a) for a in arrays], dtype=np.int64)
        return index

    @classmethod
    def from_flat_arrays(
        cls,
        flat_ids: np.ndarray,
        offsets: np.ndarray,
        num_trajectories: int,
        lambda_m: float = 100.0,
        bitmap_budget_mb: float | None = None,
        bitmap_storage: str | None = None,
    ) -> "CoverageIndex":
        """Rebuild an index from its CSR serialization (see :meth:`to_arrays`).

        The arrays are trusted (sorted, deduplicated, in range) — this is the
        fast path the on-disk coverage cache uses.
        """
        flat_ids = np.ascontiguousarray(flat_ids, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        index = cls.__new__(cls)
        index.lambda_m = float(lambda_m)
        index.num_billboards = len(offsets) - 1
        index.num_trajectories = int(num_trajectories)
        index._init_caches(bitmap_budget_mb, bitmap_storage)
        index._covered = list(np.split(flat_ids, offsets[1:-1]))
        index._individual = np.diff(offsets)
        index._flat_cache = (flat_ids, offsets)
        return index

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(flat_ids, offsets)`` CSR serialization of the coverage."""
        return self._flat_coverage()

    def to_shared(self) -> "SharedCoverage":
        """Export the CSR arrays (and packed bitmap, if any) into shared memory.

        Returns a :class:`~repro.parallel.shared.SharedCoverage` handle owning
        the segments; worker processes rebuild a read-only view of this index
        with :meth:`attach_shared` instead of unpickling a copy.  The bitmap
        decision is forced here so every attacher inherits the creator's
        kernel dispatch verbatim.
        """
        from repro.parallel.shared import SharedCoverage

        return SharedCoverage.create(self)

    @classmethod
    def attach_shared(cls, spec: "SharedCoverageSpec") -> "CoverageIndex":
        """Attach a read-only index to segments exported by :meth:`to_shared`.

        The CSR arrays (and bitmap) are numpy views over the shared segments —
        no copy is made.  The bitmap decision is pinned to the creator's: an
        attached index never builds its own bitmap, so creator and attachers
        dispatch to identical kernels.
        """
        from repro.parallel.shared import attach_array

        flat, flat_shm = attach_array(spec.flat)
        offsets, offsets_shm = attach_array(spec.offsets)
        index = cls.from_flat_arrays(
            flat,
            offsets,
            spec.num_trajectories,
            lambda_m=spec.lambda_m,
            bitmap_budget_mb=spec.bitmap_budget_mb,
        )
        handles = [flat_shm, offsets_shm]
        index._bitmap_decided = True
        if spec.bitmap is not None:
            bm = spec.bitmap
            if bm.tier == "memmap":
                index._store = BitmapStore.memmap_attach(
                    bm.paths, bm.rows_per_shard, bm.num_rows, bm.words
                )
            else:
                shards = []
                for shard_spec in bm.shards:
                    shard, shard_shm = attach_array(shard_spec)
                    shards.append(shard)
                    handles.append(shard_shm)
                index._store = BitmapStore.from_shards(
                    shards, bm.rows_per_shard, bm.num_rows, bm.words, "shm"
                )
        # Keep the SharedMemory objects alive as long as the index: the numpy
        # views borrow their buffers.
        index._shm_handles = handles
        obs.counter_add("shm.attach")
        return index

    def covered_by(self, billboard_id: int) -> np.ndarray:
        """Sorted trajectory ids covered by one billboard (no copy)."""
        return self._covered[billboard_id]

    def _flat_coverage(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR layout of all coverage arrays, built lazily.

        Returns ``(flat_ids, offsets)`` where billboard ``b``'s covered ids
        are ``flat_ids[offsets[b]:offsets[b + 1]]``.  Powers the batch gain
        computation the greedy solvers use to price every candidate billboard
        in one vectorized pass.
        """
        cached = self._flat_cache
        if cached is None:
            counts = np.array([len(a) for a in self._covered], dtype=np.int64)
            offsets = np.concatenate([[0], np.cumsum(counts)])
            if offsets[-1]:
                flat = np.concatenate(self._covered)
            else:
                flat = np.empty(0, dtype=np.int64)
            cached = (flat, offsets)
            self._flat_cache = cached
        return cached

    # ------------------------------------------------------------ bitmap kernel

    @property
    def bitmap_words(self) -> int:
        """Words per bitmap row: ``ceil(num_trajectories / 64)``."""
        return bitset.num_words(self.num_trajectories)

    def bitmap_bytes(self) -> int:
        """Memory the packed bitmap needs (whether or not it is built)."""
        return self.num_billboards * self.bitmap_words * 8

    @property
    def has_bitmap(self) -> bool:
        """Whether the packed-bitmap kernel is available (builds it lazily)."""
        return self._ensure_bitmap() is not None

    @property
    def bitmap_tier(self) -> str | None:
        """Storage tier of the bitmap (``ram``/``shm``/``memmap``), or None.

        Forces the (lazy, once-per-index) bitmap decision.
        """
        store = self._ensure_bitmap()
        return store.tier if store is not None else None

    def _ensure_bitmap(self) -> BitmapStore | None:
        """The bitmap store, deciding tier and building it on first call.

        The decision is made exactly once per index:

        * ``none`` storage or a non-positive budget disables the bitmap
          silently (a deliberate configuration, not a surprise);
        * ``ram`` / ``auto`` within budget build the in-RAM store;
        * past the budget, ``auto`` spills to memmap shards when a spill
          directory is configured and ``memmap`` always does (under a private
          temp dir when none is configured); the spill warns once, naming the
          tier and the budget that triggered it;
        * ``auto`` past the budget with nowhere to spill — and ``ram`` past
          the budget — skip the bitmap with a warn-once naming the id-array
          fallback, exactly as before this tier existed.
        """
        if not self._bitmap_decided:
            self._bitmap_decided = True
            storage = self._bitmap_storage
            budget_bytes = self._bitmap_budget_mb * 1024 * 1024
            needed = self.bitmap_bytes()
            if storage == "none" or self._bitmap_budget_mb <= 0:
                pass  # deliberate disable: silent
            elif needed <= budget_bytes and storage != "memmap":
                self._store = self._build_store("ram", None)
            elif storage == "memmap" or (
                storage == "auto"
                and (spill_dir := bitmap_store.resolve_spill_dir()) is not None
            ):
                if storage == "memmap":
                    spill_dir = bitmap_store.resolve_spill_dir()
                if storage == "auto":
                    # Spilling past the budget is a behavior change worth one
                    # warning per index; an explicit memmap request is not.
                    obs.get_logger("repro.billboard.influence").warning(
                        "bitmap spilled to memmap tier: %.1f MB needed > "
                        "%s=%.1f MB budget (%d billboards x %d words); "
                        "shards under %s",
                        needed / (1024 * 1024),
                        BITMAP_BUDGET_ENV,
                        self._bitmap_budget_mb,
                        self.num_billboards,
                        self.bitmap_words,
                        spill_dir,
                    )
                self._store = self._build_store("memmap", spill_dir)
                obs.counter_add("influence.bitmap.spilled")
            else:
                # The decision is made exactly once per index, so this warning
                # fires exactly once per index that exceeds the budget.
                obs.get_logger("repro.billboard.influence").warning(
                    "bitmap kernel skipped: %.1f MB needed > %s=%.1f MB budget "
                    "(%d billboards x %d words); falling back to the id-array "
                    "tier (set %s or %s to spill to memmap shards instead)",
                    needed / (1024 * 1024),
                    BITMAP_BUDGET_ENV,
                    self._bitmap_budget_mb,
                    self.num_billboards,
                    self.bitmap_words,
                    bitmap_store.SPILL_DIR_ENV,
                    bitmap_store.STORAGE_ENV + "=memmap",
                )
                obs.counter_add("influence.bitmap.skipped")
        return self._store

    def _build_store(self, tier: str, spill_dir) -> BitmapStore:
        """Build the packed bitmap into the chosen storage tier."""
        with obs.span(
            "coverage.bitmap_build", bytes=self.bitmap_bytes(), tier=tier
        ):
            if tier == "ram":
                bitmap = np.zeros(
                    (self.num_billboards, self.bitmap_words),
                    dtype=bitset.WORD_DTYPE,
                )
                store = BitmapStore.ram(bitmap)
            else:
                store = BitmapStore.memmap_create(
                    self.num_billboards, self.bitmap_words, spill_dir
                )
            for start, block in self._packed_row_blocks():
                store.set_rows(start, block)
            store.seal()
        obs.counter_add("influence.bitmap.builds")
        obs.gauge_set("influence.bitmap.bytes", self.bitmap_bytes())
        obs.gauge_set(f"bitmap.shards.{store.tier}", store.num_shards)
        return store

    def _packed_row_blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        """``(row_start, packed_rows)`` blocks with bounded staging memory.

        Dense boolean rows are staged in chunks of at most ``_PACK_CHUNK_BYTES``
        and packed chunk by chunk, so packing memory stays bounded regardless
        of corpus size.
        """
        if self.num_trajectories == 0 or self.num_billboards == 0:
            return
        flat, offsets = self._flat_coverage()
        rows_per_chunk = max(1, _PACK_CHUNK_BYTES // max(self.num_trajectories, 1))
        for start in range(0, self.num_billboards, rows_per_chunk):
            stop = min(start + rows_per_chunk, self.num_billboards)
            counts = np.diff(offsets[start : stop + 1])
            dense = np.zeros((stop - start, self.num_trajectories), dtype=bool)
            row_ids = np.repeat(np.arange(stop - start), counts)
            dense[row_ids, flat[offsets[start] : offsets[stop]]] = True
            yield start, bitset.pack_bits(dense)

    def bits_of(self, billboard_id: int) -> np.ndarray | None:
        """Packed coverage row of one billboard, or ``None`` without bitmap."""
        store = self._ensure_bitmap()
        if store is None:
            return None
        return store.row(billboard_id)

    @property
    def batch_prefers_bitmap(self) -> bool:
        """Whether the bitmap beats the id arrays for whole-matrix passes.

        The bitmap pass popcounts ``num_billboards × bitmap_words`` words no
        matter how sparse the coverage is; the id-array pass touches one entry
        per covered id.  On sparse coverage (few covered trajectories per
        billboard) the id arrays are strictly less work, so the batch passes
        only take the bitmap when the flat id count exceeds the word count.
        Callers maintaining packed counter masks use this to skip packing
        masks the batch passes would never read.
        """
        if self._batch_prefers_bitmap is None:
            flat, _ = self._flat_coverage()
            self._batch_prefers_bitmap = (
                len(flat) > self.num_billboards * self.bitmap_words
            )
        return self._batch_prefers_bitmap

    def bitmap_profitable_for(self, *billboard_ids: int) -> bool:
        """Whether the bitmap wins a per-row (single/swap) delta query.

        The bitmap side costs a handful of full-row word ops (ANDs +
        popcounts); the id side gathers one entry per covered id of the rows
        involved.  ``4×`` words approximates the bitmap's constant factor.
        """
        ids = sum(int(self._individual[b]) for b in billboard_ids)
        return ids > 4 * self.bitmap_words

    # ------------------------------------------------------------ batch passes

    def _dispatch_bitmap(self) -> None:
        """Count one bitmap dispatch plus its storage tier and kernel."""
        obs.counter_add("influence.dispatch.bitmap")
        store = self._store
        obs.counter_add(f"influence.tier.{store.tier if store else 'ram'}")
        obs.counter_add(
            "influence.kernel.numba"
            if popcount_jit.enabled()
            else "influence.kernel.numpy"
        )

    @staticmethod
    def _dispatch_idarray() -> None:
        """Count one id-array dispatch (the tier that is always available)."""
        obs.counter_add("influence.dispatch.idarray")
        obs.counter_add("influence.tier.idarray")

    def _scratch_rows(self, rows: int, words: int) -> np.ndarray:
        """A ``(rows, words)`` view of the reusable restricted-pass block."""
        block = self._scratch
        if block is None or block.shape[0] < rows or block.shape[1] != words:
            capacity = max(rows, 16)
            if block is not None and block.shape[1] == words:
                capacity = max(capacity, 2 * block.shape[0])
            block = np.empty((capacity, words), dtype=bitset.WORD_DTYPE)
            self._scratch = block
        return block[:rows]

    def _masked_row_popcounts(
        self, candidate_ids: np.ndarray, mask_words: np.ndarray
    ) -> np.ndarray:
        """``popcount(bitmap[c] & mask)`` per candidate row, via the scratch
        block — no ``(num_billboards, words)`` temporary is ever built."""
        scratch = self._scratch_rows(len(candidate_ids), self.bitmap_words)
        self._store.gather(candidate_ids, scratch)
        return bitmap_store.block_masked_popcounts(scratch, mask_words)

    def _gather_restricted(
        self, candidate_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The candidates' covered ids concatenated, plus their boundaries.

        Returns ``(gathered, bounds)`` where candidate ``i``'s covered ids
        are ``gathered[bounds[i]:bounds[i + 1]]`` — the id-array kernel's
        restricted gather, touching only the candidates' CSR slices.
        """
        flat, offsets = self._flat_coverage()
        lengths = self._individual[candidate_ids]
        bounds = np.concatenate([[0], np.cumsum(lengths)])
        total = int(bounds[-1])
        if total == 0:
            return np.empty(0, dtype=np.int64), bounds
        positions = (
            np.repeat(offsets[candidate_ids] - bounds[:-1], lengths)
            + np.arange(total)
        )
        return flat[positions], bounds

    @staticmethod
    def _segment_counts(mask: np.ndarray, bounds: np.ndarray) -> np.ndarray:
        """Per-segment true-counts of ``mask`` split at ``bounds``."""
        cumulative = np.concatenate([[0], np.cumsum(mask.astype(np.int64))])
        return cumulative[bounds[1:]] - cumulative[bounds[:-1]]

    @staticmethod
    def _as_candidates(candidate_ids) -> np.ndarray:
        return np.ascontiguousarray(np.asarray(candidate_ids, dtype=np.int64))

    def batch_add_gains(
        self,
        counts_row: np.ndarray,
        free_bits: np.ndarray | None = None,
        candidate_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Marginal influence of adding *each* billboard to a set.

        Given an advertiser's multiplicity counter row, returns the vector
        ``g`` with ``g[b] = |{t ∈ cov(b) : counts_row[t] == 0}|`` for every
        billboard ``b``.  With the bitmap kernel this is one masked popcount
        over the whole matrix; ``free_bits`` (the packed ``counts_row == 0``
        mask) can be supplied by callers that maintain it incrementally.

        With ``candidate_ids`` only those rows are computed and the result is
        aligned to the candidate order (``g[i]`` belongs to
        ``candidate_ids[i]``) — bit-identical to slicing the full pass.
        """
        if self.batch_prefers_bitmap:
            store = self._ensure_bitmap()
            if store is not None:
                if free_bits is None:
                    free_bits = bitset.pack_bits(counts_row == 0)
                self._dispatch_bitmap()
                if candidate_ids is not None:
                    candidate_ids = self._as_candidates(candidate_ids)
                    obs.histogram_observe(
                        "influence.popcount.rows", len(candidate_ids)
                    )
                    return self._masked_row_popcounts(candidate_ids, free_bits)
                obs.histogram_observe("influence.popcount.rows", self.num_billboards)
                return store.masked_popcounts(free_bits)
        self._dispatch_idarray()
        if candidate_ids is not None:
            candidate_ids = self._as_candidates(candidate_ids)
            obs.histogram_observe("influence.popcount.rows", len(candidate_ids))
            gathered, bounds = self._gather_restricted(candidate_ids)
            return self._segment_counts(counts_row[gathered] == 0, bounds)
        flat, offsets = self._flat_coverage()
        if len(flat) == 0:
            return np.zeros(self.num_billboards, dtype=np.int64)
        return self._segment_counts(counts_row[flat] == 0, offsets)

    def batch_add_gains_without(
        self,
        counts_row: np.ndarray,
        removed_billboard: int,
        free_bits: np.ndarray | None = None,
        ones_bits: np.ndarray | None = None,
        candidate_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`batch_add_gains` as if ``removed_billboard`` had already been
        removed from the set behind ``counts_row`` — without mutating the row.

        A trajectory is free after the removal when its count is 0, or when it
        is 1 and covered by the removed billboard.  This is the BLS exchange
        scan's kernel: it prices ``S − o_m + o_n`` for every candidate ``o_n``
        while the allocation itself stays untouched.  ``free_bits`` /
        ``ones_bits`` are the packed ``counts_row == 0`` / ``== 1`` masks.
        ``candidate_ids`` restricts the pass to those rows (result aligned to
        the candidate order), bit-identical to slicing the full pass.
        """
        if self.batch_prefers_bitmap:
            store = self._ensure_bitmap()
            if store is not None:
                if free_bits is None:
                    free_bits = bitset.pack_bits(counts_row == 0)
                if ones_bits is None:
                    ones_bits = bitset.pack_bits(counts_row == 1)
                released_free = free_bits | (ones_bits & store.row(removed_billboard))
                self._dispatch_bitmap()
                if candidate_ids is not None:
                    candidate_ids = self._as_candidates(candidate_ids)
                    obs.histogram_observe(
                        "influence.popcount.rows", len(candidate_ids)
                    )
                    return self._masked_row_popcounts(candidate_ids, released_free)
                obs.histogram_observe("influence.popcount.rows", self.num_billboards)
                return store.masked_popcounts(released_free)
        self._dispatch_idarray()
        removed = np.zeros(self.num_trajectories, dtype=counts_row.dtype)
        removed[self._covered[removed_billboard]] = 1
        if candidate_ids is not None:
            candidate_ids = self._as_candidates(candidate_ids)
            obs.histogram_observe("influence.popcount.rows", len(candidate_ids))
            gathered, bounds = self._gather_restricted(candidate_ids)
            return self._segment_counts(
                (counts_row[gathered] - removed[gathered]) == 0, bounds
            )
        flat, offsets = self._flat_coverage()
        if len(flat) == 0:
            return np.zeros(self.num_billboards, dtype=np.int64)
        return self._segment_counts((counts_row[flat] - removed[flat]) == 0, offsets)

    def batch_remove_losses(
        self,
        counts_row: np.ndarray,
        ones_bits: np.ndarray | None = None,
        candidate_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Influence lost by removing *each* billboard from a set.

        ``l[b] = |{t ∈ cov(b) : counts_row[t] == 1}|``; only meaningful for
        billboards actually in the set, but computed for all.  ``ones_bits``
        is the packed ``counts_row == 1`` mask (optional, bitmap path only).
        ``candidate_ids`` restricts the pass to those rows (result aligned to
        the candidate order), bit-identical to slicing the full pass.
        """
        if self.batch_prefers_bitmap:
            store = self._ensure_bitmap()
            if store is not None:
                if ones_bits is None:
                    ones_bits = bitset.pack_bits(counts_row == 1)
                self._dispatch_bitmap()
                if candidate_ids is not None:
                    candidate_ids = self._as_candidates(candidate_ids)
                    obs.histogram_observe(
                        "influence.popcount.rows", len(candidate_ids)
                    )
                    return self._masked_row_popcounts(candidate_ids, ones_bits)
                obs.histogram_observe("influence.popcount.rows", self.num_billboards)
                return store.masked_popcounts(ones_bits)
        self._dispatch_idarray()
        if candidate_ids is not None:
            candidate_ids = self._as_candidates(candidate_ids)
            obs.histogram_observe("influence.popcount.rows", len(candidate_ids))
            gathered, bounds = self._gather_restricted(candidate_ids)
            return self._segment_counts(counts_row[gathered] == 1, bounds)
        flat, offsets = self._flat_coverage()
        if len(flat) == 0:
            return np.zeros(self.num_billboards, dtype=np.int64)
        return self._segment_counts(counts_row[flat] == 1, offsets)

    def batch_swap_deltas(
        self,
        removed_billboard: int,
        candidate_ids: np.ndarray,
        counts_row: np.ndarray,
        free_bits: np.ndarray | None = None,
        ones_bits: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`swap_delta` for one removed billboard against *many* added
        candidates in one vectorized pass.

        ``d[i]`` equals ``swap_delta(removed_billboard, candidate_ids[i],
        counts_row)`` bit-for-bit; the loss term is shared across candidates
        and each gain term is a restricted masked popcount (bitmap kernel) or
        a restricted CSR gather (id-array kernel).
        """
        candidate_ids = self._as_candidates(candidate_ids)
        if len(candidate_ids) == 0:
            return np.empty(0, dtype=np.int64)
        ids_cost = int(
            self._individual[candidate_ids].sum()
            + self._individual[removed_billboard]
        )
        store = (
            self._ensure_bitmap()
            if ids_cost > (len(candidate_ids) + 2) * self.bitmap_words
            else None
        )
        if store is not None:
            self._dispatch_bitmap()
            obs.histogram_observe(
                "influence.popcount.rows", 2 * len(candidate_ids)
            )
            row_removed = np.asarray(store.row(removed_billboard))
            if free_bits is None:
                free_bits = bitset.pack_bits(counts_row == 0)
            if ones_bits is None:
                ones_bits = bitset.pack_bits(counts_row == 1)
            loss = bitmap_store.masked_total(row_removed, ones_bits)
            freed_mask = free_bits & ~row_removed
            recovered_mask = row_removed & ones_bits
            gains = self._masked_row_popcounts(candidate_ids, freed_mask)
            gains += self._masked_row_popcounts(candidate_ids, recovered_mask)
            return gains - loss
        self._dispatch_idarray()
        obs.histogram_observe("influence.popcount.rows", len(candidate_ids))
        cov_removed = self._covered[removed_billboard]
        loss = int(np.count_nonzero(counts_row[cov_removed] == 1))
        gathered, bounds = self._gather_restricted(candidate_ids)
        if len(cov_removed):
            positions = np.searchsorted(cov_removed, gathered)
            positions[positions == len(cov_removed)] = len(cov_removed) - 1
            in_removed = (cov_removed[positions] == gathered).astype(counts_row.dtype)
        else:
            in_removed = np.zeros(len(gathered), dtype=counts_row.dtype)
        gains = self._segment_counts(
            (counts_row[gathered] - in_removed) == 0, bounds
        )
        return gains - loss

    def swap_delta(
        self,
        removed_billboard: int,
        added_billboard: int,
        counts_row: np.ndarray,
        free_bits: np.ndarray | None = None,
        ones_bits: np.ndarray | None = None,
    ) -> int:
        """Exact influence change of one advertiser that loses
        ``removed_billboard`` and gains ``added_billboard`` in the same move.

        With ``c`` the advertiser's counters, ``cov_r``/``cov_a`` the two
        coverage sets::

            loss = |{t ∈ cov_r : c[t] == 1}|
            gain = |{t ∈ cov_a : c[t] − [t ∈ cov_r] == 0}|

        A trajectory covered only by the removed billboard but re-covered by
        the added one contributes to both terms and cancels, which is correct.
        On the bitmap kernel both terms are masked popcounts; ``free_bits`` /
        ``ones_bits`` are the packed ``c == 0`` / ``c == 1`` masks (packed on
        demand when omitted).
        """
        store = (
            self._ensure_bitmap()
            if self.bitmap_profitable_for(removed_billboard, added_billboard)
            else None
        )
        if store is not None:
            self._dispatch_bitmap()
            obs.histogram_observe("influence.popcount.rows", 2)
            row_removed = np.asarray(store.row(removed_billboard))
            row_added = np.asarray(store.row(added_billboard))
            if free_bits is None:
                free_bits = bitset.pack_bits(counts_row == 0)
            if ones_bits is None:
                ones_bits = bitset.pack_bits(counts_row == 1)
            loss = bitmap_store.masked_total(row_removed, ones_bits)
            gain = bitmap_store.masked_total(
                row_added & ~row_removed, free_bits
            ) + bitmap_store.masked_total(row_added & row_removed, ones_bits)
            return gain - loss
        self._dispatch_idarray()
        cov_removed = self._covered[removed_billboard]
        cov_added = self._covered[added_billboard]
        loss = int(np.count_nonzero(counts_row[cov_removed] == 1))
        if len(cov_removed):
            positions = np.searchsorted(cov_removed, cov_added)
            positions[positions == len(cov_removed)] = len(cov_removed) - 1
            in_removed = (cov_removed[positions] == cov_added).astype(counts_row.dtype)
        else:
            in_removed = np.zeros(len(cov_added), dtype=counts_row.dtype)
        gain = int(np.count_nonzero(counts_row[cov_added] - in_removed == 0))
        return gain - loss

    # -------------------------------------------------------------- influence

    @property
    def individual_influences(self) -> np.ndarray:
        """``I({o})`` for every billboard, as an ``int64`` vector."""
        return self._individual

    @property
    def individual_influences_f64(self) -> np.ndarray:
        """:attr:`individual_influences` as a cached read-only ``float64`` vector.

        The per-billboard influences never change after construction, so hot
        callers (the exchange screen and partner selection run once per owned
        billboard per sweep) share one conversion instead of allocating a
        fresh ``astype`` copy per call.
        """
        if self._individual_f64 is None:
            converted = self._individual.astype(np.float64)
            converted.setflags(write=False)
            self._individual_f64 = converted
        return self._individual_f64

    def influence_of(self, billboard_id: int) -> int:
        """``I({o})`` of a single billboard."""
        return int(self._individual[billboard_id])

    def influence_of_set(self, billboard_ids: Iterable[int]) -> int:
        """``I(S)``: number of distinct trajectories covered by the set.

        Uses the packed-bitmap kernel (bitwise-OR + popcount) when it fits the
        memory budget, the id-array kernel otherwise — both bit-identical.
        """
        store = self._ensure_bitmap()
        if store is None:
            return self.influence_of_set_ids(billboard_ids)
        ids = np.fromiter((int(b) for b in billboard_ids), dtype=np.int64)
        self._dispatch_bitmap()
        obs.histogram_observe("influence.popcount.rows", len(ids))
        if len(ids) == 0:
            return 0
        return store.union_popcount(ids)

    def influence_of_set_ids(self, billboard_ids: Iterable[int]) -> int:
        """``I(S)`` via the sorted-id-array kernel (always available)."""
        self._dispatch_idarray()
        arrays = [self._covered[int(b)] for b in billboard_ids]
        arrays = [a for a in arrays if len(a)]
        if not arrays:
            return 0
        return int(len(np.unique(np.concatenate(arrays))))

    @property
    def supply(self) -> int:
        """The host's supply ``I* = Σ_o I({o})`` (paper Section 7.1.3).

        Note this intentionally double-counts overlapping coverage: it is the
        sum of *individual* influences, matching the paper's definition.
        """
        return int(self._individual.sum())

    def total_reachable(self) -> int:
        """Number of trajectories covered by the entire inventory.

        This is the impression-count ceiling of Figure 1b (selecting 100 % of
        billboards), and upper-bounds any single advertiser's achievable
        influence.
        """
        return self.influence_of_set(range(self.num_billboards))

    def influence_distribution(self) -> np.ndarray:
        """Per-billboard influences in descending order, normalized by the max.

        This is exactly the series plotted in Figure 1a.
        """
        influences = np.sort(self._individual)[::-1].astype(np.float64)
        peak = influences[0] if len(influences) and influences[0] > 0 else 1.0
        return influences / peak

    def impression_curve(self, fractions: Sequence[float]) -> np.ndarray:
        """Figure 1b's impression-count curve.

        For each fraction ``f``, select the top ``f·|U|`` billboards by
        individual influence and report the fraction of all trajectories their
        union covers.
        """
        order = np.argsort(self._individual)[::-1]
        results = []
        for fraction in fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"fractions must be in [0, 1], got {fraction}")
            k = int(round(fraction * self.num_billboards))
            covered = self.influence_of_set(order[:k]) if k else 0
            results.append(covered / self.num_trajectories)
        return np.array(results)


def build_coverage(
    billboards: BillboardDB,
    trajectories,
    lambda_m: float = 100.0,
    *,
    exact_segments: bool = False,
    bitmap_budget_mb: float | None = None,
    bitmap_storage: str | None = None,
    chunk_size: int | None = None,
    num_trajectories: int | None = None,
) -> CoverageIndex:
    """Build a :class:`CoverageIndex`, streaming the join when asked.

    ``trajectories`` is either an in-memory corpus (a
    :class:`~repro.trajectory.model.TrajectoryDB`), which ``chunk_size``
    optionally streams through the join in bounded pieces, or an *iterable of
    chunks* (see :meth:`CoverageIndex.from_trajectory_chunks`), in which case
    the corpus never has to exist in memory at once and ``chunk_size`` is
    ignored — the iterable's own chunking is used.  All paths are
    bit-identical.
    """
    if hasattr(trajectories, "all_points"):
        return CoverageIndex(
            billboards,
            trajectories,
            lambda_m=lambda_m,
            exact_segments=exact_segments,
            bitmap_budget_mb=bitmap_budget_mb,
            bitmap_storage=bitmap_storage,
            chunk_size=chunk_size,
        )
    return CoverageIndex.from_trajectory_chunks(
        billboards,
        trajectories,
        num_trajectories=num_trajectories,
        lambda_m=lambda_m,
        exact_segments=exact_segments,
        bitmap_budget_mb=bitmap_budget_mb,
        bitmap_storage=bitmap_storage,
    )
