"""Billboard substrate: the billboard inventory and the coverage-based
influence model of the paper (Section 7.1.2).

The host's inventory is a :class:`BillboardDB`.  A :class:`CoverageIndex`
materializes, for every billboard, the set of trajectories it influences
(``p(o, t) = 1`` iff some point of ``t`` is within ``λ`` of ``o.loc``), from
which the influence of any billboard set is the size of the union of its
members' covered-trajectory sets.
"""

from repro.billboard.cost import billboard_cost, cost_vector
from repro.billboard.influence import CoverageIndex
from repro.billboard.model import Billboard, BillboardDB

__all__ = [
    "Billboard",
    "BillboardDB",
    "CoverageIndex",
    "billboard_cost",
    "cost_vector",
]
