"""The invariant-linter framework: rule registry, walker, suppressions,
baseline.

Stdlib-``ast`` only — the container ships no third-party linters.  A *rule*
is a function ``(context, source_file) -> iterable[(line, col, message)]``
registered under a kebab-case id; the runner turns its tuples into
:class:`~repro.lint.findings.Finding` records, drops any suppressed by an
inline ``# repro-lint: ignore[rule-id]`` comment, and splits the rest into
*baselined* (grandfathered in the committed baseline file) and *new*.

See ``DESIGN.md`` §14 for the rule taxonomy and the policy on suppressions
vs. baseline entries.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Finding

#: Baseline file name, at the repo root, committed.
BASELINE_FILENAME = "lint_baseline.json"

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "repro-lint-baseline-v1"

#: Directories linted by default, relative to the repo root.
DEFAULT_TARGETS = ("src", "scripts", "benchmarks", "examples")

#: ``# repro-lint: ignore`` or ``# repro-lint: ignore[rule-a, rule-b]``,
#: optionally followed by free-text rationale.  ``ignore-file`` variants
#: suppress the rule(s) for the whole file from any line.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore(?:-file)?)(?:\[(?P<rules>[^\]]*)\])?"
)


@dataclass
class SourceFile:
    """One parsed Python source under lint."""

    path: Path
    rel: str  # repo-relative, posix-style — what findings report
    text: str
    tree: ast.AST
    #: line -> set of suppressed rule ids ("*" = all rules on that line)
    line_suppressions: dict[int, set] = field(default_factory=dict)
    #: rule ids suppressed for the entire file ("*" = every rule)
    file_suppressions: set = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "SourceFile | None":
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=rel)
        except (OSError, SyntaxError, ValueError):
            return None  # unreadable / unparsable files are compileall's job
        source = cls(path=path, rel=rel, text=text, tree=tree)
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            ids = (
                {rule.strip() for rule in rules.split(",") if rule.strip()}
                if rules
                else {"*"}
            )
            if match.group("kind") == "ignore-file":
                source.file_suppressions |= ids
            else:
                source.line_suppressions.setdefault(lineno, set()).update(ids)
        return source

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_suppressions & {"*", rule_id}:
            return True
        at_line = self.line_suppressions.get(line)
        return bool(at_line and at_line & {"*", rule_id})


@dataclass
class LintContext:
    """Cross-file state shared by every rule invocation of one run."""

    root: Path
    _test_corpus: str | None = None

    def test_corpus(self) -> str:
        """Concatenated text of every test module under ``root/tests``.

        Built lazily (only the kernel-contract rule needs it) and cached for
        the run.  Substring search over it answers "is this function name
        referenced by any test?".
        """
        if self._test_corpus is None:
            pieces = []
            tests = self.root / "tests"
            if tests.is_dir():
                for path in sorted(tests.rglob("*.py")):
                    try:
                        pieces.append(path.read_text(encoding="utf-8"))
                    except OSError:  # pragma: no cover - racing deletion
                        continue
            self._test_corpus = "\n".join(pieces)
        return self._test_corpus


#: rule id -> (one-line doc, check function)
RULES: dict[str, tuple[str, Callable]] = {}


def rule(rule_id: str, doc: str):
    """Register a rule: ``(context, source_file) -> iterable[(line, col,
    message)]``.  Ids are kebab-case and unique."""

    def decorate(check: Callable) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id: {rule_id}")
        RULES[rule_id] = (doc, check)
        return check

    return decorate


def iter_source_files(root: Path, targets: Iterable[str] = DEFAULT_TARGETS) -> Iterator[Path]:
    """Every ``.py`` file under the target directories, sorted, skipping
    caches."""
    for target in targets:
        base = root / target
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path


@dataclass
class LintResult:
    """Outcome of one lint run, split by baseline membership."""

    new: list[Finding]
    baselined: list[Finding]
    files_checked: int
    stale_baseline: int  # baseline entries that no longer match anything

    @property
    def ok(self) -> bool:
        return not self.new


def load_baseline(path: Path) -> set:
    """The committed baseline as a set of :meth:`Finding.baseline_key` tuples.

    A missing file is an empty baseline; a malformed one is an error — a
    silently ignored baseline would un-grandfather every finding at once.
    """
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {data.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA})"
        )
    return {
        (entry["rule"], entry["path"], entry["message"])
        for entry in data.get("entries", [])
    }


def write_baseline(findings: list[Finding], path: Path) -> None:
    """Write (sorted, deduplicated) baseline entries for ``findings``."""
    keys = sorted({finding.baseline_key() for finding in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule_id, "path": rel, "message": message}
            for rule_id, rel, message in keys
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def lint_file(context: LintContext, source: SourceFile, rule_ids=None) -> list[Finding]:
    """All unsuppressed findings of every (selected) rule on one file."""
    findings = []
    for rule_id, (_, check) in RULES.items():
        if rule_ids is not None and rule_id not in rule_ids:
            continue
        for line, col, message in check(context, source):
            if source.suppressed(rule_id, line):
                continue
            findings.append(
                Finding(path=source.rel, line=line, col=col, rule=rule_id, message=message)
            )
    return findings


def run_lint(
    root: Path,
    paths: Iterable[Path] | None = None,
    baseline: set | None = None,
    rule_ids=None,
) -> LintResult:
    """Lint ``paths`` (default: every target directory under ``root``).

    ``baseline`` defaults to the committed ``lint_baseline.json`` at the
    root.  Importing :mod:`repro.lint.rules` (done here) registers the
    shipped rules; callers that registered extras get those too.
    """
    from repro.lint import rules as _rules  # noqa: F401  (registration import)

    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise KeyError(f"unknown lint rule id(s): {', '.join(unknown)}")
    root = Path(root).resolve()
    if baseline is None:
        baseline = load_baseline(root / BASELINE_FILENAME)
    if paths is None:
        paths = iter_source_files(root)
    context = LintContext(root=root)
    new: list[Finding] = []
    baselined: list[Finding] = []
    matched_keys = set()
    files_checked = 0
    for path in paths:
        path = Path(path).resolve()
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = SourceFile.parse(path, rel)
        if source is None:
            continue
        files_checked += 1
        for finding in lint_file(context, source, rule_ids=rule_ids):
            key = finding.baseline_key()
            if key in baseline:
                matched_keys.add(key)
                baselined.append(finding)
            else:
                new.append(finding)
    return LintResult(
        new=sorted(new),
        baselined=sorted(baselined),
        files_checked=files_checked,
        stale_baseline=len(baseline - matched_keys),
    )
