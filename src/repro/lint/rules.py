"""The shipped invariant rules.

Each rule is a function of ``(context, source_file)`` yielding
``(line, col, message)`` tuples; ids, motivations, and the paths each rule
patrols are documented in ``DESIGN.md`` §14.  Rules lean deliberately
syntactic: they catch the contract violations that have actually bitten
(module-global RNG, leaked shared memory, forked metric series, undocumented
knobs) without pretending to be a type checker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import LintContext, SourceFile, rule

# --------------------------------------------------------------- helpers


def _attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute/name chain (``"np.random.seed"``), or ``""``
    for anything holding a non-name base (calls, subscripts, ...)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_call_to(node: ast.Call, dotted: tuple[str, ...]) -> bool:
    return _attr_chain(node.func) in dotted


def _in_package(source: SourceFile, *prefixes: str) -> bool:
    return source.rel.startswith(prefixes)


def _string_values(node: ast.AST) -> list[ast.Constant]:
    """The string constants a name expression can evaluate to: a literal, or
    both arms of a conditional expression (``"a" if flag else "b"``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node]
    if isinstance(node, ast.IfExp):
        return _string_values(node.body) + _string_values(node.orelse)
    return []


# ------------------------------------------------------------ determinism

#: Clock reads are confined to the obs layer and the stopwatch utility; a
#: wall-clock read anywhere else is either nondeterminism leaking into solver
#: logic or telemetry that belongs behind ``repro.obs`` / ``repro.utils.timing``.
_CLOCK_ALLOWED = ("src/repro/obs/", "src/repro/utils/timing.py")
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
}

#: The legacy module-global numpy RNG API; ``default_rng``/``Generator``/
#: ``SeedSequence`` are the sanctioned seeded interfaces.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}

#: Modules where set-iteration order would change results (solver sweeps,
#: kernels, cross-process reductions), not just formatting.
_ORDERED_PATHS = (
    "src/repro/algorithms/",
    "src/repro/billboard/",
    "src/repro/parallel/",
    "src/repro/core/",
)


@rule(
    "determinism",
    "no module-global RNG, no clock reads outside repro/obs, no iteration "
    "over bare sets in solver/kernel/reduction modules",
)
def determinism(context: LintContext, source: SourceFile) -> Iterator:
    if not _in_package(source, "src/repro/"):
        return
    clock_allowed = _in_package(source, *_CLOCK_ALLOWED)
    ordered = _in_package(source, *_ORDERED_PATHS)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if not clock_allowed and chain in _CLOCK_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"clock read {chain}() outside repro/obs — solver results "
                    "must not depend on wall time; route telemetry through "
                    "repro.obs spans or repro.utils.timing",
                )
            elif chain.startswith("random.") and chain.count(".") == 1:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{chain}() uses the module-global stdlib RNG; thread a "
                    "seeded numpy Generator (repro.utils.rng.as_generator) "
                    "instead",
                )
            elif (
                chain.startswith(("np.random.", "numpy.random."))
                and chain.rsplit(".", 1)[1] not in _NP_RANDOM_OK
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{chain}() uses numpy's module-global RNG; use "
                    "np.random.default_rng(seed) / repro.utils.rng instead",
                )
        elif ordered and isinstance(node, (ast.For, ast.AsyncFor)):
            iterated = node.iter
            if isinstance(iterated, (ast.Set, ast.SetComp)) or (
                isinstance(iterated, ast.Call)
                and _attr_chain(iterated.func) in ("set", "frozenset")
            ):
                yield (
                    iterated.lineno,
                    iterated.col_offset,
                    "iteration over a bare set: order is arbitrary per process "
                    "and breaks parallel==serial reductions; iterate "
                    "sorted(...) or a list",
                )


# ----------------------------------------------------------- shm-lifecycle


def _enclosing_functions(tree: ast.AST):
    """Yield every function node with its body reachable for sub-walks."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_shared_memory_call(node: ast.Call) -> bool:
    chain = _attr_chain(node.func)
    return chain == "SharedMemory" or chain.endswith(".SharedMemory")


def _creates(node: ast.Call) -> bool:
    return any(
        keyword.arg == "create"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in node.keywords
    )


@rule(
    "shm-lifecycle",
    "SharedMemory creators must reach close()+unlink() (or a registered "
    "finalizer); attacher code paths must never unlink",
)
def shm_lifecycle(context: LintContext, source: SourceFile) -> Iterator:
    creations = []
    has_close = has_unlink = has_finalizer = False
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            if _is_shared_memory_call(node):
                creations.append(node)
            chain = _attr_chain(node.func)
            if chain.endswith(".close"):
                has_close = True
            if chain.endswith(".unlink"):
                has_unlink = True
            if chain.endswith((".register", "Finalize")) and chain.startswith(
                ("atexit", "util", "multiprocessing")
            ):
                has_finalizer = True
    if not creations:
        return
    for creation in creations:
        if _creates(creation):
            if not ((has_close and has_unlink) or has_finalizer):
                yield (
                    creation.lineno,
                    creation.col_offset,
                    "SharedMemory(create=True) without close()+unlink() (or a "
                    "registered atexit/Finalize hook) in this module — the "
                    "segment outlives the process",
                )
    # Attachers: a function that opens an existing segment must never unlink
    # it — that is the creator's exactly-once job.
    for function in _enclosing_functions(source.tree):
        attaches = [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Call)
            and _is_shared_memory_call(node)
            and not _creates(node)
        ]
        if not attaches:
            continue
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and _attr_chain(node.func).endswith(
                ".unlink"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"unlink() in {function.name}(), which attaches an "
                    "existing SharedMemory segment — attachers close their "
                    "mapping only; unlinking would tear the segment out from "
                    "under the creator and every sibling worker",
                )


# -------------------------------------------------------------- obs-naming

_OBS_BASES = {"obs", "trace", "_trace"}
_OBS_NAMED_CALLS = {
    "counter_add",
    "counter_value",
    "gauge_set",
    "histogram_observe",
    "span",
    "record_event",
    "emit_instant",
    "emit_counter",
    "emit_complete",
}


@rule(
    "obs-naming",
    "metric/span name literals at obs call sites must appear in the "
    "repro.obs.names taxonomy (typos silently fork series across merges)",
)
def obs_naming(context: LintContext, source: SourceFile) -> Iterator:
    if not (
        _in_package(source, "src/repro/", "scripts/", "benchmarks/")
        and not _in_package(source, "src/repro/obs/")
    ):
        return
    from repro.obs import names as taxonomy

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _OBS_NAMED_CALLS
            and _attr_chain(func.value) in _OBS_BASES
        ):
            continue
        name_arg = node.args[0]
        for constant in _string_values(name_arg):
            name = constant.value
            if name in taxonomy.NAMES or name.startswith(taxonomy.DYNAMIC_PREFIXES):
                continue
            yield (
                constant.lineno,
                constant.col_offset,
                f"obs name {name!r} is not in the repro.obs.names taxonomy — "
                "register it there (typos fork metric series across the "
                "worker snapshot merge)",
            )
        if isinstance(name_arg, ast.JoinedStr):
            head = name_arg.values[0] if name_arg.values else None
            prefix = (
                head.value
                if isinstance(head, ast.Constant) and isinstance(head.value, str)
                else ""
            )
            if not prefix.startswith(taxonomy.DYNAMIC_PREFIXES):
                yield (
                    name_arg.lineno,
                    name_arg.col_offset,
                    "f-string obs name must open with a registered dynamic "
                    f"prefix ({', '.join(taxonomy.DYNAMIC_PREFIXES)}); got "
                    f"prefix {prefix!r}",
                )


# ------------------------------------------------------------ env-registry


def _env_read_key(node: ast.Call) -> ast.AST | None:
    """The key expression of an ``os.environ``/``os.getenv`` *read*, if any."""
    chain = _attr_chain(node.func)
    if chain in ("os.getenv", "os.environ.get") and node.args:
        return node.args[0]
    return None


def _key_violation(key: ast.AST) -> str | None:
    """Why this key expression denotes a ``REPRO_*`` env read, or ``None``."""
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        if key.value.startswith("REPRO_"):
            return f"{key.value!r}"
        return None
    dotted = _attr_chain(key)
    if dotted and dotted.split(".")[-1].endswith("_ENV"):
        return dotted
    return None


@rule(
    "env-registry",
    "every os.environ/os.getenv read of a REPRO_* key must go through the "
    "repro.env knob registry (writes stay legal: env is the worker transport)",
)
def env_registry(context: LintContext, source: SourceFile) -> Iterator:
    if source.rel == "src/repro/env.py":
        return
    from repro import env as knob_registry

    declared = set(knob_registry.REGISTRY)
    for node in ast.walk(source.tree):
        key = None
        if isinstance(node, ast.Call):
            key = _env_read_key(node)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if _attr_chain(node.value) == "os.environ":
                key = node.slice
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            if any(_attr_chain(cmp) == "os.environ" for cmp in node.comparators):
                key = node.left
        if key is None:
            continue
        described = _key_violation(key)
        if described is None:
            continue
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and key.value not in declared
        ):
            yield (
                node.lineno,
                node.col_offset,
                f"read of undeclared env knob {described} — declare an "
                "EnvKnob in repro/env.py (name, default, parser, doc) first",
            )
        else:
            yield (
                node.lineno,
                node.col_offset,
                f"direct environment read of {described} — read it through "
                "the repro.env registry (knob.raw()/get()/is_set() or "
                "env.temporary for save/restore)",
            )


# --------------------------------------------------------- kernel-contract

_KERNEL_MODULES = (
    "src/repro/billboard/influence.py",
    "src/repro/billboard/bitmap_store.py",
    "src/repro/billboard/popcount_jit.py",
)

_BIT_IDENTICAL_TAG = "bit-identical"


@rule(
    "kernel-contract",
    "kernel functions whose docstring claims bit-identity must be referenced "
    "by at least one test under tests/ — the claim is a test contract, not "
    "prose",
)
def kernel_contract(context: LintContext, source: SourceFile) -> Iterator:
    if source.rel not in _KERNEL_MODULES:
        return
    corpus = context.test_corpus()
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        docstring = ast.get_docstring(node) or ""
        if _BIT_IDENTICAL_TAG not in docstring:
            continue
        name = node.name
        if name not in corpus:
            yield (
                node.lineno,
                node.col_offset,
                f"{name}() claims bit-identity in its docstring but no test "
                "under tests/ references it — add a property/equivalence test "
                "or drop the claim",
            )


# --------------------------------------------------------------- obs-guard

_GUARDED_CALLS = {"span", "record_event"}


@rule(
    "obs-guard",
    "no unconditional obs.span/obs.record_event in loop bodies of "
    "algorithms/ — per-row emission turns telemetry into the hot path",
)
def obs_guard(context: LintContext, source: SourceFile) -> Iterator:
    if not _in_package(source, "src/repro/algorithms/"):
        return

    findings: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, in_loop: bool, guarded: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop, child_guarded = in_loop, guarded
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested def's body runs when called, not per iteration.
                child_in_loop, child_guarded = False, False
            elif isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop, child_guarded = True, False
            elif isinstance(child, ast.If) and in_loop:
                child_guarded = True
            if (
                in_loop
                and not guarded
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _GUARDED_CALLS
                and _attr_chain(child.func.value) == "obs"
            ):
                findings.append(
                    (
                        child.lineno,
                        child.col_offset,
                        f"obs.{child.func.attr}(...) runs unconditionally in a "
                        "loop body — hoist it out of the loop or gate it "
                        "(sampling / enabled check); span setup costs real "
                        "time per row even when collection is off",
                    )
                )
            visit(child, child_in_loop, child_guarded)

    visit(source.tree, in_loop=False, guarded=False)
    yield from findings
