"""The ``repro lint`` verb (also reachable as ``scripts/lint_invariants.py``).

Exit status: 0 when every finding is suppressed or baselined, 1 otherwise.
``--json`` emits the shared findings schema (see
:mod:`repro.lint.findings`); ``--write-baseline`` grandfathers the current
findings — policy in DESIGN.md §14: baseline deliberate debt only, fix or
suppress everything else at the call site.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.core import (
    BASELINE_FILENAME,
    RULES,
    LintResult,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.findings import findings_payload


def default_root() -> Path:
    """The repo root: the directory holding ``src/`` of this installation."""
    return Path(__file__).resolve().parents[3]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files to lint (default: src/, scripts/, benchmarks/, examples/)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root (default: auto-detected from the package location)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the shared findings JSON schema instead of text",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings as failures too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )


def run_from_args(args: argparse.Namespace) -> int:
    from repro.lint import rules as _rules  # noqa: F401  (register shipped rules)

    if args.list_rules:
        for rule_id, (doc, _) in sorted(RULES.items()):
            print(f"{rule_id:<16} {doc}")
        return 0
    root = Path(args.root).resolve() if args.root else default_root()
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_FILENAME
    )
    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    paths = [Path(p) for p in args.paths] if args.paths else None
    result = run_lint(root, paths=paths, baseline=baseline, rule_ids=args.rules)
    if args.write_baseline:
        write_baseline(result.new + result.baselined, baseline_path)
        print(
            f"wrote {baseline_path} "
            f"({len(result.new) + len(result.baselined)} finding(s) grandfathered)"
        )
        return 0
    return report(result, as_json=args.as_json)


def report(result: LintResult, as_json: bool = False) -> int:
    if as_json:
        payload = findings_payload(
            "repro-lint",
            result.new,
            baselined=len(result.baselined),
            files_checked=result.files_checked,
        )
        print(json.dumps(payload, indent=2))
        return 0 if result.ok else 1
    for finding in result.new:
        print(finding.render())
    summary = (
        f"{len(result.new)} finding(s), {len(result.baselined)} baselined, "
        f"{result.files_checked} file(s) checked"
    )
    if result.stale_baseline:
        summary += f", {result.stale_baseline} stale baseline entr(y/ies)"
    print(("FAIL: " if not result.ok else "ok: ") + summary)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__.split("\n", 1)[0]
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
