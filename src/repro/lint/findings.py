"""Findings: the one machine-readable schema every repo checker emits.

``repro lint --json``, ``scripts/lint_invariants.py --json``, and
``repro obs report --validate --json`` all serialize through
:func:`findings_payload`, so tooling that consumes one consumes all —
a finding is always ``{rule, path, line, col, message}`` inside a
``{schema, tool, count, findings}`` envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Schema tag stamped on every findings payload so readers can migrate.
FINDINGS_SCHEMA = "repro-findings-v1"


@dataclass(frozen=True, order=True)
class Finding:
    """One checker diagnosis, anchored to a source (or artifact) location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity for baseline matching: line numbers deliberately excluded
        so unrelated edits above a grandfathered finding do not churn the
        baseline file."""
        return (self.rule, self.path, self.message)


def findings_payload(tool: str, findings: list[Finding], **extra) -> dict:
    """The shared JSON envelope (sorted, deterministic)."""
    return {
        "schema": FINDINGS_SCHEMA,
        "tool": tool,
        "count": len(findings),
        "findings": [finding.as_dict() for finding in sorted(findings)],
        **extra,
    }


def problems_to_findings(rule: str, path: str, problems: list[str]) -> list[Finding]:
    """Wrap plain problem strings (e.g. Chrome-trace schema violations) as
    findings anchored to the artifact itself."""
    return [
        Finding(path=str(path), line=0, col=0, rule=rule, message=problem)
        for problem in problems
    ]
