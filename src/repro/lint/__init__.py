"""``repro.lint`` — the stdlib-only invariant linter.

Static (``ast``-based) enforcement of the contracts the reproduction's
correctness and performance guarantees rest on: determinism of kernels and
reductions, exactly-once shared-memory lifecycles, the obs name taxonomy,
the central env-knob registry, bit-identity test coverage, and
telemetry-free tight loops.  See ``DESIGN.md`` §14 for the taxonomy and
``repro lint --list-rules`` for the shipped rule set.
"""

from repro.lint.core import (
    BASELINE_FILENAME,
    RULES,
    LintContext,
    LintResult,
    SourceFile,
    iter_source_files,
    lint_file,
    load_baseline,
    rule,
    run_lint,
    write_baseline,
)
from repro.lint.findings import (
    FINDINGS_SCHEMA,
    Finding,
    findings_payload,
    problems_to_findings,
)

__all__ = [
    "BASELINE_FILENAME",
    "FINDINGS_SCHEMA",
    "Finding",
    "LintContext",
    "LintResult",
    "RULES",
    "SourceFile",
    "findings_payload",
    "iter_source_files",
    "lint_file",
    "load_baseline",
    "problems_to_findings",
    "rule",
    "run_lint",
    "write_baseline",
]
