"""Chunked, vectorized synthetic-NYC trajectory stream for paper-scale runs.

:func:`~repro.datasets.nyc.generate_nyc` builds each trajectory with a
per-trip Python loop (fine at bench scale, hopeless at the paper's 1.7 M
trips).  :class:`NycStream` produces the same *structure* — hotspot-mixture
origins, Laplace-offset destinations, L-shaped Manhattan routes sampled
every ~60 m — but synthesizes whole chunks of trips at once with
repeat/cumsum arclength parameterization: no Python loop over trips, and the
corpus never exists in memory beyond one chunk.

Determinism: chunk ``k`` draws from ``default_rng((seed, 2 + k))``, so the
stream is reproducible, restartable mid-corpus, and independent of how many
chunks a consumer actually reads.  The billboard inventory and hotspot
layout derive from the same ``seed``, so every corpus size of one seed
shares one fixed inventory — exactly what a scale sweep needs.

Chunks plug straight into
:meth:`~repro.billboard.influence.CoverageIndex.from_trajectory_chunks` /
:func:`~repro.billboard.influence.build_coverage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.billboard.model import BillboardDB
from repro.datasets.nyc import (
    _CITY_SIZE_M,
    _HOTSPOT_BILLBOARD_FRACTION,
    _SAMPLE_SPACING_M,
    _TRIP_OFFSET_SCALE_M,
    _hotspots,
)
from repro.datasets.synthetic import sample_mixture
from repro.spatial.bbox import BoundingBox

DEFAULT_CHUNK_SIZE = 100_000


class TrajectoryChunk:
    """One bounded slice of a streamed corpus (what the coverage join needs).

    Exposes the ``all_points`` / ``point_counts`` / ``points_of`` trio the
    radius join consumes, nothing more — no per-trip objects, no travel
    times.
    """

    __slots__ = ("all_points", "point_counts", "_offsets")

    def __init__(self, all_points: np.ndarray, point_counts: np.ndarray) -> None:
        self.all_points = np.asarray(all_points, dtype=np.float64)
        self.point_counts = np.asarray(point_counts, dtype=np.int64)
        self._offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.point_counts)

    def points_of(self, local_id: int) -> np.ndarray:
        if self._offsets is None:
            self._offsets = np.concatenate([[0], np.cumsum(self.point_counts)])
        return self.all_points[self._offsets[local_id] : self._offsets[local_id + 1]]


def concat_chunks(chunks) -> TrajectoryChunk:
    """Merge chunks into one (for single-shot vs chunked comparisons)."""
    chunks = list(chunks)
    return TrajectoryChunk(
        np.concatenate([c.all_points for c in chunks])
        if chunks
        else np.empty((0, 2)),
        np.concatenate([c.point_counts for c in chunks])
        if chunks
        else np.empty(0, dtype=np.int64),
    )


@dataclass
class NycStream:
    """A fixed billboard inventory plus an N-trajectory chunked trip stream."""

    billboards: BillboardDB
    num_trajectories: int
    chunk_size: int
    seed: int
    _centers: np.ndarray = field(repr=False, default=None)
    _weights: np.ndarray = field(repr=False, default=None)
    _sigmas: np.ndarray = field(repr=False, default=None)
    _bbox: BoundingBox = field(repr=False, default=None)

    def chunks(self) -> Iterator[TrajectoryChunk]:
        """Yield the corpus as consecutive-id chunks (restartable, lazy)."""
        for index, start in enumerate(
            range(0, self.num_trajectories, self.chunk_size)
        ):
            count = min(self.chunk_size, self.num_trajectories - start)
            yield self._synthesize(index, count)

    def num_chunks(self) -> int:
        return -(-self.num_trajectories // self.chunk_size)

    def _synthesize(self, chunk_index: int, count: int) -> TrajectoryChunk:
        rng = np.random.default_rng((self.seed, 2 + chunk_index))
        origins = sample_mixture(
            rng, self._centers, self._weights, self._sigmas, count, self._bbox
        )
        offsets = rng.laplace(0.0, _TRIP_OFFSET_SCALE_M, size=(count, 2))
        destinations = origins + offsets
        destinations[:, 0] = np.clip(
            destinations[:, 0], self._bbox.min_x, self._bbox.max_x
        )
        destinations[:, 1] = np.clip(
            destinations[:, 1], self._bbox.min_y, self._bbox.max_y
        )
        # L-shaped route per trip: x-first or y-first corner, two axis-aligned
        # legs.  Everything below is one arclength parameterization over the
        # whole chunk — no per-trip loop.
        x_first = rng.random(count) < 0.5
        corners = np.where(
            x_first[:, None],
            np.column_stack([destinations[:, 0], origins[:, 1]]),
            np.column_stack([origins[:, 0], destinations[:, 1]]),
        )
        leg1 = np.abs(corners - origins).sum(axis=1)
        leg2 = np.abs(destinations - corners).sum(axis=1)
        total = leg1 + leg2
        counts = np.maximum(
            2, np.ceil(total / _SAMPLE_SPACING_M).astype(np.int64) + 1
        )
        owner = np.repeat(np.arange(count), counts)
        starts = np.concatenate([[0], np.cumsum(counts)])[:-1]
        position = np.arange(len(owner)) - starts[owner]
        # Equal spacing <= _SAMPLE_SPACING_M from origin to destination,
        # endpoints included.
        distance = position / (counts[owner] - 1) * total[owner]
        # Unit directions per leg (safe 1.0 denominator on zero-length legs —
        # those legs are never stepped into because distance <= 0 there).
        u1 = (corners - origins) / np.maximum(leg1, 1e-12)[:, None]
        u2 = (destinations - corners) / np.maximum(leg2, 1e-12)[:, None]
        on_leg2 = distance > leg1[owner]
        along = np.where(
            on_leg2[:, None],
            corners[owner] + u2[owner] * (distance - leg1[owner])[:, None],
            origins[owner] + u1[owner] * distance[:, None],
        )
        return TrajectoryChunk(along, counts)


def nyc_stream(
    n_billboards: int,
    n_trajectories: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int = 0,
) -> NycStream:
    """A streamed synthetic-NYC corpus with its (seed-fixed) inventory.

    The hotspot layout comes from ``default_rng((seed, 0))`` and the
    billboards from ``default_rng((seed, 1))``: corpora of every size under
    one seed share the same city, so scale sweeps vary exactly one thing.
    """
    if n_billboards <= 0 or n_trajectories <= 0:
        raise ValueError("corpus sizes must be positive")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    bbox = BoundingBox(0.0, 0.0, _CITY_SIZE_M, _CITY_SIZE_M)
    centers, weights, sigmas = _hotspots(np.random.default_rng((seed, 0)), bbox)

    rng = np.random.default_rng((seed, 1))
    n_hot = int(round(_HOTSPOT_BILLBOARD_FRACTION * n_billboards))
    hot = sample_mixture(rng, centers, weights, sigmas, n_hot, bbox)
    uniform = np.column_stack(
        [
            rng.uniform(bbox.min_x, bbox.max_x, size=n_billboards - n_hot),
            rng.uniform(bbox.min_y, bbox.max_y, size=n_billboards - n_hot),
        ]
    )
    locations = np.vstack([hot, uniform])[rng.permutation(n_billboards)]
    billboards = BillboardDB.from_locations(locations)
    stream = NycStream(billboards, int(n_trajectories), int(chunk_size), int(seed))
    stream._centers = centers
    stream._weights = weights
    stream._sigmas = sigmas
    stream._bbox = bbox
    return stream
