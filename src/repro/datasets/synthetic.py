"""Shared building blocks for the synthetic city generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.billboard import coverage_cache
from repro.billboard.influence import CoverageIndex
from repro.billboard.model import BillboardDB
from repro.spatial.bbox import BoundingBox
from repro.trajectory.model import TrajectoryDB


@dataclass
class CityDataset:
    """A synthesized city: billboard inventory + trajectory corpus.

    Coverage indices are cached per ``λ`` so a parameter sweep over ``λ``
    (Figure 12) or repeated instance builds at the default ``λ`` do not
    recompute the radius join.  When the ``REPRO_COVERAGE_CACHE`` environment
    variable names a directory, indices are additionally cached *on disk*
    keyed by a content fingerprint (see
    :mod:`repro.billboard.coverage_cache`), so even a fresh process — or a
    parallel sweep worker — never recomputes coverage for an unchanged
    (city, λ) cell.
    """

    name: str
    billboards: BillboardDB
    trajectories: TrajectoryDB
    _coverage_cache: dict[float, CoverageIndex] = field(default_factory=dict, repr=False)

    def coverage(self, lambda_m: float = 100.0, exact_segments: bool = False) -> CoverageIndex:
        """The coverage index at influence radius ``λ`` (cached per mode)."""
        key = (float(lambda_m), exact_segments)
        if key not in self._coverage_cache:
            self._coverage_cache[key] = coverage_cache.get_or_build(
                self.billboards,
                self.trajectories,
                lambda_m=float(lambda_m),
                exact_segments=exact_segments,
            )
        return self._coverage_cache[key]

    def describe(self) -> str:
        return (
            f"{self.name}: |U|={len(self.billboards)}, |T|={len(self.trajectories)}"
        )


def sample_mixture(
    rng: np.random.Generator,
    centers: np.ndarray,
    weights: np.ndarray,
    sigmas: np.ndarray,
    count: int,
    bbox: BoundingBox,
) -> np.ndarray:
    """Sample ``count`` points from a Gaussian mixture, clipped to ``bbox``.

    Models hotspot-concentrated activity (billboard placement and taxi trip
    endpoints cluster around commercial centers).
    """
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    components = rng.choice(len(centers), size=count, p=weights)
    points = centers[components] + rng.normal(size=(count, 2)) * sigmas[components][:, None]
    points[:, 0] = np.clip(points[:, 0], bbox.min_x, bbox.max_x)
    points[:, 1] = np.clip(points[:, 1], bbox.min_y, bbox.max_y)
    return points


def manhattan_route(
    origin: np.ndarray, destination: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """An L-shaped grid route between two points (x-first or y-first)."""
    if rng.random() < 0.5:
        corner = np.array([destination[0], origin[1]])
    else:
        corner = np.array([origin[0], destination[1]])
    return np.vstack([origin, corner, destination])


def meandering_polyline(
    rng: np.random.Generator,
    start: np.ndarray,
    heading: float,
    total_length: float,
    segment_length: float,
    turn_sigma: float,
    bbox: BoundingBox,
) -> np.ndarray:
    """A gently turning polyline (a bus route) confined to ``bbox``.

    The heading performs a small random walk; when the route hits the box
    boundary it bounces back toward the center.
    """
    if total_length <= 0 or segment_length <= 0:
        raise ValueError("total_length and segment_length must be positive")
    center = np.array([bbox.center.x, bbox.center.y])
    points = [np.asarray(start, dtype=np.float64)]
    position = points[0].copy()
    steps = max(int(round(total_length / segment_length)), 1)
    for _ in range(steps):
        heading += rng.normal(0.0, turn_sigma)
        step = segment_length * np.array([np.cos(heading), np.sin(heading)])
        position = position + step
        outside = (
            position[0] < bbox.min_x
            or position[0] > bbox.max_x
            or position[1] < bbox.min_y
            or position[1] > bbox.max_y
        )
        if outside:
            toward_center = center - position
            heading = float(np.arctan2(toward_center[1], toward_center[0]))
            position[0] = np.clip(position[0], bbox.min_x, bbox.max_x)
            position[1] = np.clip(position[1], bbox.min_y, bbox.max_y)
        points.append(position.copy())
    return np.vstack(points)
