"""The worked example of the paper's Section 1 (Tables 1–4).

Six billboards with influences ``(2, 6, 3, 7, 1, 1)`` over disjoint
trajectory sets, three advertisers ``a1 (I=5, L=$10)``, ``a2 (I=7, L=$11)``,
``a3 (I=8, L=$20)``.  Strategy 1 (Table 3) satisfies a1 with excess and
leaves a3 short by one; Strategy 2 (Table 4) satisfies everyone exactly for
zero regret.  (The influence of ``o3`` is not legible in Table 1 of the
available text; the value 3 is forced by both strategies' reported
``I(S_i) − I_i`` rows.)
"""

from __future__ import annotations

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance

#: Table 1 billboard influences, o1..o6.
BILLBOARD_INFLUENCES = (2, 6, 3, 7, 1, 1)

#: Table 2 advertiser contracts, a1..a3 as (demand, payment).
ADVERTISER_CONTRACTS = ((5, 10.0), (7, 11.0), (8, 20.0))


def example1_instance(gamma: float = 0.5) -> MROAMInstance:
    """Build the Section 1 instance (billboards cover disjoint trajectories,
    so set influence aggregates exactly as the example's arithmetic does)."""
    coverage_lists: list[range] = []
    cursor = 0
    for influence in BILLBOARD_INFLUENCES:
        coverage_lists.append(range(cursor, cursor + influence))
        cursor += influence
    coverage = CoverageIndex.from_coverage_lists(coverage_lists, num_trajectories=cursor)
    advertisers = [
        Advertiser(i, demand, payment, name=f"a{i + 1}")
        for i, (demand, payment) in enumerate(ADVERTISER_CONTRACTS)
    ]
    return MROAMInstance(coverage, advertisers, gamma=gamma)


def _allocate(instance: MROAMInstance, plan: dict[int, tuple[int, ...]]) -> Allocation:
    allocation = Allocation(instance)
    for advertiser_id, billboard_ids in plan.items():
        for billboard_id in billboard_ids:
            allocation.assign(billboard_id, advertiser_id)
    return allocation


def example1_strategy1(instance: MROAMInstance) -> Allocation:
    """Table 3: S1={o2}, S2={o4}, S3={o1, o3, o5, o6} — a3 unsatisfied."""
    return _allocate(instance, {0: (1,), 1: (3,), 2: (0, 2, 4, 5)})


def example1_strategy2(instance: MROAMInstance) -> Allocation:
    """Table 4: S1={o1, o3}, S2={o4}, S3={o2, o5, o6} — everyone exact, R=0."""
    return _allocate(instance, {0: (0, 2), 1: (3,), 2: (1, 4, 5)})
