"""Persistence of generated cities.

Cities are saved as a directory of two CSV files:

* ``billboards.csv`` — ``billboard_id,x,y,label``
* ``trajectories.csv`` — one row per point:
  ``trajectory_id,point_index,x,y,travel_time`` (travel time repeated per
  trajectory for simplicity of the flat format).

The format is deliberately plain so saved cities can be inspected or fed to
other tooling; full-scale corpora stay compact enough (tens of MB).

For corpora too large to materialize, :func:`iter_trajectory_chunks` streams
``trajectories.csv`` back as bounded ``(points, point_counts)`` chunks that
feed straight into
:meth:`~repro.billboard.influence.CoverageIndex.from_trajectory_chunks`, so
coverage can be built from disk with O(chunk) peak memory.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.billboard.model import BillboardDB
from repro.datasets.synthetic import CityDataset
from repro.trajectory.model import Trajectory, TrajectoryDB

BILLBOARD_FILE = "billboards.csv"
TRAJECTORY_FILE = "trajectories.csv"


def save_city(city: CityDataset, directory: str | Path) -> Path:
    """Write a city to ``directory`` (created if needed); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / BILLBOARD_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["billboard_id", "x", "y", "label"])
        for billboard in city.billboards:
            writer.writerow(
                [
                    billboard.billboard_id,
                    f"{billboard.location.x:.3f}",
                    f"{billboard.location.y:.3f}",
                    billboard.label,
                ]
            )

    with open(directory / TRAJECTORY_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["trajectory_id", "point_index", "x", "y", "travel_time", "start_time"]
        )
        for trajectory in city.trajectories:
            for point_index, (x, y) in enumerate(trajectory.points):
                writer.writerow(
                    [
                        trajectory.trajectory_id,
                        point_index,
                        f"{x:.3f}",
                        f"{y:.3f}",
                        f"{trajectory.travel_time:.3f}",
                        f"{trajectory.start_time:.3f}",
                    ]
                )
    return directory


def iter_trajectory_chunks(directory: str | Path, chunk_size: int):
    """Stream a saved city's trajectories as ``(points, point_counts)`` chunks.

    Yields at most ``chunk_size`` trajectories per chunk, reading
    ``trajectories.csv`` row by row — the corpus is never materialized.
    Trajectory ids must be dense and ordered (the layout :func:`save_city`
    writes), so chunks carry consecutive id ranges and feed
    ``CoverageIndex.from_trajectory_chunks`` directly.
    """
    directory = Path(directory)
    chunk_size = int(chunk_size)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    points: list[tuple[float, float]] = []
    counts: list[int] = []
    current_id: int | None = None
    expected_id = 0
    with open(directory / TRAJECTORY_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            trajectory_id = int(row["trajectory_id"])
            if trajectory_id != current_id:
                if trajectory_id != expected_id:
                    raise ValueError(
                        "trajectory ids must be dense and ordered; expected "
                        f"{expected_id}, got {trajectory_id}"
                    )
                if len(counts) == chunk_size:
                    yield (
                        np.array(points, dtype=np.float64),
                        np.array(counts, dtype=np.int64),
                    )
                    points, counts = [], []
                current_id = trajectory_id
                expected_id += 1
                counts.append(0)
            counts[-1] += 1
            points.append((float(row["x"]), float(row["y"])))
    if counts:
        yield (
            np.array(points, dtype=np.float64),
            np.array(counts, dtype=np.int64),
        )


def load_city(directory: str | Path, name: str | None = None) -> CityDataset:
    """Load a city previously written by :func:`save_city`."""
    directory = Path(directory)

    locations: list[list[float]] = []
    labels: list[str] = []
    with open(directory / BILLBOARD_FILE, newline="") as handle:
        for row_index, row in enumerate(csv.DictReader(handle)):
            if int(row["billboard_id"]) != row_index:
                raise ValueError(
                    f"billboard ids must be dense and ordered; row {row_index} has "
                    f"id {row['billboard_id']}"
                )
            locations.append([float(row["x"]), float(row["y"])])
            labels.append(row["label"])
    billboards = BillboardDB.from_locations(np.array(locations), labels)

    points_by_trajectory: dict[int, list[list[float]]] = {}
    travel_times: dict[int, float] = {}
    start_times: dict[int, float] = {}
    with open(directory / TRAJECTORY_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            trajectory_id = int(row["trajectory_id"])
            points_by_trajectory.setdefault(trajectory_id, []).append(
                [float(row["x"]), float(row["y"])]
            )
            travel_times[trajectory_id] = float(row["travel_time"])
            # start_time was added for the digital-billboard extension; files
            # written by older versions simply lack the column.
            start_times[trajectory_id] = float(row.get("start_time") or 0.0)
    trajectories = TrajectoryDB(
        Trajectory(
            tid, np.array(points_by_trajectory[tid]), travel_times[tid], start_times[tid]
        )
        for tid in sorted(points_by_trajectory)
    )
    return CityDataset(name or directory.name, billboards, trajectories)
