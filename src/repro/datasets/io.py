"""Persistence of generated cities.

Cities are saved as a directory of two CSV files:

* ``billboards.csv`` — ``billboard_id,x,y,label``
* ``trajectories.csv`` — one row per point:
  ``trajectory_id,point_index,x,y,travel_time`` (travel time repeated per
  trajectory for simplicity of the flat format).

The format is deliberately plain so saved cities can be inspected or fed to
other tooling; full-scale corpora stay compact enough (tens of MB).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.billboard.model import BillboardDB
from repro.datasets.synthetic import CityDataset
from repro.trajectory.model import Trajectory, TrajectoryDB

BILLBOARD_FILE = "billboards.csv"
TRAJECTORY_FILE = "trajectories.csv"


def save_city(city: CityDataset, directory: str | Path) -> Path:
    """Write a city to ``directory`` (created if needed); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / BILLBOARD_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["billboard_id", "x", "y", "label"])
        for billboard in city.billboards:
            writer.writerow(
                [
                    billboard.billboard_id,
                    f"{billboard.location.x:.3f}",
                    f"{billboard.location.y:.3f}",
                    billboard.label,
                ]
            )

    with open(directory / TRAJECTORY_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["trajectory_id", "point_index", "x", "y", "travel_time", "start_time"]
        )
        for trajectory in city.trajectories:
            for point_index, (x, y) in enumerate(trajectory.points):
                writer.writerow(
                    [
                        trajectory.trajectory_id,
                        point_index,
                        f"{x:.3f}",
                        f"{y:.3f}",
                        f"{trajectory.travel_time:.3f}",
                        f"{trajectory.start_time:.3f}",
                    ]
                )
    return directory


def load_city(directory: str | Path, name: str | None = None) -> CityDataset:
    """Load a city previously written by :func:`save_city`."""
    directory = Path(directory)

    locations: list[list[float]] = []
    labels: list[str] = []
    with open(directory / BILLBOARD_FILE, newline="") as handle:
        for row_index, row in enumerate(csv.DictReader(handle)):
            if int(row["billboard_id"]) != row_index:
                raise ValueError(
                    f"billboard ids must be dense and ordered; row {row_index} has "
                    f"id {row['billboard_id']}"
                )
            locations.append([float(row["x"]), float(row["y"])])
            labels.append(row["label"])
    billboards = BillboardDB.from_locations(np.array(locations), labels)

    points_by_trajectory: dict[int, list[list[float]]] = {}
    travel_times: dict[int, float] = {}
    start_times: dict[int, float] = {}
    with open(directory / TRAJECTORY_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            trajectory_id = int(row["trajectory_id"])
            points_by_trajectory.setdefault(trajectory_id, []).append(
                [float(row["x"]), float(row["y"])]
            )
            travel_times[trajectory_id] = float(row["travel_time"])
            # start_time was added for the digital-billboard extension; files
            # written by older versions simply lack the column.
            start_times[trajectory_id] = float(row.get("start_time") or 0.0)
    trajectories = TrajectoryDB(
        Trajectory(
            tid, np.array(points_by_trajectory[tid]), travel_times[tid], start_times[tid]
        )
        for tid in sorted(points_by_trajectory)
    )
    return CityDataset(name or directory.name, billboards, trajectories)
