"""Dataset simulators standing in for the paper's proprietary data.

The paper evaluates on two real corpora we cannot redistribute: NYC LAMAR
billboards + TLC taxi trajectories, and SG JCDecaux bus-stop billboards +
EZ-link bus trips.  The generators here synthesize cities with the same
*coverage structure* (see DESIGN.md §2 for the substitution argument):

* :func:`generate_nyc` — hotspot-concentrated billboards, Manhattan-path taxi
  trips ⇒ many high-influence billboards with strongly overlapping coverage.
* :func:`generate_sg` — bus routes with stop-mounted billboards, trips as
  contiguous stop windows ⇒ more billboards, lower and more uniform
  influence, little overlap.
"""

from repro.datasets.example1 import (
    example1_instance,
    example1_strategy1,
    example1_strategy2,
)
from repro.datasets.io import load_city, save_city
from repro.datasets.nyc import generate_nyc
from repro.datasets.sg import generate_sg
from repro.datasets.synthetic import CityDataset

__all__ = [
    "CityDataset",
    "example1_instance",
    "example1_strategy1",
    "example1_strategy2",
    "generate_nyc",
    "generate_sg",
    "load_city",
    "save_city",
]


def generate_city(name: str, **kwargs) -> CityDataset:
    """Dispatch on dataset name (``"nyc"`` or ``"sg"``)."""
    key = name.lower()
    if key == "nyc":
        return generate_nyc(**kwargs)
    if key == "sg":
        return generate_sg(**kwargs)
    raise ValueError(f"unknown city {name!r}; expected 'nyc' or 'sg'")
