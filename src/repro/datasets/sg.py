"""SG-like city generator: bus routes with stop-mounted billboards.

Target structure (paper Figure 1, Table 5 and Section 7.2.2):

* *more* billboards than NYC (4 092 at full scale), one per bus stop;
* *lower, more uniform* per-billboard influence — each stop's panel is seen
  mostly by trips of its own route;
* *little coverage overlap* — bus stops are sparse, so the impression-count
  curve (Fig. 1b) rises steeply;
* λ-insensitivity below the inter-stop spacing, with a regret jump at
  λ = 200 m because some stops sit near route intersections (Section 7.4);
* average trip distance ≈ 4.2 km, travel time ≈ 1 342 s (≈ 3.1 m/s with
  dwell times).

Routes are meandering polylines across a ~24 × 17 km island; stops are laid
every ≈ 420 m along each route; a trip is a contiguous window of stops of
one route, traversed through the route's geometry (so, at large λ, a trip
can also brush stops of *crossing* routes).
"""

from __future__ import annotations

import numpy as np

from repro.billboard.model import BillboardDB
from repro.datasets.synthetic import CityDataset, meandering_polyline
from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import interpolate_path
from repro.trajectory.departures import rush_hour_departures
from repro.trajectory.model import Trajectory, TrajectoryDB
from repro.utils.rng import as_generator

#: Full-scale defaults (paper Table 5: |U| = 4092, |T| = 2.2M).
DEFAULT_BILLBOARDS = 4092
DEFAULT_TRAJECTORIES = 20_000

_CITY_WIDTH_M = 24_000.0
_CITY_HEIGHT_M = 17_000.0
_STOP_SPACING_M = 420.0
_BUS_SPEED_MPS = 3.1
_MEAN_TRIP_STOPS = 10  # ≈ 4.2 km at 420 m spacing
_ROUTE_SEGMENT_M = 800.0
_ROUTE_TURN_SIGMA = 0.35
_SAMPLE_SPACING_M = 80.0


def _build_routes(
    rng: np.random.Generator, n_stops_total: int, bbox: BoundingBox
) -> list[np.ndarray]:
    """Route stop arrays, ``(k_r, 2)`` each, totalling ``n_stops_total`` stops.

    Routes start near the boundary or interior and meander; each carries
    between 25 and 80 stops (typical Singapore trunk/feeder mix).
    """
    routes: list[np.ndarray] = []
    remaining = n_stops_total
    while remaining > 0:
        stops_on_route = int(rng.integers(25, 81))
        stops_on_route = min(stops_on_route, remaining)
        if remaining - stops_on_route < 5:
            stops_on_route = remaining  # avoid a trailing stub route
        start = np.array(
            [
                rng.uniform(bbox.min_x, bbox.max_x),
                rng.uniform(bbox.min_y, bbox.max_y),
            ]
        )
        heading = rng.uniform(0.0, 2.0 * np.pi)
        length = stops_on_route * _STOP_SPACING_M
        polyline = meandering_polyline(
            rng, start, heading, length, _ROUTE_SEGMENT_M, _ROUTE_TURN_SIGMA, bbox
        )
        stops = interpolate_path(polyline, _STOP_SPACING_M)
        if len(stops) > stops_on_route:
            stops = stops[:stops_on_route]
        elif len(stops) < stops_on_route:
            # Route got clipped by the boundary; the shortfall goes back into
            # the pool for subsequent routes.
            stops_on_route = len(stops)
        if stops_on_route < 2:
            continue
        routes.append(stops)
        remaining -= stops_on_route
    return routes


def generate_sg(
    n_billboards: int = DEFAULT_BILLBOARDS,
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    seed=None,
) -> CityDataset:
    """Generate the SG-like dataset (see module docstring)."""
    if n_billboards <= 0 or n_trajectories <= 0:
        raise ValueError("corpus sizes must be positive")
    rng = as_generator(seed)
    bbox = BoundingBox(0.0, 0.0, _CITY_WIDTH_M, _CITY_HEIGHT_M)

    routes = _build_routes(rng, n_billboards, bbox)
    stops = np.vstack(routes)
    billboards = BillboardDB.from_locations(
        stops,
        labels=[
            f"route{route_idx}-stop{stop_idx}"
            for route_idx, route in enumerate(routes)
            for stop_idx in range(len(route))
        ],
    )

    # Trip demand concentrates on longer (trunk) routes.
    route_weights = np.array([len(route) for route in routes], dtype=np.float64)
    route_weights /= route_weights.sum()

    departures = rush_hour_departures(n_trajectories, seed=rng)
    trajectories: list[Trajectory] = []
    for trajectory_id in range(n_trajectories):
        route = routes[int(rng.choice(len(routes), p=route_weights))]
        trip_stops = max(2, int(rng.poisson(_MEAN_TRIP_STOPS)))
        trip_stops = min(trip_stops, len(route))
        start = int(rng.integers(0, len(route) - trip_stops + 1))
        window = route[start : start + trip_stops]
        if rng.random() < 0.5:
            window = window[::-1]  # buses run both directions
        points = interpolate_path(window, _SAMPLE_SPACING_M)
        # Dwell at stops makes bus journeys slow relative to distance.
        travel_time = (
            trip_stops * _STOP_SPACING_M / _BUS_SPEED_MPS
        )
        trajectories.append(
            Trajectory(trajectory_id, points, travel_time, float(departures[trajectory_id]))
        )

    return CityDataset("SG", billboards, TrajectoryDB(trajectories))
