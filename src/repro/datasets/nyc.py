"""NYC-like city generator: roadside billboards + taxi trips.

Target structure (paper Figure 1 and Table 5):

* many *high-influence* billboards — panels cluster in a few busy zones that
  most taxi trips pass through;
* strongly *overlapping* coverage among the top billboards — the same dense
  trips are seen by many nearby panels, which is why NYC's impression-count
  curve (Fig. 1b) rises slowly;
* average trip distance ≈ 2.9 km, travel time ≈ 569 s (≈ 5.1 m/s).

The city is a ~14 km square with Gaussian activity hotspots.  Billboards are
placed predominantly near hotspots; taxi trips sample endpoints from the
hotspot mixture with Laplace-distributed offsets and follow L-shaped
Manhattan paths.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.model import BillboardDB
from repro.datasets.synthetic import CityDataset, manhattan_route, sample_mixture
from repro.spatial.bbox import BoundingBox
from repro.trajectory.departures import rush_hour_departures
from repro.trajectory.generators import waypoint_trajectories
from repro.utils.rng import as_generator

#: Full-scale defaults (paper Table 5: |U| = 1462, |T| = 1.7M).  Benches use
#: reduced trajectory counts; the coverage structure is scale-free.
DEFAULT_BILLBOARDS = 1462
DEFAULT_TRAJECTORIES = 20_000

_CITY_SIZE_M = 14_000.0
_TAXI_SPEED_MPS = 5.1
_TRIP_OFFSET_SCALE_M = 1_450.0  # Laplace scale ⇒ mean Manhattan length ≈ 2.9 km
_HOTSPOT_BILLBOARD_FRACTION = 0.55
_SAMPLE_SPACING_M = 60.0


def _hotspots(rng: np.random.Generator, bbox: BoundingBox) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hotspot centers, weights and spreads for a Manhattan-like city.

    One dominant midtown-style core, a secondary downtown core, and a ring of
    lighter neighbourhood centers.
    """
    center = np.array([bbox.center.x, bbox.center.y])
    offsets = np.array(
        [
            [0.0, 0.0],  # midtown core
            [-1_500.0, -3_500.0],  # downtown core
            [2_500.0, 2_000.0],
            [-3_000.0, 2_500.0],
            [3_500.0, -2_500.0],
            [-4_000.0, -1_000.0],
            [1_000.0, 4_500.0],
            [4_500.0, 500.0],
        ]
    )
    centers = center + offsets
    weights = np.array([0.30, 0.20, 0.10, 0.10, 0.08, 0.08, 0.07, 0.07])
    sigmas = np.array([1500.0, 1300.0, 1100.0, 1100.0, 1000.0, 1000.0, 950.0, 950.0])
    # Jitter hotspot placement a little so different seeds give different cities.
    centers = centers + rng.normal(0.0, 250.0, size=centers.shape)
    return centers, weights, sigmas


def generate_nyc(
    n_billboards: int = DEFAULT_BILLBOARDS,
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    seed=None,
) -> CityDataset:
    """Generate the NYC-like dataset.

    Parameters
    ----------
    n_billboards, n_trajectories:
        Corpus sizes.  The paper's full scale is 1 462 billboards and 1.7 M
        trajectories; the trajectory default is scaled down for laptop runs.
    seed:
        RNG seed or generator.
    """
    if n_billboards <= 0 or n_trajectories <= 0:
        raise ValueError("corpus sizes must be positive")
    rng = as_generator(seed)
    bbox = BoundingBox(0.0, 0.0, _CITY_SIZE_M, _CITY_SIZE_M)
    centers, weights, sigmas = _hotspots(rng, bbox)

    # --- billboards: mostly hotspot-adjacent, remainder uniform street stock.
    n_hot = int(round(_HOTSPOT_BILLBOARD_FRACTION * n_billboards))
    hot_locations = sample_mixture(rng, centers, weights, sigmas, n_hot, bbox)
    n_uniform = n_billboards - n_hot
    uniform_locations = np.column_stack(
        [
            rng.uniform(bbox.min_x, bbox.max_x, size=n_uniform),
            rng.uniform(bbox.min_y, bbox.max_y, size=n_uniform),
        ]
    )
    locations = np.vstack([hot_locations, uniform_locations])
    order = rng.permutation(len(locations))
    billboards = BillboardDB.from_locations(locations[order])

    # --- taxi trips: hotspot origin, Laplace offset destination, L-shaped path.
    origins = sample_mixture(rng, centers, weights, sigmas, n_trajectories, bbox)
    offsets = rng.laplace(0.0, _TRIP_OFFSET_SCALE_M, size=(n_trajectories, 2))
    destinations = origins + offsets
    destinations[:, 0] = np.clip(destinations[:, 0], bbox.min_x, bbox.max_x)
    destinations[:, 1] = np.clip(destinations[:, 1], bbox.min_y, bbox.max_y)

    waypoint_lists = [
        manhattan_route(origin, destination, rng)
        for origin, destination in zip(origins, destinations)
    ]
    trajectories = waypoint_trajectories(
        waypoint_lists,
        sample_spacing=_SAMPLE_SPACING_M,
        speed_mps=_TAXI_SPEED_MPS,
        start_times=rush_hour_departures(n_trajectories, seed=rng),
    )
    return CityDataset("NYC", billboards, trajectories)
