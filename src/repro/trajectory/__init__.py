"""Trajectory substrate: the user-movement data model and generators.

A *trajectory* records one audience member's movement as a sequence of planar
points (the paper's ``t = {p_1, …, p_|t|}``).  ``TrajectoryDB`` holds the
whole corpus in flat numpy arrays so the coverage join stays vectorized.
"""

from repro.trajectory.generators import random_walk_trajectories, waypoint_trajectories
from repro.trajectory.model import Trajectory, TrajectoryDB
from repro.trajectory.stats import TrajectoryStats, summarize

__all__ = [
    "Trajectory",
    "TrajectoryDB",
    "TrajectoryStats",
    "random_walk_trajectories",
    "summarize",
    "waypoint_trajectories",
]
