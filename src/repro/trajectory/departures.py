"""Departure-time sampling for the digital-billboard extension.

City trips are not uniform over the day: demand peaks at the morning and
evening rush hours with a broad daytime base.  :func:`rush_hour_departures`
samples seconds-of-day from that mixture; generators attach them to
trajectories so the time-sliced coverage of
:mod:`repro.billboard.digital` has realistic slot loads.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

SECONDS_PER_DAY = 86_400.0

#: Mixture: morning rush (8:00), evening rush (18:00), daytime base.
_RUSH_CENTERS_S = (8 * 3600.0, 18 * 3600.0)
_RUSH_SIGMA_S = 3_600.0
_RUSH_WEIGHTS = (0.3, 0.3)  # remainder: uniform over 06:00-23:00


def rush_hour_departures(count: int, seed=None) -> np.ndarray:
    """Sample ``count`` departure times (seconds-of-day, float64)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = as_generator(seed)
    choices = rng.random(count)
    times = np.empty(count, dtype=np.float64)

    morning = choices < _RUSH_WEIGHTS[0]
    evening = (~morning) & (choices < _RUSH_WEIGHTS[0] + _RUSH_WEIGHTS[1])
    base = ~(morning | evening)

    times[morning] = rng.normal(_RUSH_CENTERS_S[0], _RUSH_SIGMA_S, morning.sum())
    times[evening] = rng.normal(_RUSH_CENTERS_S[1], _RUSH_SIGMA_S, evening.sum())
    times[base] = rng.uniform(6 * 3600.0, 23 * 3600.0, base.sum())
    return np.mod(times, SECONDS_PER_DAY)
