"""Trajectory data model.

``TrajectoryDB`` stores all trajectory points in one flat ``(N, 2)`` array
plus an offsets table (CSR layout).  This keeps memory compact at the
millions-of-points scale and lets the coverage computation slice each
trajectory's points without per-trajectory Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import path_length


@dataclass(frozen=True)
class Trajectory:
    """One audience movement: an ordered sequence of planar points.

    Attributes
    ----------
    trajectory_id:
        Dense integer id, the row index in the owning :class:`TrajectoryDB`.
    points:
        ``(n, 2)`` float array of sample points in metres.
    travel_time:
        Trip duration in seconds (used for dataset statistics, Table 5, and
        for the digital-billboard time-slot model).
    start_time:
        Trip departure time in seconds-of-day (0 ≤ t < 86400).  Only the
        digital-billboard extension reads it; the paper's static model
        ignores it.
    """

    trajectory_id: int
    points: np.ndarray
    travel_time: float = 0.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"trajectory points must be (n, 2), got {points.shape}")
        if len(points) == 0:
            raise ValueError("a trajectory needs at least one point")
        object.__setattr__(self, "points", points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def length(self) -> float:
        """Travelled distance in metres."""
        return path_length(self.points)


class TrajectoryDB:
    """An immutable corpus of trajectories with CSR point storage."""

    def __init__(self, trajectories: Iterable[Trajectory]) -> None:
        trajectories = list(trajectories)
        if not trajectories:
            raise ValueError("TrajectoryDB needs at least one trajectory")
        for expected_id, trajectory in enumerate(trajectories):
            if trajectory.trajectory_id != expected_id:
                raise ValueError(
                    "trajectory ids must be dense 0..n-1 in order; "
                    f"found id {trajectory.trajectory_id} at position {expected_id}"
                )

        self._travel_times = np.array([t.travel_time for t in trajectories], dtype=np.float64)
        self._start_times = np.array([t.start_time for t in trajectories], dtype=np.float64)
        counts = np.array([len(t) for t in trajectories], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._points = np.concatenate([t.points for t in trajectories], axis=0)

    @classmethod
    def from_point_lists(
        cls,
        point_lists: Sequence[np.ndarray],
        travel_times: Sequence[float] | None = None,
    ) -> "TrajectoryDB":
        """Build a DB from raw point arrays, assigning dense ids in order."""
        if travel_times is None:
            travel_times = [0.0] * len(point_lists)
        if len(travel_times) != len(point_lists):
            raise ValueError(
                f"got {len(point_lists)} point lists but {len(travel_times)} travel times"
            )
        return cls(
            Trajectory(i, points, time)
            for i, (points, time) in enumerate(zip(point_lists, travel_times))
        )

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, trajectory_id: int) -> Trajectory:
        if not 0 <= trajectory_id < len(self):
            raise IndexError(f"trajectory id {trajectory_id} out of range [0, {len(self)})")
        start, stop = self._offsets[trajectory_id], self._offsets[trajectory_id + 1]
        return Trajectory(
            trajectory_id,
            self._points[start:stop],
            float(self._travel_times[trajectory_id]),
            float(self._start_times[trajectory_id]),
        )

    def __iter__(self) -> Iterator[Trajectory]:
        for trajectory_id in range(len(self)):
            yield self[trajectory_id]

    def points_of(self, trajectory_id: int) -> np.ndarray:
        """``(n, 2)`` view of one trajectory's points (no copy)."""
        start, stop = self._offsets[trajectory_id], self._offsets[trajectory_id + 1]
        return self._points[start:stop]

    @property
    def all_points(self) -> np.ndarray:
        """Flat ``(N, 2)`` view of every point in the corpus."""
        return self._points

    @property
    def point_counts(self) -> np.ndarray:
        """Number of sample points per trajectory."""
        return np.diff(self._offsets)

    @property
    def travel_times(self) -> np.ndarray:
        return self._travel_times

    @property
    def start_times(self) -> np.ndarray:
        """Departure times in seconds-of-day (zeros unless a generator set them)."""
        return self._start_times

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.from_points(self._points)
