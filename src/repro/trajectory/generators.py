"""Generic trajectory generators.

These are the low-level building blocks the city simulators compose:

* :func:`waypoint_trajectories` — trips defined by sparse waypoints, densified
  to GPS-ping-like sample sequences (taxi-style movement).
* :func:`random_walk_trajectories` — unstructured wandering, useful for tests
  and stress workloads.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import interpolate_path, path_length
from repro.trajectory.model import Trajectory, TrajectoryDB
from repro.utils.rng import as_generator


def waypoint_trajectories(
    waypoint_lists: Sequence[np.ndarray],
    sample_spacing: float = 50.0,
    speed_mps: float = 8.0,
    start_times: Sequence[float] | None = None,
) -> TrajectoryDB:
    """Densify sparse waypoint routes into a :class:`TrajectoryDB`.

    Parameters
    ----------
    waypoint_lists:
        One ``(k, 2)`` waypoint array per trip.
    sample_spacing:
        Distance between consecutive samples after densification, metres.
    speed_mps:
        Assumed travel speed used to derive travel times (Table 5 statistic).
    start_times:
        Optional departure times in seconds-of-day, one per trip (used by
        the digital-billboard extension); defaults to all zeros.
    """
    if speed_mps <= 0:
        raise ValueError(f"speed_mps must be positive, got {speed_mps}")
    if start_times is not None and len(start_times) != len(waypoint_lists):
        raise ValueError(
            f"got {len(waypoint_lists)} trips but {len(start_times)} start times"
        )
    trajectories = []
    for trajectory_id, waypoints in enumerate(waypoint_lists):
        points = interpolate_path(np.asarray(waypoints, dtype=np.float64), sample_spacing)
        travel_time = path_length(points) / speed_mps
        start = float(start_times[trajectory_id]) if start_times is not None else 0.0
        trajectories.append(Trajectory(trajectory_id, points, travel_time, start))
    return TrajectoryDB(trajectories)


def random_walk_trajectories(
    count: int,
    bbox: BoundingBox,
    steps: int = 20,
    step_length: float = 100.0,
    speed_mps: float = 1.4,
    seed=None,
) -> TrajectoryDB:
    """Uniformly seeded random walks clamped to ``bbox``.

    Each walk starts at a uniform location and takes ``steps`` moves of
    ``step_length`` metres in uniformly random directions.  Walking speed
    defaults to a pedestrian 1.4 m/s.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = as_generator(seed)

    trajectories = []
    for trajectory_id in range(count):
        start = np.array(
            [
                rng.uniform(bbox.min_x, bbox.max_x),
                rng.uniform(bbox.min_y, bbox.max_y),
            ]
        )
        angles = rng.uniform(0.0, 2.0 * np.pi, size=steps)
        deltas = step_length * np.column_stack([np.cos(angles), np.sin(angles)])
        points = np.vstack([start, start + np.cumsum(deltas, axis=0)])
        points[:, 0] = np.clip(points[:, 0], bbox.min_x, bbox.max_x)
        points[:, 1] = np.clip(points[:, 1], bbox.min_y, bbox.max_y)
        travel_time = path_length(points) / speed_mps
        trajectories.append(Trajectory(trajectory_id, points, travel_time))
    return TrajectoryDB(trajectories)


def trips_between(
    origins: np.ndarray,
    destinations: np.ndarray,
    router: Callable[[np.ndarray, np.ndarray], np.ndarray],
    sample_spacing: float = 50.0,
    speed_mps: float = 8.0,
) -> TrajectoryDB:
    """Build trips from origin/destination pairs via a routing function.

    ``router(origin, destination)`` returns the waypoint polyline of one trip;
    the city simulators plug in Manhattan-style or road-network routers.
    """
    origins = np.asarray(origins, dtype=np.float64)
    destinations = np.asarray(destinations, dtype=np.float64)
    if origins.shape != destinations.shape:
        raise ValueError(
            f"origins {origins.shape} and destinations {destinations.shape} must match"
        )
    waypoint_lists = [router(o, d) for o, d in zip(origins, destinations)]
    return waypoint_trajectories(waypoint_lists, sample_spacing, speed_mps)
