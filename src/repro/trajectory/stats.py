"""Corpus statistics matching Table 5 of the paper.

Table 5 reports, per dataset: trajectory count ``|T|``, billboard count
``|U|``, average trip distance, and average travel time.  :func:`summarize`
computes the trajectory-side numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.model import TrajectoryDB


@dataclass(frozen=True, slots=True)
class TrajectoryStats:
    """Summary statistics of a trajectory corpus."""

    count: int
    avg_distance_m: float
    avg_travel_time_s: float
    avg_points: float

    def as_table5_row(self, name: str, billboard_count: int) -> str:
        """Format as one row of the paper's Table 5."""
        return (
            f"{name:>4} | |T|={self.count:>9,} | |U|={billboard_count:>5,} "
            f"| AvgDistance={self.avg_distance_m / 1000.0:.1f}km "
            f"| AvgTravelTime={self.avg_travel_time_s:.0f}s"
        )


def summarize(db: TrajectoryDB) -> TrajectoryStats:
    """Compute :class:`TrajectoryStats` for a corpus."""
    lengths = np.array([t.length for t in db])
    return TrajectoryStats(
        count=len(db),
        avg_distance_m=float(lengths.mean()),
        avg_travel_time_s=float(db.travel_times.mean()),
        avg_points=float(db.point_counts.mean()),
    )
