"""Command-line interface: run any experiment cell or sweep from a shell.

Examples::

    mroam cell --dataset nyc --alpha 1.0 --p-avg 0.05
    mroam sweep --dataset sg --parameter alpha
    mroam datasets
    mroam example1
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import env, obs
from repro.billboard import bitmap_store, influence
from repro.datasets import example1_instance, example1_strategy1, example1_strategy2, generate_city
from repro.experiments.configs import (
    ALPHA_VALUES,
    BENCH_SCALE,
    GAMMA_VALUES,
    LAMBDA_VALUES,
    P_AVG_VALUES,
)
from repro.experiments.harness import run_cell, sweep
from repro.experiments.reporting import format_regret_table, format_runtime_table
from repro.market.scenario import Scenario
from repro.trajectory.stats import summarize

_SWEEP_VALUES = {
    "alpha": ALPHA_VALUES,
    "p_avg": P_AVG_VALUES,
    "gamma": GAMMA_VALUES,
    "lambda_m": LAMBDA_VALUES,
}
_SWEEP_FORMATS = {
    "alpha": "{:.0%}",
    "p_avg": "{:.0%}",
    "gamma": "{:.2f}",
    "lambda_m": "{:.0f}m",
}


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("nyc", "sg"), default="nyc")
    parser.add_argument("--billboards", type=int, default=None, help="inventory size")
    parser.add_argument("--trajectories", type=int, default=None, help="corpus size")
    parser.add_argument("--alpha", type=float, default=1.0, help="demand-supply ratio")
    parser.add_argument("--p-avg", type=float, default=0.05, help="avg individual demand ratio")
    parser.add_argument("--gamma", type=float, default=0.5, help="unsatisfied penalty ratio")
    parser.add_argument("--lambda-m", type=float, default=100.0, help="influence radius (m)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--restarts", type=int, default=3, help="ALS/BLS restart count")
    parser.add_argument(
        "--methods",
        default="g-order,g-global,als,bls",
        help="comma-separated method names",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the methods × values task grid (default serial)",
    )
    parser.add_argument(
        "--restart-workers",
        type=int,
        default=None,
        help="worker processes for ALS/BLS random restarts (shared-memory "
        "coverage, same result as serial; ignored with --workers > 1)",
    )
    parser.add_argument(
        "--restart-batch-size",
        default=None,
        metavar="K|auto",
        help="restarts packed per pool task on the --restart-workers path "
        "(auto targets >=0.5s of compute per task; same result either way)",
    )
    parser.add_argument(
        "--screen-workers",
        type=int,
        default=None,
        help="worker processes for BLS dirty-engine screen rounds above the "
        "size threshold (bit-identical moves; ignored with --workers > 1)",
    )
    parser.add_argument(
        "--obs-out",
        default=None,
        metavar="PATH",
        help="write the observability run log (spans, counters, solver "
        f"telemetry) to this JSONL file; ${obs.OBS_OUT_ENV} is the default",
    )
    parser.add_argument(
        "--obs-summary",
        action="store_true",
        help="print a human-readable metrics summary after the run",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a clock-aligned Chrome/Perfetto trace (pid/tid spans "
        "across worker pools) to this JSON file; "
        f"${obs.TRACE_ENV} is the default",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one per-run record (commit, instance features, outcome) "
        f"to this JSONL ledger; ${obs.LEDGER_ENV} is the default",
    )
    parser.add_argument(
        "--bitmap-storage",
        choices=bitmap_store.STORAGE_MODES,
        default=None,
        help="packed-bitmap storage tier (auto = ram within budget, memmap "
        f"spill past it); sets ${bitmap_store.STORAGE_ENV}",
    )
    parser.add_argument(
        "--coverage-chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="stream the coverage build N trajectories at a time (peak build "
        f"memory O(N)); sets ${influence.CHUNK_SIZE_ENV}",
    )


def _apply_coverage_knobs(args: argparse.Namespace) -> None:
    """Export the coverage knobs as environment so every build sees them."""
    if getattr(args, "bitmap_storage", None) is not None:
        os.environ[bitmap_store.STORAGE_ENV] = args.bitmap_storage
    if getattr(args, "coverage_chunk_size", None) is not None:
        if args.coverage_chunk_size <= 0:
            raise SystemExit("--coverage-chunk-size must be positive")
        os.environ[influence.CHUNK_SIZE_ENV] = str(args.coverage_chunk_size)


def _restart_batch_size(args: argparse.Namespace):
    """Parse --restart-batch-size: None (solver default), "auto", or int."""
    raw = getattr(args, "restart_batch_size", None)
    if raw is None or raw == "auto":
        return raw
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"--restart-batch-size must be an integer or 'auto', got {raw!r}"
        )


def _scenario_from(args: argparse.Namespace) -> Scenario:
    _apply_coverage_knobs(args)
    scale = BENCH_SCALE[args.dataset]
    return Scenario(
        dataset=args.dataset,
        n_billboards=args.billboards if args.billboards is not None else scale[0],
        n_trajectories=args.trajectories if args.trajectories is not None else scale[1],
        alpha=args.alpha,
        p_avg=args.p_avg,
        gamma=args.gamma,
        lambda_m=args.lambda_m,
        seed=args.seed,
    )


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable observability when the flags or the environment ask for it.

    ``--ledger`` exports ``REPRO_OBS_LEDGER`` so every producer (harness
    cells, bench sections, worker processes) sees the same ledger path.
    """
    ledger = getattr(args, "ledger", None)
    if ledger is not None:
        os.environ[obs.LEDGER_ENV] = ledger
    trace_out = getattr(args, "trace_out", None) or env.OBS_TRACE.raw()
    out = args.obs_out or env.OBS_OUT.raw()
    if trace_out is not None:
        obs.trace_enable(out=trace_out)
    if out is None and trace_out is None and not args.obs_summary:
        return False
    obs.enable(out=out)
    return True


def _obs_finish(args: argparse.Namespace) -> None:
    """Write the run log / trace, print the summary, then reset obs."""
    try:
        from repro.parallel.pool import close_all_pools

        if obs.trace_enabled():
            # Retire the pools first so every worker's teardown spill (the
            # events recorded after its last shipped snapshot) is on disk
            # before the trace is assembled.
            close_all_pools()
            path = obs.write_trace()
            print(f"\nwrote Chrome trace to {path}")
        path = obs.configured_out()
        if path is not None:
            obs.write_jsonl(path)
            print(f"\nwrote obs run log to {path}")
        if args.obs_summary:
            print()
            print(obs.summary_table())
    finally:
        obs.trace_disable()
        obs.disable()


def _cmd_cell(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    methods = args.methods.split(",")
    obs_active = _obs_begin(args)
    metrics = run_cell(
        scenario,
        methods=methods,
        restarts=args.restarts,
        workers=args.workers,
        restart_workers=args.restart_workers,
        screen_workers=args.screen_workers,
        restart_batch_size=_restart_batch_size(args),
    )
    print(f"cell: {scenario}")
    for method, cell in metrics.items():
        print(
            f"  {method:<9} regret={cell.total_regret:>12.1f} "
            f"excess={cell.excessive_pct:5.1f}% unsat={cell.unsatisfied_pct:5.1f}% "
            f"satisfied={cell.satisfied_advertisers}/{cell.num_advertisers} "
            f"time={cell.runtime_s:.2f}s"
        )
    if obs_active:
        _obs_finish(args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    values = _SWEEP_VALUES[args.parameter]
    methods = args.methods.split(",")
    obs_active = _obs_begin(args)
    result = sweep(
        scenario,
        args.parameter,
        values,
        methods=methods,
        restarts=args.restarts,
        workers=args.workers,
        restart_workers=args.restart_workers,
        screen_workers=args.screen_workers,
        restart_batch_size=_restart_batch_size(args),
    )
    fmt = _SWEEP_FORMATS[args.parameter]
    print(format_regret_table(result, f"{args.dataset.upper()} — sweep over {args.parameter}", fmt))
    print()
    print(format_runtime_table(result, "Runtime", fmt))
    if obs_active:
        _obs_finish(args)
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in ("nyc", "sg"):
        scale = BENCH_SCALE[name]
        city = generate_city(
            name, n_billboards=scale[0], n_trajectories=scale[1], seed=args.seed
        )
        stats = summarize(city.trajectories)
        print(stats.as_table5_row(city.name, len(city.billboards)))
    return 0


def _cmd_example1(args: argparse.Namespace) -> int:
    instance = example1_instance()
    for label, builder in (("Strategy 1", example1_strategy1), ("Strategy 2", example1_strategy2)):
        allocation = builder(instance)
        print(f"{label}: regret={allocation.total_regret():.2f}")
        for advertiser in instance.advertisers:
            i = advertiser.advertiser_id
            achieved = allocation.influence(i)
            satisfied = "Y" if achieved >= advertiser.demand else "N"
            print(
                f"  {advertiser.name}: S={sorted(allocation.billboards_of(i))} "
                f"satisfy={satisfied} I(S)-I={achieved - advertiser.demand}"
            )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.export import sweep_to_csv
    from repro.experiments.figures import run_figure

    scale = None
    if args.billboards is not None or args.trajectories is not None:
        if args.billboards is None or args.trajectories is None:
            raise SystemExit("--billboards and --trajectories must be given together")
        scale = (args.billboards, args.trajectories)
    result, table = run_figure(
        args.figure_id, seed=args.seed, restarts=args.restarts, scale=scale
    )
    print(table)
    if args.csv:
        path = sweep_to_csv(result, args.csv)
        print(f"\nwrote {path}")
    return 0


def _cmd_quotes(args: argparse.Namespace) -> int:
    """Stream quotes through an :class:`OnlineHost` and print the verdicts.

    Builds the scenario's generated advertisers, accepts the first
    ``--book-size`` into a standing book, then prices the held-out rest as a
    proposal stream.  With ``--accept-attractive`` each quote whose repaired
    regret does not grow is committed through its token, so later quotes
    price against the grown book — the incremental engine's journal makes
    each of these a warm repair rather than a from-scratch re-solve.
    """
    from repro.market.online import OnlineHost

    scenario = _scenario_from(args)
    instance = scenario.build_instance()
    if instance.num_advertisers <= args.book_size:
        raise SystemExit(
            f"scenario generates {instance.num_advertisers} advertisers; "
            f"need > --book-size {args.book_size} to leave a proposal stream"
        )
    obs_active = _obs_begin(args)
    host = OnlineHost(
        instance.coverage,
        gamma=scenario.gamma,
        repair_sweeps=args.sweeps,
        pricing=args.pricing,
    )
    for advertiser in instance.advertisers[: args.book_size]:
        host.accept(advertiser.demand, advertiser.payment, name=advertiser.name)
    print(
        f"book: {args.book_size} proposals accepted "
        f"(pricing={host.pricing}), regret={host.total_regret():.1f}"
    )
    from repro.utils.timing import Stopwatch

    accepted = 0
    watch = Stopwatch()
    watch.start()
    for advertiser in instance.advertisers[args.book_size :]:
        quote = host.quote(
            advertiser.demand, advertiser.payment, name=advertiser.name
        )
        committed = False
        if args.accept_attractive and quote.attractive:
            host.commit(quote)
            committed = True
            accepted += 1
        print(
            f"  {quote.advertiser_name or f'#{advertiser.advertiser_id}':<8} "
            f"demand={quote.demand:>8} payment={quote.payment:>12.1f} "
            f"dregret={quote.regret_delta:>+12.1f} "
            f"satisfy={'Y' if quote.would_satisfy else 'N'} "
            f"{'ACCEPTED' if committed else 'quoted'}"
        )
    elapsed = watch.stop()
    streamed = instance.num_advertisers - args.book_size
    print(
        f"stream: {streamed} quotes in {elapsed:.2f}s "
        f"({streamed / elapsed:.0f} quotes/s), {accepted} accepted, "
        f"final regret={host.total_regret():.1f}"
    )
    if obs_active:
        _obs_finish(args)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    if args.validate:
        import json

        from repro.lint.findings import findings_payload, problems_to_findings

        data = json.loads(open(args.path).read())
        problems = obs.validate_chrome_trace(data)
        findings = problems_to_findings("trace-schema", args.path, problems)
        if getattr(args, "as_json", False):
            # Same findings schema as `repro lint --json`, so one consumer
            # reads both checkers.
            print(json.dumps(findings_payload("repro-obs-validate", findings), indent=2))
            return 1 if findings else 0
        if findings:
            for finding in findings:
                print(f"invalid: {finding.message}", file=sys.stderr)
            return 1
        print(f"{args.path}: valid Chrome trace "
              f"({len(data.get('traceEvents', []))} events)")
    print(obs.render_report(args.path))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mroam",
        description="Reproduction of 'Minimizing the Regret of an Influence Provider'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cell = sub.add_parser("cell", help="run all methods on one experiment cell")
    _add_scenario_arguments(cell)
    cell.set_defaults(func=_cmd_cell)

    sweep_parser = sub.add_parser("sweep", help="sweep one parameter (a paper figure)")
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--parameter", choices=tuple(_SWEEP_VALUES), default="alpha"
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    datasets = sub.add_parser("datasets", help="print Table 5 dataset statistics")
    datasets.add_argument("--seed", type=int, default=7)
    datasets.set_defaults(func=_cmd_datasets)

    example = sub.add_parser("example1", help="replay the Section 1 worked example")
    example.set_defaults(func=_cmd_example1)

    figure = sub.add_parser("figure", help="regenerate one paper figure by id")
    figure.add_argument("figure_id", help="e.g. fig4 (see repro.experiments.figures)")
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument("--restarts", type=int, default=2)
    figure.add_argument("--billboards", type=int, default=None)
    figure.add_argument("--trajectories", type=int, default=None)
    figure.add_argument("--csv", default=None, help="also export the sweep to this CSV path")
    figure.set_defaults(func=_cmd_figure)

    quotes = sub.add_parser(
        "quotes",
        help="stream proposal quotes through the online host (DESIGN.md §15)",
    )
    quotes.add_argument("--dataset", choices=("nyc", "sg"), default="nyc")
    quotes.add_argument("--billboards", type=int, default=None, help="inventory size")
    quotes.add_argument("--trajectories", type=int, default=None, help="corpus size")
    quotes.add_argument("--alpha", type=float, default=1.0, help="demand-supply ratio")
    quotes.add_argument("--p-avg", type=float, default=0.05, help="avg individual demand ratio")
    quotes.add_argument("--gamma", type=float, default=0.5, help="unsatisfied penalty ratio")
    quotes.add_argument("--lambda-m", type=float, default=100.0, help="influence radius (m)")
    quotes.add_argument("--seed", type=int, default=7)
    quotes.add_argument(
        "--book-size",
        type=int,
        default=8,
        help="generated advertisers accepted as the standing book; the rest "
        "become the quoted proposal stream",
    )
    quotes.add_argument(
        "--pricing",
        choices=("incremental", "full"),
        default=None,
        help="quote-pricing engine (default: $REPRO_QUOTE_PRICING, then "
        "incremental); both return bit-identical quotes",
    )
    quotes.add_argument(
        "--sweeps", type=int, default=2, help="bounded-repair BLS sweeps per quote"
    )
    quotes.add_argument(
        "--accept-attractive",
        action="store_true",
        help="commit each quote whose repaired regret does not grow, so the "
        "book grows as the stream is priced",
    )
    quotes.add_argument(
        "--obs-out",
        default=None,
        metavar="PATH",
        help="write the observability run log (quote.price spans, journal "
        f"counters) to this JSONL file; ${obs.OBS_OUT_ENV} is the default",
    )
    quotes.add_argument(
        "--obs-summary",
        action="store_true",
        help="print a human-readable metrics summary after the run",
    )
    quotes.set_defaults(func=_cmd_quotes)

    obs_parser = sub.add_parser("obs", help="observability artifacts")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="bottleneck report over a trace JSON, run-log JSONL, or ledger",
    )
    report.add_argument("path", help="trace/run-log/ledger file to analyze")
    report.add_argument(
        "--validate",
        action="store_true",
        help="schema-check a Chrome trace first; exit 1 on violations",
    )
    report.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="with --validate, emit the shared findings JSON schema "
        "(same shape as `repro lint --json`)",
    )
    report.set_defaults(func=_cmd_obs_report)

    lint_parser = sub.add_parser(
        "lint",
        help="invariant linter: determinism, shm lifecycle, obs naming, "
        "env-knob registry, kernel contracts (DESIGN.md §14)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
