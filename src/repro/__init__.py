"""repro — a reproduction of "Minimizing the Regret of an Influence Provider"
(Zhang, Li, Bao, Zheng, Jagadish — SIGMOD 2021).

The package implements the MROAM problem end to end:

* the coverage influence model over billboards and user trajectories
  (:mod:`repro.billboard`, :mod:`repro.trajectory`, :mod:`repro.spatial`);
* the regret objective and incremental allocation state (:mod:`repro.core`);
* the paper's four methods — G-Order, G-Global, ALS, BLS
  (:mod:`repro.algorithms`);
* the NP-hardness reduction and the dual-objective analysis
  (:mod:`repro.theory`);
* synthetic NYC/SG dataset simulators (:mod:`repro.datasets`), the market
  workload model (:mod:`repro.market`), and the experiment harness that
  regenerates every table and figure (:mod:`repro.experiments`).

Quickstart::

    from repro import MROAMInstance, make_solver
    from repro.market import Scenario

    instance = Scenario(dataset="nyc", n_billboards=300,
                        n_trajectories=5000, seed=1).build_instance()
    result = make_solver("bls", seed=1).solve(instance)
    print(result.total_regret, result.breakdown)
"""

from repro.algorithms import (
    BudgetEffectiveGreedy,
    ExhaustiveSolver,
    RandomizedLocalSearch,
    Solver,
    SolverResult,
    SynchronousGreedy,
    make_solver,
)
from repro.billboard import Billboard, BillboardDB, CoverageIndex
from repro.core import (
    Advertiser,
    Allocation,
    MROAMInstance,
    RegretBreakdown,
    dual_objective,
    regret,
)
from repro.market import Scenario
from repro.trajectory import Trajectory, TrajectoryDB

__version__ = "1.0.0"

__all__ = [
    "Advertiser",
    "Allocation",
    "Billboard",
    "BillboardDB",
    "BudgetEffectiveGreedy",
    "CoverageIndex",
    "ExhaustiveSolver",
    "MROAMInstance",
    "RandomizedLocalSearch",
    "RegretBreakdown",
    "Scenario",
    "Solver",
    "SolverResult",
    "SynchronousGreedy",
    "Trajectory",
    "TrajectoryDB",
    "dual_objective",
    "make_solver",
    "regret",
]
