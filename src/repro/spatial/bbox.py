"""Axis-aligned bounding boxes in the local metric projection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.geometry import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]`` in metres."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        """Tight bounding box of an ``(n, 2)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        if len(points) == 0:
            raise ValueError("cannot build a bounding box from zero points")
        return cls(
            float(points[:, 0].min()),
            float(points[:, 1].min()),
            float(points[:, 0].max()),
            float(points[:, 1].max()),
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` metres on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (identity if already inside)."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )
