"""A uniform grid index for fixed-radius neighbour queries.

The coverage computation joins millions of trajectory points against
thousands of billboard locations within a radius ``λ``.  A uniform grid with
cell size equal to the query radius gives the classic 3×3-cell candidate
neighbourhood, which is both simple and fast for the near-uniform point
densities of city-scale data.

The index stores its points bucketed by cell in CSR layout (one sorted
permutation plus bucket offsets), so a *batch* of query points is answered
with one vectorized bucket join per neighbourhood offset instead of a
Python-level loop over queries — see :meth:`GridIndex.join_radius`.
"""

from __future__ import annotations

import numpy as np

from repro import obs


def _expand_slices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for all ``i``.

    The standard repeat/cumsum trick: one vectorized pass, no Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)


class GridIndex:
    """A uniform grid over a static set of 2-D points.

    Parameters
    ----------
    points:
        ``(n, 2)`` float array of indexed points (e.g. billboard locations).
    cell_size:
        Grid cell edge length in metres.  For radius-``r`` queries a cell
        size of ``r`` limits candidates to the 3×3 neighbourhood of the query
        point's cell.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")

        self.points = points
        self.cell_size = float(cell_size)
        if len(points) == 0:
            self._origin = np.zeros(2)
            self._dims = (0, 0)
            self._order = np.empty(0, dtype=np.int64)
            self._cell_ids = np.empty(0, dtype=np.int64)
            self._bucket_offsets = np.zeros(1, dtype=np.int64)
            return

        self._origin = points.min(axis=0)
        cols = np.floor((points - self._origin) / self.cell_size).astype(np.int64)
        self._dims = (int(cols[:, 0].max()) + 1, int(cols[:, 1].max()) + 1)
        linear = cols[:, 0] * self._dims[1] + cols[:, 1]
        order = np.argsort(linear, kind="stable")
        cell_ids, starts = np.unique(linear[order], return_index=True)
        self._order = order.astype(np.int64)
        self._cell_ids = cell_ids
        self._bucket_offsets = np.append(starts, len(points)).astype(np.int64)

    def __len__(self) -> int:
        return len(self.points)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (
            int(np.floor((x - self._origin[0]) / self.cell_size)),
            int(np.floor((y - self._origin[1]) / self.cell_size)),
        )

    def _lookup_buckets(self, linear: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bucket slots of the given linear cell ids, and a found mask."""
        positions = np.searchsorted(self._cell_ids, linear)
        positions = np.minimum(positions, len(self._cell_ids) - 1)
        return positions, self._cell_ids[positions] == linear

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of ``(x, y)``.

        Returns a sorted ``int64`` array of point indices.
        """
        candidates = self._candidates(x, y, radius)
        if len(candidates) == 0:
            return candidates
        diff = self.points[candidates] - np.array([x, y])
        mask = np.sum(diff * diff, axis=1) <= radius * radius
        return np.sort(candidates[mask])

    def query_radius_bulk(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of *any* query point.

        ``queries`` is ``(m, 2)``.  Returns a sorted, deduplicated ``int64``
        array — exactly the "set of billboards met by this trajectory" the
        influence model needs.  Fully vectorized via :meth:`join_radius`.
        """
        _, point_indices = self.join_radius(queries, radius)
        return np.unique(point_indices)

    def join_radius(self, queries: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """All ``(query_index, point_index)`` pairs within ``radius``.

        The batched cell-bucket join: every query's neighbourhood cells are
        resolved against the CSR buckets with one ``searchsorted`` per
        neighbourhood offset, candidate pairs are gathered with a vectorized
        slice expansion, and one distance mask per offset batch keeps peak
        memory at a single neighbourhood layer.  Each qualifying pair appears
        exactly once (neighbourhood cells are distinct); pair order is
        deterministic but unspecified.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ValueError(f"queries must have shape (m, 2), got {queries.shape}")
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        if len(queries) == 0 or len(self.points) == 0:
            return empty

        reach = max(int(np.ceil(radius / self.cell_size)), 1)
        nx, ny = self._dims
        cells = np.floor((queries - self._origin) / self.cell_size).astype(np.int64)
        radius_sq = radius * radius

        query_hits: list[np.ndarray] = []
        point_hits: list[np.ndarray] = []
        candidate_pairs = 0
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                tx = cells[:, 0] + dx
                ty = cells[:, 1] + dy
                in_grid = (tx >= 0) & (tx < nx) & (ty >= 0) & (ty < ny)
                if not in_grid.any():
                    continue
                query_ids = np.nonzero(in_grid)[0]
                slots, found = self._lookup_buckets(tx[in_grid] * ny + ty[in_grid])
                if not found.any():
                    continue
                query_ids = query_ids[found]
                slots = slots[found]
                starts = self._bucket_offsets[slots]
                counts = self._bucket_offsets[slots + 1] - starts
                point_ids = self._order[_expand_slices(starts, counts)]
                pair_queries = np.repeat(query_ids, counts)
                candidate_pairs += len(pair_queries)
                diff = self.points[point_ids] - queries[pair_queries]
                mask = np.sum(diff * diff, axis=1) <= radius_sq
                if mask.any():
                    query_hits.append(pair_queries[mask])
                    point_hits.append(point_ids[mask])
        matched_pairs = sum(len(hits) for hits in query_hits)
        obs.counter_add("grid.join.candidate_pairs", candidate_pairs)
        obs.counter_add("grid.join.matched_pairs", matched_pairs)
        if not query_hits:
            return empty
        return np.concatenate(query_hits), np.concatenate(point_hits)

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """All indexed points in cells overlapping the query disc."""
        if len(self.points) == 0:
            return np.empty(0, dtype=np.int64)
        reach = max(int(np.ceil(radius / self.cell_size)), 1)
        nx, ny = self._dims
        cx, cy = self._cell_of(x, y)
        x_lo, x_hi = max(cx - reach, 0), min(cx + reach, nx - 1)
        y_lo, y_hi = max(cy - reach, 0), min(cy + reach, ny - 1)
        if x_lo > x_hi or y_lo > y_hi:
            return np.empty(0, dtype=np.int64)
        grid_x = np.arange(x_lo, x_hi + 1, dtype=np.int64)
        grid_y = np.arange(y_lo, y_hi + 1, dtype=np.int64)
        linear = (grid_x[:, None] * ny + grid_y[None, :]).ravel()
        slots, found = self._lookup_buckets(linear)
        slots = slots[found]
        if len(slots) == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._bucket_offsets[slots]
        counts = self._bucket_offsets[slots + 1] - starts
        return self._order[_expand_slices(starts, counts)]
