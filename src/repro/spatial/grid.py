"""A uniform grid index for fixed-radius neighbour queries.

The coverage computation joins millions of trajectory points against
thousands of billboard locations within a radius ``λ``.  A uniform grid with
cell size equal to the query radius gives the classic 3×3-cell candidate
neighbourhood, which is both simple and fast for the near-uniform point
densities of city-scale data.
"""

from __future__ import annotations

import numpy as np


class GridIndex:
    """A uniform grid over a static set of 2-D points.

    Parameters
    ----------
    points:
        ``(n, 2)`` float array of indexed points (e.g. billboard locations).
    cell_size:
        Grid cell edge length in metres.  For radius-``r`` queries a cell
        size of ``r`` limits candidates to the 3×3 neighbourhood of the query
        point's cell.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")

        self.points = points
        self.cell_size = float(cell_size)
        if len(points) == 0:
            self._origin = np.zeros(2)
            self._cells: dict[tuple[int, int], np.ndarray] = {}
            return

        self._origin = points.min(axis=0)
        cols = np.floor((points - self._origin) / self.cell_size).astype(np.int64)
        self._cells = {}
        order = np.lexsort((cols[:, 1], cols[:, 0]))
        sorted_cols = cols[order]
        boundaries = np.nonzero(np.any(np.diff(sorted_cols, axis=0) != 0, axis=1))[0] + 1
        for chunk in np.split(order, boundaries):
            key = (int(cols[chunk[0], 0]), int(cols[chunk[0], 1]))
            self._cells[key] = chunk

    def __len__(self) -> int:
        return len(self.points)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (
            int(np.floor((x - self._origin[0]) / self.cell_size)),
            int(np.floor((y - self._origin[1]) / self.cell_size)),
        )

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of ``(x, y)``.

        Returns a sorted ``int64`` array of point indices.
        """
        candidates = self._candidates(x, y, radius)
        if len(candidates) == 0:
            return candidates
        diff = self.points[candidates] - np.array([x, y])
        mask = np.sum(diff * diff, axis=1) <= radius * radius
        return np.sort(candidates[mask])

    def query_radius_bulk(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Indices of indexed points within ``radius`` of *any* query point.

        ``queries`` is ``(m, 2)``.  Returns a sorted, deduplicated ``int64``
        array — exactly the "set of billboards met by this trajectory" the
        influence model needs.
        """
        queries = np.asarray(queries, dtype=np.float64)
        hits: list[np.ndarray] = []
        for x, y in queries:
            candidates = self._candidates(float(x), float(y), radius)
            if len(candidates) == 0:
                continue
            diff = self.points[candidates] - np.array([x, y])
            mask = np.sum(diff * diff, axis=1) <= radius * radius
            if mask.any():
                hits.append(candidates[mask])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """All indexed points in cells overlapping the query disc."""
        if not self._cells:
            return np.empty(0, dtype=np.int64)
        reach = max(int(np.ceil(radius / self.cell_size)), 1)
        cx, cy = self._cell_of(x, y)
        buckets = [
            self._cells[key]
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (key := (cx + dx, cy + dy)) in self._cells
        ]
        if not buckets:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(buckets)
