"""Planar geometry primitives.

Coordinates are in metres in a local projection.  ``Point`` is an immutable
value type; bulk operations take ``(n, 2)`` float arrays to stay fast for the
millions-of-points scale of the trajectory datasets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Point:
    """A planar point in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=np.float64)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def pairwise_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Distance matrix between ``points`` ``(n, 2)`` and ``centers`` ``(m, 2)``.

    Returns an ``(n, m)`` array.  Intended for small/medium inputs (tests and
    brute-force oracles); the grid index handles the large radius joins.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    diff = points[:, None, :] - centers[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def point_to_segment_distance(
    point: np.ndarray, start: np.ndarray, end: np.ndarray
) -> float:
    """Euclidean distance from ``point`` to the segment ``start→end``."""
    point = np.asarray(point, dtype=np.float64)
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    direction = end - start
    squared = float(direction @ direction)
    if squared == 0.0:
        return float(np.linalg.norm(point - start))
    t = float(np.clip((point - start) @ direction / squared, 0.0, 1.0))
    return float(np.linalg.norm(point - (start + t * direction)))


def min_distance_to_polyline(point: np.ndarray, polyline: np.ndarray) -> float:
    """Minimum distance from ``point`` to a polyline's segments (vectorized).

    For a single-point polyline this is the plain point distance.  This is
    the exact geometric "meet" test the segment-accurate coverage mode uses:
    a trajectory passes a billboard if its *path* comes within λ, even when
    no recorded sample does.
    """
    point = np.asarray(point, dtype=np.float64)
    polyline = np.asarray(polyline, dtype=np.float64)
    if len(polyline) == 0:
        raise ValueError("polyline must contain at least one point")
    if len(polyline) == 1:
        return float(np.linalg.norm(point - polyline[0]))

    starts = polyline[:-1]
    directions = polyline[1:] - starts
    squared = np.einsum("ij,ij->i", directions, directions)
    safe = np.where(squared == 0.0, 1.0, squared)
    t = np.clip(np.einsum("ij,ij->i", point - starts, directions) / safe, 0.0, 1.0)
    t = np.where(squared == 0.0, 0.0, t)
    closest = starts + t[:, None] * directions
    return float(np.sqrt(np.min(np.sum((closest - point) ** 2, axis=1))))


def path_length(points: np.ndarray) -> float:
    """Total polyline length of an ``(n, 2)`` array of waypoints, in metres."""
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 2:
        return 0.0
    deltas = np.diff(points, axis=0)
    return float(np.sum(np.sqrt(np.sum(deltas * deltas, axis=1))))


def interpolate_path(waypoints: np.ndarray, spacing: float) -> np.ndarray:
    """Resample a polyline so consecutive samples are ~``spacing`` metres apart.

    The first and last waypoints are always included.  This turns sparse
    route waypoints into the dense GPS-ping-like point sequences the influence
    model expects (a trajectory "meets" a billboard through its sample points).
    """
    waypoints = np.asarray(waypoints, dtype=np.float64)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    if len(waypoints) == 0:
        return waypoints.reshape(0, 2)
    if len(waypoints) == 1:
        return waypoints.copy()

    segments = np.diff(waypoints, axis=0)
    seg_lengths = np.sqrt(np.sum(segments * segments, axis=1))
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    total = cumulative[-1]
    if total == 0.0:
        return waypoints[:1].copy()

    n_samples = max(int(math.ceil(total / spacing)) + 1, 2)
    targets = np.linspace(0.0, total, n_samples)
    xs = np.interp(targets, cumulative, waypoints[:, 0])
    ys = np.interp(targets, cumulative, waypoints[:, 1])
    return np.column_stack([xs, ys])
