"""Spatial substrate: geometry primitives, bounding boxes, and a grid index.

The paper's influence model is geometric: a billboard influences a trajectory
iff some trajectory point lies within ``λ`` metres of the billboard.  This
subpackage provides the planar geometry (we work in a local metric projection,
so Euclidean distance is in metres) and the fixed-radius neighbour queries the
coverage computation needs.
"""

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import (
    Point,
    distance,
    interpolate_path,
    pairwise_distances,
    path_length,
)
from repro.spatial.grid import GridIndex

__all__ = [
    "BoundingBox",
    "GridIndex",
    "Point",
    "distance",
    "interpolate_path",
    "pairwise_distances",
    "path_length",
]
