"""A light road-network substrate for realistic trip routing.

The default NYC generator routes trips along L-shaped Manhattan paths; this
module provides the next level of realism: an explicit street graph with
shortest-path routing (networkx), so trips bend around the network the way
probe-vehicle trajectories do.  Plug its :meth:`RoadNetwork.router` into
:func:`repro.trajectory.generators.trips_between`.
"""

from __future__ import annotations

import numpy as np

try:
    import networkx as nx
except ImportError as error:  # pragma: no cover - networkx ships in the env
    raise ImportError("repro.spatial.roadnet requires networkx") from error

from repro.spatial.grid import GridIndex
from repro.utils.rng import as_generator


class RoadNetwork:
    """A planar street graph with shortest-path routing.

    Nodes are intersections with positions in metres; edges carry their
    Euclidean ``length`` as the routing weight.
    """

    def __init__(self, graph: "nx.Graph", positions: np.ndarray) -> None:
        if graph.number_of_nodes() != len(positions):
            raise ValueError(
                f"graph has {graph.number_of_nodes()} nodes but "
                f"{len(positions)} positions were given"
            )
        if graph.number_of_nodes() == 0:
            raise ValueError("a road network needs at least one intersection")
        if not nx.is_connected(graph):
            raise ValueError("the street graph must be connected")
        self.graph = graph
        self.positions = np.asarray(positions, dtype=np.float64)
        # Snap queries use a grid over intersections; cell ≈ median edge len.
        lengths = [data["length"] for _, _, data in graph.edges(data=True)]
        cell = float(np.median(lengths)) if lengths else 100.0
        self._snap_index = GridIndex(self.positions, cell_size=max(cell, 1.0))

    @classmethod
    def grid(
        cls,
        cols: int,
        rows: int,
        spacing: float = 250.0,
        drop_fraction: float = 0.0,
        seed=None,
    ) -> "RoadNetwork":
        """A ``cols × rows`` Manhattan street grid.

        ``drop_fraction`` randomly removes that share of street segments
        (keeping the graph connected) to mimic parks, rivers and one-way
        detours.
        """
        if cols < 2 or rows < 2:
            raise ValueError("grid needs at least 2x2 intersections")
        if not 0.0 <= drop_fraction < 1.0:
            raise ValueError(f"drop_fraction must be in [0, 1), got {drop_fraction}")

        graph = nx.Graph()
        positions = np.array(
            [[c * spacing, r * spacing] for r in range(rows) for c in range(cols)]
        )
        node_of = lambda c, r: r * cols + c  # noqa: E731 - tiny local helper
        graph.add_nodes_from(range(cols * rows))
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    graph.add_edge(node_of(c, r), node_of(c + 1, r), length=spacing)
                if r + 1 < rows:
                    graph.add_edge(node_of(c, r), node_of(c, r + 1), length=spacing)

        if drop_fraction > 0.0:
            rng = as_generator(seed)
            edges = list(graph.edges())
            rng.shuffle(edges)
            to_drop = int(drop_fraction * len(edges))
            for edge in edges[:to_drop]:
                graph.remove_edge(*edge)
                if not nx.is_connected(graph):
                    graph.add_edge(*edge, length=spacing)  # keep connectivity
        return cls(graph, positions)

    def nearest_node(self, point: np.ndarray) -> int:
        """Index of the intersection nearest to ``point``."""
        point = np.asarray(point, dtype=np.float64)
        radius = self._snap_index.cell_size
        while True:
            hits = self._snap_index.query_radius(float(point[0]), float(point[1]), radius)
            if len(hits):
                distances = np.linalg.norm(self.positions[hits] - point, axis=1)
                return int(hits[int(np.argmin(distances))])
            radius *= 2.0

    def route(self, origin: np.ndarray, destination: np.ndarray) -> np.ndarray:
        """Shortest-path waypoints from ``origin`` to ``destination``.

        Endpoints are snapped to their nearest intersections; the returned
        polyline starts at the raw origin and ends at the raw destination
        (the off-network stubs a real trip has).
        """
        origin = np.asarray(origin, dtype=np.float64)
        destination = np.asarray(destination, dtype=np.float64)
        source = self.nearest_node(origin)
        target = self.nearest_node(destination)
        path = nx.shortest_path(self.graph, source, target, weight="length")
        waypoints = [origin] + [self.positions[node] for node in path] + [destination]
        return np.vstack(waypoints)

    def router(self):
        """Adapter for :func:`repro.trajectory.generators.trips_between`."""
        return self.route

    def total_street_length(self) -> float:
        """Sum of all street-segment lengths, metres."""
        return float(
            sum(data["length"] for _, _, data in self.graph.edges(data=True))
        )
