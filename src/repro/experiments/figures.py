"""Declarative registry of the paper's figures.

Maps figure ids (``"fig2"`` … ``"fig12"``) to the sweep that regenerates
them, so the CLI (``mroam figure fig4``) and notebooks can reproduce any
figure without knowing the parameterization by heart.  The benchmark suite
under ``benchmarks/`` remains the canonical (asserted) reproduction; this
registry is the convenience interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import (
    ALPHA_VALUES,
    BENCH_RESTARTS,
    GAMMA_VALUES,
    LAMBDA_VALUES,
    P_AVG_VALUES,
    default_scenario,
)
from repro.experiments.harness import ExperimentResult, sweep
from repro.experiments.reporting import format_regret_table, format_runtime_table


@dataclass(frozen=True)
class FigureSpec:
    """One figure's parameterization."""

    figure_id: str
    title: str
    dataset: str
    parameter: str
    values: tuple
    value_format: str
    overrides: dict
    runtime_table: bool = False  # Figures 8-9 report runtimes


FIGURES: dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec("fig2", "Figure 2: regret vs alpha (NYC, p=1%)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {"p_avg": 0.01}),
        FigureSpec("fig3", "Figure 3: regret vs alpha (NYC, p=2%)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {"p_avg": 0.02}),
        FigureSpec("fig4", "Figure 4: regret vs alpha (NYC, p=5%)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {"p_avg": 0.05}),
        FigureSpec("fig5", "Figure 5: regret vs alpha (NYC, p=10%)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {"p_avg": 0.10}),
        FigureSpec("fig6", "Figure 6: regret vs alpha (NYC, p=20%)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {"p_avg": 0.20}),
        FigureSpec("fig7", "Figure 7: regret vs alpha (SG, default)", "sg", "alpha",
                   ALPHA_VALUES, "{:.0%}", {}),
        FigureSpec("fig8", "Figure 8: runtime vs alpha (NYC)", "nyc", "alpha",
                   ALPHA_VALUES, "{:.0%}", {}, runtime_table=True),
        FigureSpec("fig9", "Figure 9: runtime vs p (NYC)", "nyc", "p_avg",
                   P_AVG_VALUES, "{:.0%}", {}, runtime_table=True),
        FigureSpec("fig10", "Figure 10: regret vs gamma (NYC)", "nyc", "gamma",
                   GAMMA_VALUES, "{:.2f}", {}),
        FigureSpec("fig11", "Figure 11: regret vs gamma (SG)", "sg", "gamma",
                   GAMMA_VALUES, "{:.2f}", {}),
        FigureSpec("fig12", "Figure 12: regret vs lambda (NYC)", "nyc", "lambda_m",
                   LAMBDA_VALUES, "{:.0f}", {}),
    )
}


def run_figure(
    figure_id: str,
    seed: int = 7,
    restarts: int = BENCH_RESTARTS,
    scale: tuple[int, int] | None = None,
) -> tuple[ExperimentResult, str]:
    """Regenerate one figure; returns ``(sweep result, formatted table)``.

    Parameters
    ----------
    figure_id:
        A key of :data:`FIGURES` (case-insensitive, e.g. ``"fig4"``).
    seed:
        City and contract seed.
    restarts:
        ALS/BLS restart budget.
    scale:
        Optional ``(n_billboards, n_trajectories)`` override for quick runs.
    """
    key = figure_id.lower()
    if key not in FIGURES:
        raise ValueError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        )
    spec = FIGURES[key]
    scenario = default_scenario(spec.dataset, seed=seed)
    if spec.overrides:
        scenario = scenario.with_params(**spec.overrides)
    if scale is not None:
        scenario = scenario.with_params(
            n_billboards=scale[0], n_trajectories=scale[1]
        )
    result = sweep(scenario, spec.parameter, spec.values, restarts=restarts)
    if spec.runtime_table:
        table = format_runtime_table(result, spec.title, spec.value_format)
    else:
        table = format_regret_table(result, spec.title, spec.value_format)
    return result, table
