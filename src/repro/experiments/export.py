"""CSV export of experiment results.

The benchmarks print text tables; downstream plotting (or a spreadsheet)
wants flat CSV.  One row per (sweep value, method) with the full regret
decomposition and runtime.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.harness import ExperimentResult

SWEEP_COLUMNS = (
    "parameter",
    "value",
    "method",
    "total_regret",
    "unsatisfied_penalty",
    "excessive_influence",
    "satisfied_advertisers",
    "num_advertisers",
    "runtime_s",
)


def sweep_to_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write one sweep's metrics to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SWEEP_COLUMNS)
        for value in result.values:
            for method, metrics in result.cells[value].items():
                writer.writerow(
                    [
                        result.parameter,
                        value,
                        method,
                        f"{metrics.total_regret:.6f}",
                        f"{metrics.unsatisfied_penalty:.6f}",
                        f"{metrics.excessive_influence:.6f}",
                        metrics.satisfied_advertisers,
                        metrics.num_advertisers,
                        f"{metrics.runtime_s:.6f}",
                    ]
                )
    return path


def load_sweep_csv(path: str | Path) -> list[dict]:
    """Read a sweep CSV back as a list of typed row dicts."""
    rows = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            rows.append(
                {
                    "parameter": row["parameter"],
                    "value": float(row["value"]),
                    "method": row["method"],
                    "total_regret": float(row["total_regret"]),
                    "unsatisfied_penalty": float(row["unsatisfied_penalty"]),
                    "excessive_influence": float(row["excessive_influence"]),
                    "satisfied_advertisers": int(row["satisfied_advertisers"]),
                    "num_advertisers": int(row["num_advertisers"]),
                    "runtime_s": float(row["runtime_s"]),
                }
            )
    return rows
