"""Experiment harness reproducing the paper's evaluation (Section 7).

* :mod:`repro.experiments.configs` — the Table 6 parameter grid and scaled
  bench defaults.
* :mod:`repro.experiments.harness` — runs algorithm × parameter sweeps and
  collects regret decompositions and runtimes.
* :mod:`repro.experiments.metrics` — per-run effectiveness metrics.
* :mod:`repro.experiments.reporting` — text renditions of the paper's
  figures (stacked-bar tables, runtime series, distribution curves).
"""

from repro.experiments.configs import (
    ALPHA_VALUES,
    BENCH_SCALE,
    GAMMA_VALUES,
    LAMBDA_VALUES,
    P_AVG_VALUES,
    default_scenario,
)
from repro.experiments.harness import ExperimentResult, run_cell, sweep
from repro.experiments.metrics import CellMetrics
from repro.experiments.reporting import (
    format_distribution_table,
    format_regret_table,
    format_runtime_table,
)

__all__ = [
    "ALPHA_VALUES",
    "BENCH_SCALE",
    "CellMetrics",
    "ExperimentResult",
    "GAMMA_VALUES",
    "LAMBDA_VALUES",
    "P_AVG_VALUES",
    "default_scenario",
    "format_distribution_table",
    "format_regret_table",
    "format_runtime_table",
    "run_cell",
    "sweep",
]
