"""Text renditions of the paper's figures.

The paper draws stacked bars (total regret split into excessive influence
and unsatisfied penalty, with the two percentages printed on top of each
bar) and line charts (runtimes, distributions).  These formatters print the
same rows/series as plain-text tables so a terminal run of a bench shows
the same information as the corresponding figure.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentResult

_METHOD_LABELS = {
    "g-order": "G-Order",
    "g-global": "G-Global",
    "als": "ALS",
    "bls": "BLS",
}


def _label(method: str) -> str:
    return _METHOD_LABELS.get(method, method)


def format_regret_table(
    result: ExperimentResult,
    title: str,
    value_format: str = "{:.0%}",
) -> str:
    """The stacked-bar figures as a table.

    One row per (sweep value, method): total regret plus the excessive /
    unsatisfied percentages that the paper prints above each bar.
    """
    lines = [title, "=" * len(title)]
    header = (
        f"{result.parameter:>10} | {'method':<9} | {'regret':>12} | "
        f"{'excess%':>8} | {'unsat%':>8} | {'satisfied':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for value in result.values:
        for method, metrics in result.cells[value].items():
            lines.append(
                f"{value_format.format(value):>10} | {_label(method):<9} | "
                f"{metrics.total_regret:>12.1f} | "
                f"{metrics.excessive_pct:>7.1f}% | "
                f"{metrics.unsatisfied_pct:>7.1f}% | "
                f"{metrics.satisfied_advertisers:>4}/{metrics.num_advertisers:<4}"
            )
    return "\n".join(lines)


def format_runtime_table(
    result: ExperimentResult,
    title: str,
    value_format: str = "{:.0%}",
) -> str:
    """The efficiency figures (8–9) as a table of wall-clock seconds."""
    methods = list(next(iter(result.cells.values())).keys())
    lines = [title, "=" * len(title)]
    header = f"{result.parameter:>10} | " + " | ".join(
        f"{_label(method):>10}" for method in methods
    )
    lines.append(header)
    lines.append("-" * len(header))
    for value in result.values:
        row = f"{value_format.format(value):>10} | " + " | ".join(
            f"{result.cells[value][method].runtime_s:>9.3f}s" for method in methods
        )
        lines.append(row)
    return "\n".join(lines)


def format_distribution_table(
    fractions: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str,
) -> str:
    """Figure 1-style distribution curves as a table.

    ``series`` maps a curve name (e.g. ``"NYC"``) to its values at each
    fraction of billboards selected.
    """
    names = list(series)
    lines = [title, "=" * len(title)]
    header = f"{'% selected':>10} | " + " | ".join(f"{name:>8}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    for row_index, fraction in enumerate(fractions):
        row = f"{fraction:>9.0%} | " + " | ".join(
            f"{series[name][row_index]:>8.3f}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)
