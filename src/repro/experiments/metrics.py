"""Per-cell effectiveness and efficiency metrics.

The paper reports, per (cell, algorithm): total regret as a stacked bar of
the *excessive influence* and *unsatisfied penalty* components (with their
percentages printed on top), plus satisfied-advertiser counts in the
discussion and wall-clock runtime in the efficiency study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SolverResult


@dataclass(frozen=True)
class CellMetrics:
    """Metrics of one algorithm on one experiment cell."""

    method: str
    total_regret: float
    unsatisfied_penalty: float
    excessive_influence: float
    satisfied_advertisers: int
    num_advertisers: int
    runtime_s: float

    @classmethod
    def from_result(cls, method: str, result: SolverResult) -> "CellMetrics":
        breakdown = result.breakdown
        return cls(
            method=method,
            total_regret=result.total_regret,
            unsatisfied_penalty=breakdown.unsatisfied_penalty,
            excessive_influence=breakdown.excessive_influence,
            satisfied_advertisers=result.satisfied_count,
            num_advertisers=result.allocation.instance.num_advertisers,
            runtime_s=result.runtime_s,
        )

    @property
    def unsatisfied_pct(self) -> float:
        """Percentage of total regret from the unsatisfied penalty."""
        if self.total_regret <= 0:
            return 0.0
        return 100.0 * self.unsatisfied_penalty / self.total_regret

    @property
    def excessive_pct(self) -> float:
        """Percentage of total regret from excessive influence."""
        if self.total_regret <= 0:
            return 0.0
        return 100.0 * self.excessive_influence / self.total_regret
