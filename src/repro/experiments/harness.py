"""The experiment runner.

``run_cell`` executes the paper's four methods on one scenario cell;
``sweep`` varies one parameter while holding the rest at the scenario's
values, reusing a single generated city across the sweep (so coverage is
recomputed only when λ changes, exactly as a real host's data would be).

Both accept ``workers=N`` to fan the (sweep value × method) task grid out
across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
process receives the city once (pool initializer), keeps its own per-λ
coverage cache across tasks, and — with ``REPRO_COVERAGE_CACHE`` set —
shares one on-disk coverage cache with every other worker.  Solvers are
deterministic given ``(instance, solver_seed)`` and tasks are reassembled in
sweep order, so the parallel path returns exactly the serial path's regret
metrics; only the measured wall-clock times differ.

When observability is enabled (see :mod:`repro.obs`), every
``(cell, method)`` execution runs inside a ``harness.cell`` span and each
worker ships a snapshot of its metrics registry back with the task result;
the parent merges snapshots in task-submission order, so counter totals for
deterministic per-task work (solver counters, influence dispatch) are equal
between ``workers=N`` and serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro import obs
from repro.algorithms.registry import PAPER_METHODS, make_solver
from repro.obs import ledger
from repro.core.problem import MROAMInstance
from repro.datasets.synthetic import CityDataset
from repro.experiments.configs import BENCH_RESTARTS
from repro.experiments.metrics import CellMetrics
from repro.market.scenario import Scenario


@dataclass
class ExperimentResult:
    """All metrics of one sweep: ``cells[param_value][method] -> CellMetrics``."""

    parameter: str
    values: list
    cells: dict = field(default_factory=dict)

    def metric(self, value, method: str) -> CellMetrics:
        return self.cells[value][method]

    def series(self, method: str, attribute: str = "total_regret") -> list[float]:
        """One method's metric across the sweep, in sweep order."""
        return [getattr(self.cells[value][method], attribute) for value in self.values]


def _solver_kwargs(
    method: str,
    restarts: int,
    restart_workers: int | None = None,
    screen_workers: int | None = None,
    restart_batch_size=None,
) -> dict:
    if method in ("als", "bls"):
        kwargs: dict = {"restarts": restarts}
        if restart_workers is not None:
            kwargs["restart_workers"] = restart_workers
        if screen_workers is not None and method == "bls":
            kwargs["screen_workers"] = screen_workers
        if restart_batch_size is not None:
            kwargs["restart_batch_size"] = restart_batch_size
        return kwargs
    return {}


def _run_method(
    method: str,
    instance: MROAMInstance,
    restarts: int,
    solver_seed: int,
    runtime_repeats: int,
    span_attrs: dict | None = None,
    restart_workers: int | None = None,
    screen_workers: int | None = None,
    restart_batch_size=None,
) -> CellMetrics:
    """One (instance, method) execution — the unit of parallel work."""
    with obs.span("harness.cell", method=method, **(span_attrs or {})):
        if obs.enabled():
            # One union query per cell: reports the reachable-audience
            # ceiling on the run log and exercises the bitmap kernel's
            # dispatch counter even on cells too sparse for the batch
            # passes to pick it.
            obs.gauge_set(
                "coverage.total_reachable",
                float(instance.coverage.total_reachable()),
            )
        solver = make_solver(
            method,
            seed=solver_seed,
            **_solver_kwargs(
                method, restarts, restart_workers, screen_workers, restart_batch_size
            ),
        )
        first = solver.solve(instance)
        metrics = CellMetrics.from_result(method, first)
        if runtime_repeats > 1:
            runtimes = [first.runtime_s]
            for _ in range(1, runtime_repeats):
                repeat_solver = make_solver(
                    method,
                    seed=solver_seed,
                    **_solver_kwargs(
                        method,
                        restarts,
                        restart_workers,
                        screen_workers,
                        restart_batch_size,
                    ),
                )
                runtimes.append(repeat_solver.solve(instance).runtime_s)
            metrics = replace(metrics, runtime_s=sum(runtimes) / len(runtimes))
    if ledger.enabled():
        ledger.record_run(
            "harness.cell",
            instance=instance,
            method=method,
            restarts=int(restarts),
            restart_workers=restart_workers,
            screen_workers=screen_workers,
            regret=float(metrics.total_regret),
            wall_s=float(metrics.runtime_s),
            **(span_attrs or {}),
        )
    return metrics


# Worker-process state, populated once per process by the pool initializer so
# the city (and its coverage caches) ship to each worker exactly once.
_WORKER_STATE: dict = {}


def _worker_init(
    city: CityDataset,
    base_lambda: float,
    obs_enabled: bool = False,
    coverage_spec=None,
    trace_enabled: bool = False,
) -> None:
    from repro.parallel.pool import _freeze_worker_heap, _sync_worker_obs

    _WORKER_STATE["city"] = city
    _sync_worker_obs(obs_enabled, trace_enabled)
    # With a fork start method the child inherits the parent's registry
    # contents; clear them so per-task snapshots hold only this worker's work.
    # The reset runs before the attach so the one shm.attach this worker ever
    # performs lands in its first task snapshot.  The inherited trace buffer
    # belongs to the parent and is dropped the same way.
    obs.reset()
    obs.trace_reset()
    obs.register_worker_flush()
    if coverage_spec is not None:
        # Zero-copy: attach the parent's coverage index at the pool-creating
        # scenario's base λ instead of re-running the radius join (or
        # unpickling a copy) here.  Tasks at a *different* λ still build
        # locally on first use and stay cached for the pool's lifetime.
        from repro.billboard.influence import CoverageIndex

        with obs.span("pool.attach"):
            attached = CoverageIndex.attach_shared(coverage_spec)
        key = (float(base_lambda), False)
        _WORKER_STATE["city"]._coverage_cache[key] = attached
    _freeze_worker_heap()


def _worker_run(task: tuple) -> tuple:
    from repro.parallel.pool import _sync_worker_obs

    (
        scenario,
        parameter,
        value,
        method,
        restarts,
        solver_seed,
        runtime_repeats,
        obs_enabled,
        trace_enabled,
    ) = task
    _sync_worker_obs(obs_enabled, trace_enabled)
    city: CityDataset = _WORKER_STATE["city"]
    span_attrs = {} if parameter is None else {"parameter": parameter, "value": value}
    if parameter is not None:
        scenario = scenario.with_params(**{parameter: value})
    instance = scenario.build_instance(city)
    with obs.span("pool.task"):
        metrics = _run_method(
            method, instance, restarts, solver_seed, runtime_repeats, span_attrs
        )
    if obs_enabled or trace_enabled:
        snapshot = obs.take_snapshot(reset_after=True)
    else:
        snapshot = None
    return (value, method, metrics), snapshot


def _harness_pool(city: CityDataset, scenario: Scenario, workers: int):
    """The persistent harness pool of ``(city, workers)``.

    The first call exports the city's base-λ coverage to shared memory and
    forks the workers; later calls — other sweeps, other scenarios on the
    same city — reuse the warm pool, and the scenario rides in each task
    instead of the initializer so reuse is keyed by the city alone.
    """
    from repro.parallel.pool import PersistentPool, pool_for

    def spawn() -> PersistentPool:
        shared = city.coverage(scenario.lambda_m).to_shared()
        # Workers receive a copy without the coverage cache: the index
        # travels through the shared segments, not the pickle stream.
        worker_city = CityDataset(
            name=city.name, billboards=city.billboards, trajectories=city.trajectories
        )
        return PersistentPool(
            workers,
            initializer=_worker_init,
            initargs=(
                worker_city,
                float(scenario.lambda_m),
                obs.enabled(),
                shared.spec,
                obs.trace_enabled(),
            ),
            shared=shared,
        )

    return pool_for(city, workers, spawn)


def _run_parallel(
    scenario: Scenario,
    city: CityDataset | None,
    tasks: list[tuple],
    workers: int,
) -> dict[tuple, CellMetrics]:
    """Fan tasks out across worker processes; results keyed ``(value, method)``.

    ``Executor.map`` preserves submission order, so assembly is deterministic
    regardless of completion order — including the order worker metric
    snapshots are merged into the parent registry.

    The pool persists across calls (see :func:`_harness_pool`): the city and
    its base-λ coverage ship to each worker exactly once per pool, not once
    per ``sweep``/``run_cell`` call.
    """
    if city is None:
        city = scenario.build_city()
    pool = _harness_pool(city, scenario, workers)
    obs_enabled = obs.enabled()
    trace_enabled = obs.trace_enabled()
    results = pool.map(
        _worker_run, [(scenario, *task, obs_enabled, trace_enabled) for task in tasks]
    )
    return {(value, method): metrics for value, method, metrics in results}


def _check_workers(workers: int | None) -> int:
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return int(workers)


def run_cell(
    scenario: Scenario,
    city: CityDataset | None = None,
    methods: Sequence[str] = PAPER_METHODS,
    restarts: int = BENCH_RESTARTS,
    solver_seed: int = 0,
    instance: MROAMInstance | None = None,
    runtime_repeats: int = 1,
    workers: int | None = None,
    restart_workers: int | None = None,
    screen_workers: int | None = None,
    restart_batch_size=None,
    _span_attrs: dict | None = None,
) -> dict[str, CellMetrics]:
    """Run each method on one cell; returns ``{method: CellMetrics}``.

    ``runtime_repeats > 1`` re-runs each solver and reports the mean
    wall-clock time (the paper's efficiency study averages five runs); the
    regret metrics come from the first run.  ``workers > 1`` fans the methods
    out across processes (regret metrics identical to the serial path); a
    pre-built ``instance`` pins the cell to the serial path since workers
    rebuild the instance from the scenario.  ``restart_workers`` fans the
    ALS/BLS random restarts out inside each serial method run, and
    ``screen_workers`` fans the BLS dirty engine's screen rounds over the
    instance pool (both ignored on the ``workers > 1`` path — no nested
    pools).
    """
    if runtime_repeats < 1:
        raise ValueError(f"runtime_repeats must be >= 1, got {runtime_repeats}")
    workers = _check_workers(workers)
    if workers > 1 and instance is None and len(methods) > 1:
        tasks = [
            (None, None, method, restarts, solver_seed, runtime_repeats)
            for method in methods
        ]
        by_key = _run_parallel(scenario, city, tasks, workers)
        return {method: by_key[(None, method)] for method in methods}
    if instance is None:
        instance = scenario.build_instance(city)
    return {
        method: _run_method(
            method,
            instance,
            restarts,
            solver_seed,
            runtime_repeats,
            _span_attrs,
            restart_workers=restart_workers,
            screen_workers=screen_workers,
            restart_batch_size=restart_batch_size,
        )
        for method in methods
    }


def sweep(
    scenario: Scenario,
    parameter: str,
    values: Sequence,
    methods: Sequence[str] = PAPER_METHODS,
    restarts: int = BENCH_RESTARTS,
    solver_seed: int = 0,
    city: CityDataset | None = None,
    runtime_repeats: int = 1,
    workers: int | None = None,
    restart_workers: int | None = None,
    screen_workers: int | None = None,
    restart_batch_size=None,
) -> ExperimentResult:
    """Vary one scenario field across ``values``; other fields stay fixed.

    Parameters
    ----------
    scenario:
        The base cell (its ``parameter`` field is overridden per value).
    parameter:
        A :class:`Scenario` field name — ``"alpha"``, ``"p_avg"``,
        ``"gamma"``, or ``"lambda_m"``.
    values:
        The sweep values (e.g. ``ALPHA_VALUES``).
    city:
        Optional pre-generated city to reuse; generated once from the base
        scenario otherwise.
    workers:
        Fan the ``values × methods`` task grid out over this many worker
        processes.  Regret metrics are identical to the serial path on the
        same seed; results are assembled in sweep order either way.
    """
    workers = _check_workers(workers)
    if city is None:
        city = scenario.build_city()
    result = ExperimentResult(parameter=parameter, values=list(values))
    if workers > 1:
        tasks = [
            (parameter, value, method, restarts, solver_seed, runtime_repeats)
            for value in values
            for method in methods
        ]
        by_key = _run_parallel(scenario, city, tasks, workers)
        for value in values:
            result.cells[value] = {
                method: by_key[(value, method)] for method in methods
            }
        return result
    for value in values:
        cell_scenario = scenario.with_params(**{parameter: value})
        result.cells[value] = run_cell(
            cell_scenario,
            city=city,
            methods=methods,
            restarts=restarts,
            solver_seed=solver_seed,
            runtime_repeats=runtime_repeats,
            restart_workers=restart_workers,
            screen_workers=screen_workers,
            restart_batch_size=restart_batch_size,
            _span_attrs={"parameter": parameter, "value": value},
        )
    return result
