"""The experiment runner.

``run_cell`` executes the paper's four methods on one scenario cell;
``sweep`` varies one parameter while holding the rest at the scenario's
values, reusing a single generated city across the sweep (so coverage is
recomputed only when λ changes, exactly as a real host's data would be).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.algorithms.registry import PAPER_METHODS, make_solver
from repro.core.problem import MROAMInstance
from repro.datasets.synthetic import CityDataset
from repro.experiments.configs import BENCH_RESTARTS
from repro.experiments.metrics import CellMetrics
from repro.market.scenario import Scenario


@dataclass
class ExperimentResult:
    """All metrics of one sweep: ``cells[param_value][method] -> CellMetrics``."""

    parameter: str
    values: list
    cells: dict = field(default_factory=dict)

    def metric(self, value, method: str) -> CellMetrics:
        return self.cells[value][method]

    def series(self, method: str, attribute: str = "total_regret") -> list[float]:
        """One method's metric across the sweep, in sweep order."""
        return [getattr(self.cells[value][method], attribute) for value in self.values]


def _solver_kwargs(method: str, restarts: int) -> dict:
    if method in ("als", "bls"):
        return {"restarts": restarts}
    return {}


def run_cell(
    scenario: Scenario,
    city: CityDataset | None = None,
    methods: Sequence[str] = PAPER_METHODS,
    restarts: int = BENCH_RESTARTS,
    solver_seed: int = 0,
    instance: MROAMInstance | None = None,
    runtime_repeats: int = 1,
) -> dict[str, CellMetrics]:
    """Run each method on one cell; returns ``{method: CellMetrics}``.

    ``runtime_repeats > 1`` re-runs each solver and reports the mean
    wall-clock time (the paper's efficiency study averages five runs); the
    regret metrics come from the first run.
    """
    if runtime_repeats < 1:
        raise ValueError(f"runtime_repeats must be >= 1, got {runtime_repeats}")
    if instance is None:
        instance = scenario.build_instance(city)
    results = {}
    for method in methods:
        solver = make_solver(method, seed=solver_seed, **_solver_kwargs(method, restarts))
        first = solver.solve(instance)
        metrics = CellMetrics.from_result(method, first)
        if runtime_repeats > 1:
            runtimes = [first.runtime_s]
            for repeat in range(1, runtime_repeats):
                repeat_solver = make_solver(
                    method, seed=solver_seed, **_solver_kwargs(method, restarts)
                )
                runtimes.append(repeat_solver.solve(instance).runtime_s)
            metrics = replace(metrics, runtime_s=sum(runtimes) / len(runtimes))
        results[method] = metrics
    return results


def sweep(
    scenario: Scenario,
    parameter: str,
    values: Sequence,
    methods: Sequence[str] = PAPER_METHODS,
    restarts: int = BENCH_RESTARTS,
    solver_seed: int = 0,
    city: CityDataset | None = None,
    runtime_repeats: int = 1,
) -> ExperimentResult:
    """Vary one scenario field across ``values``; other fields stay fixed.

    Parameters
    ----------
    scenario:
        The base cell (its ``parameter`` field is overridden per value).
    parameter:
        A :class:`Scenario` field name — ``"alpha"``, ``"p_avg"``,
        ``"gamma"``, or ``"lambda_m"``.
    values:
        The sweep values (e.g. ``ALPHA_VALUES``).
    city:
        Optional pre-generated city to reuse; generated once from the base
        scenario otherwise.
    """
    if city is None:
        city = scenario.build_city()
    result = ExperimentResult(parameter=parameter, values=list(values))
    for value in values:
        cell_scenario = scenario.with_params(**{parameter: value})
        result.cells[value] = run_cell(
            cell_scenario,
            city=city,
            methods=methods,
            restarts=restarts,
            solver_seed=solver_seed,
            runtime_repeats=runtime_repeats,
        )
    return result
