"""The paper's parameter grid (Table 6) and reproduction scaling.

Defaults in **bold** in the paper: α = 100 %, p(Ī^A) = 5 %, γ = 0.5,
λ = 100 m.

``BENCH_SCALE`` holds the corpus sizes the benchmark harness uses.  The
paper runs 1.7–2.2 M trajectories on a Java implementation; a pure-Python
reproduction uses a scaled corpus.  The coverage *structure* (skew, overlap)
is preserved by the generators, and every reported quantity is a ratio or an
ordering, so the scaling does not affect the qualitative shapes the benches
assert.
"""

from __future__ import annotations

from repro.market.scenario import Scenario

#: Table 6 rows (defaults marked in the paper in bold).
ALPHA_VALUES = (0.4, 0.6, 0.8, 1.0, 1.2)
P_AVG_VALUES = (0.01, 0.02, 0.05, 0.10, 0.20)
GAMMA_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)
LAMBDA_VALUES = (50.0, 100.0, 150.0, 200.0)

DEFAULT_ALPHA = 1.0
DEFAULT_P_AVG = 0.05
DEFAULT_GAMMA = 0.5
DEFAULT_LAMBDA = 100.0

#: Scaled corpus sizes per dataset for the benchmark harness:
#: (n_billboards, n_trajectories).
BENCH_SCALE = {
    "nyc": (800, 8_000),
    "sg": (1_200, 8_000),
}

#: Restart budget for the randomized methods in benches (Algorithm 3's
#: "preset count").  Kept small so a full figure regenerates in minutes.
BENCH_RESTARTS = 2


def default_scenario(dataset: str = "nyc", seed: int = 7, bench_scale: bool = True) -> Scenario:
    """The paper's default cell, optionally at bench scale."""
    scale = BENCH_SCALE[dataset.lower()] if bench_scale else (None, None)
    return Scenario(
        dataset=dataset.lower(),
        n_billboards=scale[0],
        n_trajectories=scale[1],
        alpha=DEFAULT_ALPHA,
        p_avg=DEFAULT_P_AVG,
        gamma=DEFAULT_GAMMA,
        lambda_m=DEFAULT_LAMBDA,
        seed=seed,
    )
