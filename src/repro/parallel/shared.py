"""Shared-memory segment lifecycle for zero-copy parallel work.

A :class:`SharedCoverage` exports one :class:`~repro.billboard.influence.
CoverageIndex`'s CSR arrays (and packed bitmap, when built) into
``multiprocessing.shared_memory`` segments.  Worker processes attach numpy
views over the same physical pages instead of unpickling a private copy, so
fanning a solve out over N workers costs one coverage index, not N.

Lifecycle rules:

* the **creator** owns the segments: it unlinks them in :meth:`SharedCoverage.
  close` (called by the drivers in a ``finally`` and, as a safety net, from an
  ``atexit`` hook);
* an **attacher** only closes its mapping — it must never unlink, and it
  unregisters the segment from its ``resource_tracker`` (which would
  otherwise unlink everyone's segment when the first worker exits);
* attached arrays are marked read-only: the kernels only ever read coverage.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro import obs


@dataclass(frozen=True)
class SharedArraySpec:
    """Address of one numpy array living in a shared-memory segment."""

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class SharedBitmapSpec:
    """Address of one tiered bitmap store, for workers to attach.

    ``shm``-tier stores ship one segment per row shard; ``memmap``-tier
    stores ship only the shard file paths (the page cache is already the
    shared medium — attaching costs nothing).
    """

    tier: str
    shards: tuple[SharedArraySpec, ...]
    paths: tuple[str, ...]
    rows_per_shard: int
    num_rows: int
    words: int


@dataclass(frozen=True)
class SharedCoverageSpec:
    """Everything a worker needs to rebuild a read-only ``CoverageIndex``.

    Cheap to pickle (segment names + scalars) — this is what crosses the
    process boundary instead of the index itself.
    """

    flat: SharedArraySpec
    offsets: SharedArraySpec
    bitmap: SharedBitmapSpec | None
    num_trajectories: int
    lambda_m: float
    bitmap_budget_mb: float


def _export_array(array: np.ndarray) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
    staged = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    staged[...] = array
    return segment, SharedArraySpec(segment.name, tuple(array.shape), array.dtype.str)


def attach_array(spec: SharedArraySpec) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Read-only numpy view over an exported segment, plus the open handle.

    The caller must keep the returned ``SharedMemory`` handle alive as long
    as the array — the view borrows its buffer.
    """
    # Python < 3.13 registers every attach with the resource tracker as if it
    # were a creation, which (a) makes the first exiting attacher's tracker
    # unlink the segment under the creator's feet and (b) — since forked
    # attachers share one tracker whose cache is a set — makes paired
    # unregisters trip KeyErrors inside the tracker.  Suppress the
    # registration for the attach itself; only the creator tracks.
    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        segment = shared_memory.SharedMemory(name=spec.name)
    finally:
        resource_tracker.register = original_register
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    array.flags.writeable = False
    return array, segment


class SharedCoverage:
    """Owns the shared-memory segments of one exported coverage index."""

    def __init__(self, spec: SharedCoverageSpec, segments: list) -> None:
        self.spec = spec
        self._segments = list(segments)
        self._closed = False
        atexit.register(self.close)

    @classmethod
    def create(cls, index) -> "SharedCoverage":
        """Export ``index``'s CSR arrays (and bitmap, if any) into segments.

        Forces the index's bitmap decision first, so whether attachers get the
        bitmap kernel is fixed here, not left to per-worker state.
        """
        flat, offsets = index.to_arrays()
        segments = []
        flat_segment, flat_spec = _export_array(flat)
        segments.append(flat_segment)
        offsets_segment, offsets_spec = _export_array(offsets)
        segments.append(offsets_segment)
        bitmap_spec = None
        store = index._ensure_bitmap()
        if store is not None:
            if store.tier == "memmap":
                # The sealed shard files are the shared medium already: every
                # attacher maps the same page-cache pages. Ship paths only.
                bitmap_spec = SharedBitmapSpec(
                    tier="memmap",
                    shards=(),
                    paths=store.paths,
                    rows_per_shard=store.rows_per_shard,
                    num_rows=store.num_rows,
                    words=store.words,
                )
            else:
                shard_specs = []
                for shard in store.shards:
                    shard_segment, shard_spec = _export_array(np.asarray(shard))
                    segments.append(shard_segment)
                    shard_specs.append(shard_spec)
                bitmap_spec = SharedBitmapSpec(
                    tier="shm",
                    shards=tuple(shard_specs),
                    paths=(),
                    rows_per_shard=store.rows_per_shard,
                    num_rows=store.num_rows,
                    words=store.words,
                )
        spec = SharedCoverageSpec(
            flat=flat_spec,
            offsets=offsets_spec,
            bitmap=bitmap_spec,
            num_trajectories=index.num_trajectories,
            lambda_m=index.lambda_m,
            bitmap_budget_mb=index._bitmap_budget_mb,
        )
        obs.counter_add("shm.create", len(segments))
        return cls(spec, segments)

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedCoverage":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
