"""Persistent shared-memory worker pools.

``ProcessPoolExecutor`` spawn cost (fork + interpreter warm-up + one
``shm.attach`` per worker) dwarfs a restart batch at benchmark scale, so a
pool created per call makes ``restart_workers > 1`` *slower* than serial.
This module keeps pools alive instead:

* :class:`PersistentPool` — a kept-alive executor plus the shared-memory
  segments its workers attached at spawn.  ``map`` preserves task order and
  folds each worker's observability snapshot into the parent registry.
* :class:`SharedInstancePool` — a :class:`PersistentPool` whose workers hold
  one attached :class:`~repro.core.problem.MROAMInstance`; the restart and
  annealing drivers (:mod:`repro.parallel.restarts`) run on these.
* :func:`pool_for` — the per-``(owner, workers)`` cache: the first call
  spawns (``pool.spawn``), later calls reuse the live pool (``pool.reuse``),
  and the pool is closed when its owner is garbage-collected or at exit.

Lifecycle rules (DESIGN.md §10):

* a pool belongs to its *owner* object (the instance or city whose coverage
  its workers attached) and never outlives it — a ``weakref.finalize`` on
  the owner closes the pool, and an ``atexit`` hook is the safety net;
* workers are forked once with observability matching the parent *at spawn*;
  every task carries the parent's current obs flag and the worker re-syncs
  (enable/disable + registry reset) on transition, so a pool spawned during
  a warm-up survives into timed obs-off runs without skewing either;
* effective worker count is capped at the CPUs this process may actually
  run on (``os.sched_getaffinity``) — extra workers only thrash the cache;
* workers freeze their post-attach heap (``gc.freeze``) so the attached
  coverage never pays collection passes during solver work.

Task *grain*: one ``map`` payload is one ``pool.task`` span.  Callers that
need fatter grains (the batched restart drivers, DESIGN.md §13) pack
several work items into a single payload and record the packing on the
``pool.task.batch`` histogram — the pool itself never merges payloads, so
the span count stays an exact task count for trace attribution.
"""

from __future__ import annotations

import atexit
import gc
import os
import weakref
from concurrent.futures import ProcessPoolExecutor

from repro import env, obs
from repro.billboard.influence import CoverageIndex
from repro.core.problem import MROAMInstance


#: Environment variable lifting the CPU-affinity cap on worker counts.
#: Tracing runs set it so multi-pid traces exist even on 1-CPU containers;
#: performance runs should leave it unset.
OVERSUBSCRIBE_ENV = env.POOL_OVERSUBSCRIBE.name


def effective_workers(requested: int) -> int:
    """``requested`` capped to the CPUs this process can be scheduled on.

    Setting ``REPRO_POOL_OVERSUBSCRIBE`` (to anything non-empty) lifts the
    cap — useful when the point of the pool is attribution rather than
    speed, e.g. tracing worker behaviour on a single-CPU CI runner.
    """
    if env.POOL_OVERSUBSCRIBE.is_set():
        return max(1, int(requested))
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(int(requested), available))


def _sync_worker_obs(want_enabled: bool, want_trace: bool = False) -> None:
    """Match the worker's observability state to the parent's task flags.

    Runs inside the worker.  An enable/disable transition resets the
    registry so snapshots never mix work from before and after the toggle;
    the trace flag flips collection only — pending trace events still ship
    with the next snapshot (or the teardown spill).
    """
    if obs.enabled() != want_enabled:
        if want_enabled:
            obs.enable()
        else:
            obs.disable()
        obs.reset()
    if obs.trace_enabled() != want_trace:
        obs.set_trace_collection(want_trace)


def _freeze_worker_heap() -> None:
    """Collect then freeze the worker's heap (runs inside the worker).

    Everything allocated so far — the interpreter, numpy, the attached
    coverage views — is long-lived by construction; freezing it takes the
    whole block out of every future collection pass.
    """
    gc.collect()
    gc.freeze()


# Worker-process state for instance pools, populated by the initializer.
_WORKER_STATE: dict = {}


def _instance_worker_init(
    coverage_spec, advertisers, gamma, obs_enabled: bool, trace_enabled: bool = False
) -> None:
    _sync_worker_obs(obs_enabled, trace_enabled)
    # With a fork start method the child inherits the parent's registry
    # contents; clear them *before* attaching so the shm.attach count lands
    # in this worker's first task snapshot.  The inherited trace buffer is
    # dropped too — the parent already owns those events.
    obs.reset()
    obs.trace_reset()
    obs.register_worker_flush()
    with obs.span("pool.attach"):
        coverage = CoverageIndex.attach_shared(coverage_spec)
        _WORKER_STATE["instance"] = MROAMInstance(coverage, list(advertisers), gamma)
    _freeze_worker_heap()


def _instance_worker_call(task: tuple) -> tuple:
    runner, payload, obs_enabled, trace_enabled = task
    _sync_worker_obs(obs_enabled, trace_enabled)
    with obs.span("pool.task"):
        result = runner(_WORKER_STATE["instance"], payload)
    if obs_enabled or trace_enabled:
        snapshot = obs.take_snapshot(reset_after=True)
    else:
        snapshot = None
    return result, snapshot


class PersistentPool:
    """A kept-alive worker pool plus the shared segments its workers use.

    ``initializer``/``initargs`` run once per worker at spawn, exactly like
    ``ProcessPoolExecutor``'s; ``shared`` (optional) is a
    :class:`~repro.parallel.shared.SharedCoverage` whose lifetime this pool
    owns — it is closed (segments unlinked) when the pool closes.
    """

    def __init__(self, workers: int, initializer, initargs: tuple, shared=None) -> None:
        self.requested_workers = int(workers)
        self.workers = effective_workers(workers)
        self._shared = shared
        with obs.span("pool.spawn", workers=self.workers):
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=initializer,
                initargs=initargs,
            )
        self._closed = False
        self._maps = 0
        atexit.register(self.close)

    @property
    def closed(self) -> bool:
        return self._closed

    def map(self, func, tasks: list) -> list:
        """Run ``func(task)`` for every task; results in task order.

        ``func`` must return ``(result, snapshot)`` pairs (the worker-call
        convention); snapshots are merged into the parent registry in task
        order, so counter totals match a serial run of the same tasks.
        Tasks are dispatched in contiguous chunks — one slice per worker —
        to amortize the pickle/IPC round trips.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        self._maps += 1
        chunksize = -(-len(tasks) // self.workers)  # ceil division
        results = []
        with obs.span(
            "pool.map", tasks=len(tasks), workers=self.workers, first=self._maps == 1
        ):
            for result, snapshot in self._executor.map(func, tasks, chunksize=chunksize):
                obs.merge_snapshot(snapshot)
                results.append(result)
        return results

    def close(self) -> None:
        """Shut the workers down and release the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        if self._shared is not None:
            self._shared.close()
        atexit.unregister(self.close)


class SharedInstancePool(PersistentPool):
    """A :class:`PersistentPool` whose workers hold one attached instance.

    Workers attach the instance's coverage through shared memory once, build
    their :class:`MROAMInstance` around the attached views, and then serve
    ``runner(instance, payload)`` tasks until the pool closes — restart
    batches, annealing chains, and repeated solver calls all reuse the same
    warm processes.
    """

    def __init__(self, instance: MROAMInstance, workers: int) -> None:
        with obs.span("pool.export"):
            shared = instance.coverage.to_shared()
        super().__init__(
            workers,
            initializer=_instance_worker_init,
            initargs=(
                shared.spec,
                list(instance.advertisers),
                instance.gamma,
                obs.enabled(),
                obs.trace_enabled(),
            ),
            shared=shared,
        )

    def run(self, runner, payloads: list) -> list:
        """``[runner(instance, payload) for payload in payloads]``, fanned out."""
        obs_enabled = obs.enabled()
        trace_enabled = obs.trace_enabled()
        return self.map(
            _instance_worker_call,
            [(runner, payload, obs_enabled, trace_enabled) for payload in payloads],
        )


# ---------------------------------------------------------------- pool cache

#: Live pools keyed by ``(id(owner), requested_workers)``.  Entries are
#: evicted (and the pool closed) by a ``weakref.finalize`` when the owner is
#: collected, so a recycled ``id`` can never alias a dead owner's pool.
_POOLS: dict = {}


def _evict_pool(key: tuple) -> None:
    pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.close()


def pool_for(owner, workers: int, factory) -> PersistentPool:
    """The persistent pool of ``(owner, workers)``, spawning via ``factory``.

    ``owner`` is the object whose shared state the pool's workers hold (an
    instance for restart pools, a city for harness pools); the pool lives
    until the owner is garbage-collected, the pool is explicitly closed, or
    the process exits.  Spawns and reuses are counted (``pool.spawn`` /
    ``pool.reuse``) so benchmarks can assert the pool actually persisted.
    """
    key = (id(owner), int(workers))
    pool = _POOLS.get(key)
    if pool is not None and not pool.closed:
        obs.counter_add("pool.reuse")
        return pool
    pool = factory()
    _POOLS[key] = pool
    obs.counter_add("pool.spawn")
    weakref.finalize(owner, _evict_pool, key)
    return pool


def close_all_pools() -> None:
    """Close every live pool now (explicit teardown; tests, long sessions).

    Safe anytime: the next driver call simply spawns a fresh pool.
    """
    for key in list(_POOLS):
        _evict_pool(key)


def instance_pool(instance: MROAMInstance, workers: int) -> SharedInstancePool:
    """The persistent :class:`SharedInstancePool` of ``(instance, workers)``."""
    return pool_for(instance, workers, lambda: SharedInstancePool(instance, workers))
