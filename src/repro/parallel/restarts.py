"""Parallel restart drivers: fan restart/chain tasks over worker processes.

Workers attach the instance's :class:`~repro.billboard.influence.
CoverageIndex` through shared memory (:mod:`repro.parallel.shared`) — the
only payload pickled per pool is the advertiser list and a few scalars, and
each worker performs exactly one ``shm.attach``.  Tasks carry pre-drawn
restart seeds, so the parallel paths run the *same* restarts the serial
paths run and the best-plan reduction (strict ``<`` in restart order) picks
the identical winner.

The worker pool is *persistent* (:mod:`repro.parallel.pool`): the first
driver call for an ``(instance, workers)`` pair spawns it, every later call
— more restarts, annealing chains, repeated solver runs — reuses the warm
processes, so the fork/attach cost is paid once per instance, not per call.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.problem import MROAMInstance


def allocation_from_owners(instance: MROAMInstance, owners: np.ndarray) -> Allocation:
    """Rebuild an allocation from an owner vector (same sets, same regret)."""
    allocation = Allocation(instance)
    for billboard_id in np.nonzero(np.asarray(owners) != UNASSIGNED)[0]:
        allocation.assign(int(billboard_id), int(owners[billboard_id]))
    return allocation


def _map_over_shared_instance(
    instance: MROAMInstance, runner, payloads: list, workers: int
) -> list:
    """Run ``runner(instance, payload)`` for each payload across ``workers``
    persistent processes sharing one exported coverage index; results in
    payload order.
    """
    from repro.parallel.pool import instance_pool

    return instance_pool(instance, workers).run(runner, payloads)


def _local_search_restart(instance: MROAMInstance, payload: tuple) -> dict:
    """One randomized restart: seed plan → greedy completion → local search."""
    from repro.algorithms.als import advertiser_driven_local_search
    from repro.algorithms.bls import billboard_driven_local_search
    from repro.algorithms.greedy_global import synchronous_greedy

    from repro import obs

    params, seed_ids = payload
    stats: dict = {}
    plan = Allocation(instance)
    with obs.span("restart.greedy"):
        for advertiser_id, billboard_id in enumerate(seed_ids):
            plan.assign(int(billboard_id), int(advertiser_id))
        synchronous_greedy(plan, stats=stats)
    with obs.span(
        "restart.local_search",
        neighborhood=params["neighborhood"],
        engine=params["engine"],
    ):
        if params["neighborhood"] == "als":
            # ALS has no coverage scans to restrict; "dirty-full-scan" maps to
            # "dirty" exactly as in RandomizedLocalSearch._local_search.
            als_engine = "full" if params["engine"] == "full" else "dirty"
            plan = advertiser_driven_local_search(
                plan, params["min_improvement"], stats, engine=als_engine
            )
        else:
            plan = billboard_driven_local_search(
                plan,
                params["min_improvement"],
                params["max_sweeps"],
                stats,
                engine=params["engine"],
            )
    return {
        "owners": np.asarray(plan.owners).copy(),
        "total_regret": float(plan.total_regret()),
        "stats": stats,
    }


def run_local_search_restarts(
    instance: MROAMInstance,
    seed_ids_per_restart: list,
    *,
    neighborhood: str,
    min_improvement: float,
    max_sweeps: int | None,
    engine: str,
    workers: int,
) -> list[dict]:
    """Run one restart per pre-drawn seed-id array; results in restart order.

    Each result dict carries ``owners``, ``total_regret``, and the restart's
    ``stats`` counters, exactly what the serial loop accumulates per restart.
    """
    params = {
        "neighborhood": neighborhood,
        "min_improvement": min_improvement,
        "max_sweeps": max_sweeps,
        "engine": engine,
    }
    payloads = [(params, seed_ids) for seed_ids in seed_ids_per_restart]
    return _map_over_shared_instance(
        instance, _local_search_restart, payloads, workers
    )


def _annealing_chain(instance: MROAMInstance, payload: tuple) -> dict:
    from repro.algorithms.annealing import anneal_chain

    steps, initial_temperature, cooling, rng = payload
    chain = anneal_chain(instance, steps, initial_temperature, cooling, rng)
    best = chain.pop("best")
    chain["owners"] = np.asarray(best.owners).copy()
    return chain


def run_annealing_chains(
    instance: MROAMInstance,
    seeds: list,
    *,
    steps: int,
    initial_temperature: float | None,
    cooling: float,
    workers: int,
) -> list[dict]:
    """Run one annealing chain per seed; results in chain order.

    Returns :func:`repro.algorithms.annealing.anneal_chain` dicts with the
    best plan rebuilt against the caller's instance (workers ship back the
    owner vector, never an allocation).
    """
    payloads = [(steps, initial_temperature, cooling, seed) for seed in seeds]
    chains = _map_over_shared_instance(instance, _annealing_chain, payloads, workers)
    for chain in chains:
        chain["best"] = allocation_from_owners(instance, chain.pop("owners"))
    return chains
