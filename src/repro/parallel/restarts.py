"""Parallel restart drivers: fan restart/chain tasks over worker processes.

Workers attach the instance's :class:`~repro.billboard.influence.
CoverageIndex` through shared memory (:mod:`repro.parallel.shared`) — the
only payload pickled per pool is the advertiser list and a few scalars, and
each worker performs exactly one ``shm.attach``.  Tasks carry pre-drawn
restart seeds, so the parallel paths run the *same* restarts the serial
paths run and the best-plan reduction (strict ``<`` in restart order) picks
the identical winner.

The worker pool is *persistent* (:mod:`repro.parallel.pool`): the first
driver call for an ``(instance, workers)`` pair spawns it, every later call
— more restarts, annealing chains, repeated solver runs — reuses the warm
processes, so the fork/attach cost is paid once per instance, not per call.

Restart *grain batching* (DESIGN.md §13): the PR-6 trace attribution showed
pool overhead under 3% of map wall yet a ~1.02× restart speedup — the tasks
were simply too small (tens of milliseconds) for the dispatch/reduce rhythm
to overlap usefully.  The drivers therefore pack ``restart_batch_size``
restarts into one pool task (``"auto"`` sizes batches so a task targets
:data:`TARGET_TASK_SECONDS` of compute, from a cheap calibration estimate or
the run ledger's grain history) and reduce *inside* the task with the same
strict ``<`` in restart order.  The task winner is provably the only restart
whose owner vector the cross-task reduction can ever need — the global best
restart is the first to attain the global minimum, hence also the first to
attain its own task's minimum — so batches ship one owner vector plus
per-restart regrets/stats, and the caller's reduction stays bit-identical
to serial.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.problem import MROAMInstance

#: Auto-sized restart batches target at least this much compute per pool
#: task — small enough to keep every worker busy, large enough that the
#: per-task dispatch + snapshot cost (~1 ms) disappears into the noise.
TARGET_TASK_SECONDS = 0.5


def allocation_from_owners(instance: MROAMInstance, owners: np.ndarray) -> Allocation:
    """Rebuild an allocation from an owner vector (same sets, same regret)."""
    allocation = Allocation(instance)
    for billboard_id in np.nonzero(np.asarray(owners) != UNASSIGNED)[0]:
        allocation.assign(int(billboard_id), int(owners[billboard_id]))
    return allocation


def resolve_batch_size(
    restart_batch_size,
    num_restarts: int,
    workers: int,
    estimate_seconds: float | None = None,
) -> int:
    """Restarts per pool task for the requested batching mode.

    ``None``/``1`` disables batching; an explicit int is honoured (capped at
    the restart count); ``"auto"`` targets :data:`TARGET_TASK_SECONDS` of
    compute per task using ``estimate_seconds`` (seconds per restart, from a
    calibration pass or :func:`estimated_restart_seconds`), never exceeding
    one wave (``ceil(restarts / workers)``) so no worker goes idle.  Without
    an estimate, ``"auto"`` falls back to exactly one wave — the fattest
    grain that still uses every worker.
    """
    if num_restarts <= 0:
        return 1
    if restart_batch_size is None or restart_batch_size == 1:
        return 1
    per_wave = max(1, math.ceil(num_restarts / max(workers, 1)))
    if restart_batch_size == "auto":
        if estimate_seconds is None or estimate_seconds <= 0.0:
            return per_wave
        batch = max(1, math.ceil(TARGET_TASK_SECONDS / estimate_seconds))
        return min(batch, per_wave)
    batch = int(restart_batch_size)
    if batch < 1:
        raise ValueError(f"restart_batch_size must be >= 1, got {restart_batch_size}")
    return min(batch, num_restarts)


def estimated_restart_seconds(kind: str, instance: MROAMInstance) -> float | None:
    """Mean per-restart compute seconds from the run ledger's grain history.

    Scans ``parallel.grain`` ledger records (written by the drivers below)
    for the same task kind on comparably sized instances; ``None`` when the
    ledger is off, unreadable, or has nothing comparable — callers fall back
    to their own calibration estimate.
    """
    from repro import obs

    path = obs.ledger_path()
    if path is None:
        return None
    try:
        rows = obs.read_ledger(path)
    except (OSError, ValueError):
        return None
    per_restart: list[float] = []
    for row in rows:
        if row.get("kind") != "parallel.grain":
            continue
        grain = row.get("grain") or {}
        if grain.get("task_kind") != kind:
            continue
        features = row.get("instance") or {}
        if features.get("billboards") != instance.num_billboards:
            continue
        seconds = grain.get("mean_restart_seconds")
        if isinstance(seconds, (int, float)) and seconds > 0:
            per_restart.append(float(seconds))
    if not per_restart:
        return None
    return sum(per_restart) / len(per_restart)


def _record_grain(
    instance: MROAMInstance,
    task_kind: str,
    num_restarts: int,
    batch_size: int,
    task_seconds: list[float],
) -> None:
    """Ledger one driver call's grain shape — the calibration data
    :func:`estimated_restart_seconds` feeds back into ``"auto"`` sizing."""
    from repro import obs

    if obs.ledger_path() is None:
        return
    tasks = max(len(task_seconds), 1)
    total = float(sum(task_seconds))
    obs.record_run(
        "parallel.grain",
        instance=instance,
        grain={
            "task_kind": task_kind,
            "restarts": int(num_restarts),
            "tasks": int(len(task_seconds)),
            "batch_size": int(batch_size),
            "mean_task_seconds": total / tasks,
            "mean_restart_seconds": total / max(num_restarts, 1),
        },
    )


def _map_over_shared_instance(
    instance: MROAMInstance, runner, payloads: list, workers: int
) -> list:
    """Run ``runner(instance, payload)`` for each payload across ``workers``
    persistent processes sharing one exported coverage index; results in
    payload order.
    """
    from repro.parallel.pool import instance_pool

    return instance_pool(instance, workers).run(runner, payloads)


def _batches(items: list, batch_size: int) -> list[list]:
    return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]


def _local_search_restart(instance: MROAMInstance, payload: tuple) -> dict:
    """One randomized restart: seed plan → greedy completion → local search."""
    from repro.algorithms.als import advertiser_driven_local_search
    from repro.algorithms.bls import billboard_driven_local_search
    from repro.algorithms.greedy_global import synchronous_greedy

    from repro import obs

    params, seed_ids = payload
    stats: dict = {}
    plan = Allocation(instance)
    with obs.span("restart.greedy"):
        for advertiser_id, billboard_id in enumerate(seed_ids):
            plan.assign(int(billboard_id), int(advertiser_id))
        synchronous_greedy(plan, stats=stats)
    with obs.span(
        "restart.local_search",
        neighborhood=params["neighborhood"],
        engine=params["engine"],
    ):
        if params["neighborhood"] == "als":
            # ALS has no coverage scans to restrict; "dirty-full-scan" maps to
            # "dirty" exactly as in RandomizedLocalSearch._local_search.
            als_engine = "full" if params["engine"] == "full" else "dirty"
            plan = advertiser_driven_local_search(
                plan, params["min_improvement"], stats, engine=als_engine
            )
        else:
            plan = billboard_driven_local_search(
                plan,
                params["min_improvement"],
                params["max_sweeps"],
                stats,
                engine=params["engine"],
            )
    return {
        "owners": np.asarray(plan.owners).copy(),
        "total_regret": float(plan.total_regret()),
        "stats": stats,
    }


def _local_search_restart_batch(instance: MROAMInstance, payload: tuple) -> dict:
    """One pool task running a whole batch of restarts.

    Reduces in-task with the same strict ``<`` in restart order the caller
    applies across tasks, so only the batch winner's owner vector travels
    back; every restart's regret and stats counters still do.
    """
    from repro import obs

    params, seed_batches = payload
    obs.histogram_observe("pool.task.batch", float(len(seed_batches)))
    started = time.perf_counter()  # repro-lint: ignore[determinism] telemetry-only clock
    restarts: list[dict] = []
    winner = -1
    winner_regret = math.inf
    owners: np.ndarray | None = None
    for index, seed_ids in enumerate(seed_batches):
        outcome = _local_search_restart(instance, (params, seed_ids))
        if outcome["total_regret"] < winner_regret:
            winner_regret = outcome["total_regret"]
            winner = index
            owners = outcome["owners"]
        outcome.pop("owners")
        restarts.append(outcome)
    return {
        "restarts": restarts,
        "winner": winner,
        "owners": owners,
        "task_seconds": time.perf_counter() - started,  # repro-lint: ignore[determinism] telemetry-only clock
    }


def run_local_search_restarts(
    instance: MROAMInstance,
    seed_ids_per_restart: list,
    *,
    neighborhood: str,
    min_improvement: float,
    max_sweeps: int | None,
    engine: str,
    workers: int,
    restart_batch_size=1,
    estimate_seconds: float | None = None,
) -> list[dict]:
    """Run one restart per pre-drawn seed-id array; results in restart order.

    Each result dict carries ``total_regret``, the restart's ``stats``
    counters, and ``owners`` — the owner vector for restarts that won their
    task's in-task reduction, ``None`` otherwise.  The caller's strict-``<``
    reduction only ever dereferences the final winner's vector, which is
    always present (the global winner is by construction its own task's
    winner), so batched, unbatched, and serial runs reduce identically.
    """
    params = {
        "neighborhood": neighborhood,
        "min_improvement": min_improvement,
        "max_sweeps": max_sweeps,
        "engine": engine,
    }
    if estimate_seconds is None and restart_batch_size == "auto":
        estimate_seconds = estimated_restart_seconds("local_search", instance)
    batch_size = resolve_batch_size(
        restart_batch_size, len(seed_ids_per_restart), workers, estimate_seconds
    )
    if batch_size <= 1:
        payloads = [(params, seed_ids) for seed_ids in seed_ids_per_restart]
        return _map_over_shared_instance(
            instance, _local_search_restart, payloads, workers
        )
    payloads = [
        (params, batch) for batch in _batches(seed_ids_per_restart, batch_size)
    ]
    tasks = _map_over_shared_instance(
        instance, _local_search_restart_batch, payloads, workers
    )
    results: list[dict] = []
    for task in tasks:
        for index, outcome in enumerate(task["restarts"]):
            outcome["owners"] = task["owners"] if index == task["winner"] else None
            results.append(outcome)
    _record_grain(
        instance,
        "local_search",
        len(seed_ids_per_restart),
        batch_size,
        [task["task_seconds"] for task in tasks],
    )
    return results


def _annealing_chain(instance: MROAMInstance, payload: tuple) -> dict:
    from repro.algorithms.annealing import anneal_chain

    steps, initial_temperature, cooling, rng = payload
    chain = anneal_chain(instance, steps, initial_temperature, cooling, rng)
    best = chain.pop("best")
    chain["owners"] = np.asarray(best.owners).copy()
    return chain


def _annealing_chain_batch(instance: MROAMInstance, payload: tuple) -> dict:
    """One pool task running a batch of annealing chains (in-task strict ``<``)."""
    from repro import obs
    from repro.algorithms.annealing import anneal_chain

    steps, initial_temperature, cooling, seeds = payload
    obs.histogram_observe("pool.task.batch", float(len(seeds)))
    started = time.perf_counter()  # repro-lint: ignore[determinism] telemetry-only clock
    chains: list[dict] = []
    winner = -1
    winner_regret = math.inf
    owners: np.ndarray | None = None
    for index, seed in enumerate(seeds):
        chain = anneal_chain(instance, steps, initial_temperature, cooling, seed)
        best = chain.pop("best")
        if chain["best_regret"] < winner_regret:
            winner_regret = chain["best_regret"]
            winner = index
            owners = np.asarray(best.owners).copy()
        chains.append(chain)
    return {
        "chains": chains,
        "winner": winner,
        "owners": owners,
        "task_seconds": time.perf_counter() - started,  # repro-lint: ignore[determinism] telemetry-only clock
    }


def run_annealing_chains(
    instance: MROAMInstance,
    seeds: list,
    *,
    steps: int,
    initial_temperature: float | None,
    cooling: float,
    workers: int,
    restart_batch_size=1,
    estimate_seconds: float | None = None,
) -> list[dict]:
    """Run one annealing chain per seed; results in chain order.

    Returns :func:`repro.algorithms.annealing.anneal_chain` dicts with the
    best plan rebuilt against the caller's instance (workers ship back the
    owner vector, never an allocation).  With batching, only each task's
    winning chain carries a ``"best"`` allocation (others get ``None``) —
    sufficient for the strict-``<`` reduction, see
    :func:`run_local_search_restarts`.
    """
    if estimate_seconds is None and restart_batch_size == "auto":
        estimate_seconds = estimated_restart_seconds("sa", instance)
    batch_size = resolve_batch_size(
        restart_batch_size, len(seeds), workers, estimate_seconds
    )
    if batch_size <= 1:
        payloads = [(steps, initial_temperature, cooling, seed) for seed in seeds]
        chains = _map_over_shared_instance(
            instance, _annealing_chain, payloads, workers
        )
        for chain in chains:
            chain["best"] = allocation_from_owners(instance, chain.pop("owners"))
        return chains
    payloads = [
        (steps, initial_temperature, cooling, batch)
        for batch in _batches(list(seeds), batch_size)
    ]
    tasks = _map_over_shared_instance(
        instance, _annealing_chain_batch, payloads, workers
    )
    chains = []
    for task in tasks:
        for index, chain in enumerate(task["chains"]):
            chain["best"] = (
                allocation_from_owners(instance, task["owners"])
                if index == task["winner"]
                else None
            )
            chains.append(chain)
    _record_grain(
        instance, "sa", len(seeds), batch_size, [task["task_seconds"] for task in tasks]
    )
    return chains
