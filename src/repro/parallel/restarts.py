"""Parallel restart drivers: fan restart/chain tasks over worker processes.

Workers attach the instance's :class:`~repro.billboard.influence.
CoverageIndex` through shared memory (:mod:`repro.parallel.shared`) — the
only payload pickled per pool is the advertiser list and a few scalars, and
each worker performs exactly one ``shm.attach``.  Tasks carry pre-drawn
restart seeds, so the parallel paths run the *same* restarts the serial
paths run and the best-plan reduction (strict ``<`` in restart order) picks
the identical winner.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.billboard.influence import CoverageIndex
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.problem import MROAMInstance


def allocation_from_owners(instance: MROAMInstance, owners: np.ndarray) -> Allocation:
    """Rebuild an allocation from an owner vector (same sets, same regret)."""
    allocation = Allocation(instance)
    for billboard_id in np.nonzero(np.asarray(owners) != UNASSIGNED)[0]:
        allocation.assign(int(billboard_id), int(owners[billboard_id]))
    return allocation


# Worker-process state, populated once per process by the pool initializer.
_WORKER_STATE: dict = {}


def _worker_init(coverage_spec, advertisers, gamma, obs_enabled: bool) -> None:
    if obs_enabled:
        obs.enable()
    else:
        obs.disable()
    # With a fork start method the child inherits the parent's registry
    # contents; clear them *before* attaching so the shm.attach count lands
    # in this worker's first task snapshot.
    obs.reset()
    coverage = CoverageIndex.attach_shared(coverage_spec)
    _WORKER_STATE["instance"] = MROAMInstance(coverage, list(advertisers), gamma)


def _worker_call(task: tuple) -> tuple:
    runner, payload = task
    result = runner(_WORKER_STATE["instance"], payload)
    snapshot = obs.take_snapshot(reset_after=True) if obs.enabled() else None
    return result, snapshot


def _map_over_shared_instance(
    instance: MROAMInstance, runner, payloads: list, workers: int
) -> list:
    """Run ``runner(instance, payload)`` for each payload across ``workers``
    processes sharing one exported coverage index; results in payload order.
    """
    shared = instance.coverage.to_shared()
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(shared.spec, list(instance.advertisers), instance.gamma, obs.enabled()),
        ) as pool:
            results = []
            for result, snapshot in pool.map(
                _worker_call, [(runner, payload) for payload in payloads], chunksize=1
            ):
                obs.merge_snapshot(snapshot)
                results.append(result)
            return results
    finally:
        shared.close()


def _local_search_restart(instance: MROAMInstance, payload: tuple) -> dict:
    """One randomized restart: seed plan → greedy completion → local search."""
    from repro.algorithms.als import advertiser_driven_local_search
    from repro.algorithms.bls import billboard_driven_local_search
    from repro.algorithms.greedy_global import synchronous_greedy

    params, seed_ids = payload
    stats: dict = {}
    plan = Allocation(instance)
    for advertiser_id, billboard_id in enumerate(seed_ids):
        plan.assign(int(billboard_id), int(advertiser_id))
    synchronous_greedy(plan, stats=stats)
    if params["neighborhood"] == "als":
        plan = advertiser_driven_local_search(
            plan, params["min_improvement"], stats, engine=params["engine"]
        )
    else:
        plan = billboard_driven_local_search(
            plan,
            params["min_improvement"],
            params["max_sweeps"],
            stats,
            engine=params["engine"],
        )
    return {
        "owners": np.asarray(plan.owners).copy(),
        "total_regret": float(plan.total_regret()),
        "stats": stats,
    }


def run_local_search_restarts(
    instance: MROAMInstance,
    seed_ids_per_restart: list,
    *,
    neighborhood: str,
    min_improvement: float,
    max_sweeps: int | None,
    engine: str,
    workers: int,
) -> list[dict]:
    """Run one restart per pre-drawn seed-id array; results in restart order.

    Each result dict carries ``owners``, ``total_regret``, and the restart's
    ``stats`` counters, exactly what the serial loop accumulates per restart.
    """
    params = {
        "neighborhood": neighborhood,
        "min_improvement": min_improvement,
        "max_sweeps": max_sweeps,
        "engine": engine,
    }
    payloads = [(params, seed_ids) for seed_ids in seed_ids_per_restart]
    return _map_over_shared_instance(
        instance, _local_search_restart, payloads, workers
    )


def _annealing_chain(instance: MROAMInstance, payload: tuple) -> dict:
    from repro.algorithms.annealing import anneal_chain

    steps, initial_temperature, cooling, rng = payload
    chain = anneal_chain(instance, steps, initial_temperature, cooling, rng)
    best = chain.pop("best")
    chain["owners"] = np.asarray(best.owners).copy()
    return chain


def run_annealing_chains(
    instance: MROAMInstance,
    seeds: list,
    *,
    steps: int,
    initial_temperature: float | None,
    cooling: float,
    workers: int,
) -> list[dict]:
    """Run one annealing chain per seed; results in chain order.

    Returns :func:`repro.algorithms.annealing.anneal_chain` dicts with the
    best plan rebuilt against the caller's instance (workers ship back the
    owner vector, never an allocation).
    """
    payloads = [(steps, initial_temperature, cooling, seed) for seed in seeds]
    chains = _map_over_shared_instance(instance, _annealing_chain, payloads, workers)
    for chain in chains:
        chain["best"] = allocation_from_owners(instance, chain.pop("owners"))
    return chains
