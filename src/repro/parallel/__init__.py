"""Zero-copy process parallelism: shared-memory coverage + restart fan-out.

``repro.parallel.shared`` owns shared-memory segment lifecycle
(create/attach/unlink with atexit cleanup); ``repro.parallel.restarts``
drives multi-restart local search and multi-chain annealing over worker
pools that attach the coverage index instead of unpickling a copy.
"""

from repro.parallel.restarts import (
    allocation_from_owners,
    run_annealing_chains,
    run_local_search_restarts,
)
from repro.parallel.shared import (
    SharedArraySpec,
    SharedCoverage,
    SharedCoverageSpec,
    attach_array,
)

__all__ = [
    "SharedArraySpec",
    "SharedCoverage",
    "SharedCoverageSpec",
    "allocation_from_owners",
    "attach_array",
    "run_annealing_chains",
    "run_local_search_restarts",
]
