"""Zero-copy process parallelism: shared-memory coverage + restart fan-out.

``repro.parallel.shared`` owns shared-memory segment lifecycle
(create/attach/unlink with atexit cleanup); ``repro.parallel.pool`` keeps
worker pools alive across driver calls (spawn once per ``(owner, workers)``
pair, reuse until the owner dies); ``repro.parallel.restarts`` drives
multi-restart local search and multi-chain annealing over those pools,
whose workers attach the coverage index instead of unpickling a copy.
"""

from repro.parallel.pool import (
    PersistentPool,
    SharedInstancePool,
    close_all_pools,
    effective_workers,
    instance_pool,
    pool_for,
)
from repro.parallel.restarts import (
    allocation_from_owners,
    run_annealing_chains,
    run_local_search_restarts,
)
from repro.parallel.shared import (
    SharedArraySpec,
    SharedCoverage,
    SharedCoverageSpec,
    attach_array,
)

__all__ = [
    "PersistentPool",
    "SharedArraySpec",
    "SharedCoverage",
    "SharedCoverageSpec",
    "SharedInstancePool",
    "allocation_from_owners",
    "attach_array",
    "close_all_pools",
    "effective_workers",
    "instance_pool",
    "pool_for",
    "run_annealing_chains",
    "run_local_search_restarts",
]
