"""Advertiser generation (paper Section 7.1.3).

Given the host's supply ``I*`` and the two workload ratios:

* advertiser count: ``|A| = round(α / p(Ī^A))``;
* demand: ``I_i = ⌊ω · I* · p(Ī^A)⌋`` with ``ω ~ Uniform[0.8, 1.2]``;
* payment: ``L_i = ⌊ε · I_i⌋`` with ``ε ~ Uniform[0.9, 1.1]``.
"""

from __future__ import annotations

from repro.core.advertiser import Advertiser
from repro.utils.rng import as_generator

OMEGA_RANGE = (0.8, 1.2)
EPSILON_RANGE = (0.9, 1.1)


def advertiser_count(alpha: float, p_avg: float) -> int:
    """``|A| = round(α / p)`` — e.g. α=100 %, p=5 % ⇒ 20 advertisers."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if p_avg <= 0:
        raise ValueError(f"p_avg must be positive, got {p_avg}")
    return max(1, int(round(alpha / p_avg)))


def generate_advertisers(
    supply: int,
    alpha: float,
    p_avg: float,
    seed=None,
) -> list[Advertiser]:
    """Sample the advertiser set for one experiment cell.

    Parameters
    ----------
    supply:
        The host's supply ``I* = Σ_o I({o})``.
    alpha:
        Demand–supply ratio (e.g. ``1.0`` for the paper's "full" setting).
    p_avg:
        Average-individual demand ratio (e.g. ``0.05`` default).
    seed:
        RNG seed or generator.
    """
    if supply <= 0:
        raise ValueError(f"supply must be positive, got {supply}")
    rng = as_generator(seed)
    count = advertiser_count(alpha, p_avg)
    advertisers = []
    for advertiser_id in range(count):
        omega = rng.uniform(*OMEGA_RANGE)
        demand = max(1, int(omega * supply * p_avg))
        epsilon = rng.uniform(*EPSILON_RANGE)
        payment = float(max(1, int(epsilon * demand)))
        advertisers.append(Advertiser(advertiser_id, demand, payment))
    return advertisers
