"""Market model: advertiser generation from the paper's workload knobs.

The paper parameterizes demand at two levels (Section 7.1.3):

* the **demand–supply ratio** ``α = I^A / I*`` — global demand relative to
  the host's supply;
* the **average-individual demand ratio** ``p(Ī^A) = Ī^A / I*`` — how big
  each advertiser is.

Together they determine the advertiser count ``|A| = α / p`` and each
advertiser's demand and payment.
"""

from repro.market.demand import advertiser_count, generate_advertisers
from repro.market.incremental import QuoteWorkspace
from repro.market.online import OnlineHost, Quote, QuoteToken
from repro.market.scenario import Scenario

__all__ = [
    "OnlineHost",
    "Quote",
    "QuoteToken",
    "QuoteWorkspace",
    "Scenario",
    "advertiser_count",
    "generate_advertisers",
]
