"""Scenario: one fully specified experiment cell.

A scenario fixes the dataset, corpus scale, and the four paper parameters
(α, p(Ī^A), γ, λ) plus a seed, and can build the corresponding
:class:`~repro.core.problem.MROAMInstance`.  Passing an existing
:class:`~repro.datasets.synthetic.CityDataset` lets a sweep reuse one city
(and its cached coverage indices) across many cells, which is how the
harness keeps parameter sweeps fast and comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.problem import MROAMInstance
from repro.datasets import generate_city
from repro.datasets.synthetic import CityDataset
from repro.market.demand import generate_advertisers
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class Scenario:
    """One experiment cell (defaults = the paper's bold Table 6 values)."""

    dataset: str = "nyc"
    n_billboards: int | None = None  # None = dataset default
    n_trajectories: int | None = None
    alpha: float = 1.0
    p_avg: float = 0.05
    gamma: float = 0.5
    lambda_m: float = 100.0
    seed: int = 0

    def with_params(self, **overrides) -> "Scenario":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def build_city(self) -> CityDataset:
        """Generate the city for this scenario's dataset and scale."""
        kwargs: dict = {"seed": self.seed}
        if self.n_billboards is not None:
            kwargs["n_billboards"] = self.n_billboards
        if self.n_trajectories is not None:
            kwargs["n_trajectories"] = self.n_trajectories
        return generate_city(self.dataset, **kwargs)

    def build_instance(self, city: CityDataset | None = None) -> MROAMInstance:
        """Build the MROAM instance for this cell.

        Parameters
        ----------
        city:
            Optional pre-generated city to reuse (must match ``dataset``);
            when omitted a fresh one is generated from the scenario seed.
        """
        if city is None:
            city = self.build_city()
        coverage = city.coverage(self.lambda_m)
        # Derive the advertiser RNG from the scenario seed plus the market
        # knobs so different cells draw different contracts but the same cell
        # is reproducible.
        advertiser_seed = as_generator(
            (self.seed, int(self.alpha * 1000), int(self.p_avg * 10_000), int(self.lambda_m))
        )
        advertisers = generate_advertisers(
            coverage.supply, self.alpha, self.p_avg, seed=advertiser_seed
        )
        return MROAMInstance(coverage, advertisers, gamma=self.gamma)
