"""Online host operations: proposals arriving one at a time.

The paper's introduction motivates MROAM with hosts that "deal with multiple
advertisers coming every day".  The batch solvers answer "given today's full
proposal book, what is the best partition?"; this module layers the daily
workflow on top:

* :meth:`OnlineHost.quote` — price an incoming proposal without committing:
  how much would total regret change if we accepted it and locally repaired
  the plan?
* :meth:`OnlineHost.accept` — commit the proposal and adopt the repaired
  plan.
* :meth:`OnlineHost.reoptimize` — run the full randomized local search over
  the current book (e.g. nightly).

Repair = serve the newcomer with the synchronous greedy over the free pool,
then a bounded billboard-driven local search — the same building blocks as
the paper's Algorithm 5, reused incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


@dataclass(frozen=True)
class Quote:
    """The host's answer to "what would accepting this proposal cost me?"."""

    advertiser_name: str
    demand: int
    payment: float
    regret_before: float
    regret_after: float
    would_satisfy: bool

    @property
    def regret_delta(self) -> float:
        """Regret change from accepting (negative = the book improves)."""
        return self.regret_after - self.regret_before

    @property
    def attractive(self) -> bool:
        """A proposal worth taking: the repaired plan's regret does not grow.

        Accepting an unsatisfiable proposal adds (part of) its payment as
        fresh unsatisfied penalty; accepting a serviceable one typically
        leaves regret unchanged or lower.
        """
        return self.regret_delta <= 1e-9


class OnlineHost:
    """A host managing a growing proposal book over a fixed inventory."""

    def __init__(
        self,
        coverage: CoverageIndex,
        gamma: float = 0.5,
        repair_sweeps: int = 2,
        seed: int = 0,
    ) -> None:
        if repair_sweeps < 0:
            raise ValueError(f"repair_sweeps must be non-negative, got {repair_sweeps}")
        self.coverage = coverage
        self.gamma = gamma
        self.repair_sweeps = repair_sweeps
        self.seed = seed
        self._advertisers: list[Advertiser] = []
        self._allocation: Allocation | None = None

    # ------------------------------------------------------------------ state

    @property
    def advertisers(self) -> tuple[Advertiser, ...]:
        return tuple(self._advertisers)

    @property
    def allocation(self) -> Allocation | None:
        """The current plan (``None`` until the first acceptance)."""
        return self._allocation

    def total_regret(self) -> float:
        return self._allocation.total_regret() if self._allocation else 0.0

    def instance(self) -> MROAMInstance:
        """The MROAM instance of the current book."""
        if not self._advertisers:
            raise ValueError("the proposal book is empty")
        return MROAMInstance(self.coverage, self._advertisers, gamma=self.gamma)

    # ------------------------------------------------------------- operations

    def _extended(self, demand: int, payment: float, name: str):
        """Instance + carried-over allocation with the new proposal appended."""
        newcomer = Advertiser(len(self._advertisers), demand, payment, name=name)
        instance = MROAMInstance(
            self.coverage, [*self._advertisers, newcomer], gamma=self.gamma
        )
        allocation = Allocation(instance)
        if self._allocation is not None:
            for advertiser_id in range(len(self._advertisers)):
                for billboard_id in self._allocation.billboards_of(advertiser_id):
                    allocation.assign(billboard_id, advertiser_id)
        return newcomer, instance, allocation

    def _repair(self, allocation: Allocation, newcomer_id: int) -> Allocation:
        """Serve the newcomer from the free pool, then bounded local search."""
        synchronous_greedy(allocation, active={newcomer_id})
        if self.repair_sweeps:
            allocation = billboard_driven_local_search(
                allocation, max_sweeps=self.repair_sweeps
            )
        return allocation

    def quote(self, demand: int, payment: float, name: str = "") -> Quote:
        """Price a proposal without changing the host's state.

        Timed under the ``quote.price`` span: its histogram's p50/p95/p99
        are the quoting-latency numbers the online-service work needs.
        """
        with obs.span("quote.price", demand=int(demand)):
            newcomer, _, allocation = self._extended(demand, payment, name)
            before = self.total_regret()
            repaired = self._repair(allocation, newcomer.advertiser_id)
        return Quote(
            advertiser_name=name,
            demand=demand,
            payment=payment,
            regret_before=before,
            regret_after=repaired.total_regret(),
            would_satisfy=repaired.is_satisfied(newcomer.advertiser_id),
        )

    def accept(self, demand: int, payment: float, name: str = "") -> Quote:
        """Commit a proposal: extend the book and adopt the repaired plan."""
        with obs.span("quote.accept", demand=int(demand)):
            newcomer, _, allocation = self._extended(demand, payment, name)
            before = self.total_regret()
            repaired = self._repair(allocation, newcomer.advertiser_id)
            self._advertisers.append(newcomer)
            self._allocation = repaired
        return Quote(
            advertiser_name=name,
            demand=demand,
            payment=payment,
            regret_before=before,
            regret_after=repaired.total_regret(),
            would_satisfy=repaired.is_satisfied(newcomer.advertiser_id),
        )

    def reoptimize(self, restarts: int = 3) -> float:
        """Full randomized local search over the whole book (e.g. nightly).

        Returns the new total regret.  Keeps the better of the incumbent and
        the freshly searched plan.
        """
        if not self._advertisers:
            return 0.0
        result = RandomizedLocalSearch(
            neighborhood="bls", restarts=restarts, seed=self.seed
        ).solve(self.instance())
        if self._allocation is None or result.total_regret < self.total_regret():
            self._allocation = result.allocation
        return self.total_regret()
