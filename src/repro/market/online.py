"""Online host operations: proposals arriving one at a time.

The paper's introduction motivates MROAM with hosts that "deal with multiple
advertisers coming every day".  The batch solvers answer "given today's full
proposal book, what is the best partition?"; this module layers the daily
workflow on top:

* :meth:`OnlineHost.quote` — price an incoming proposal without committing:
  how much would total regret change if we accepted it and locally repaired
  the plan?
* :meth:`OnlineHost.accept` — commit the proposal and adopt the repaired
  plan (equivalent to ``commit(quote(...))``).
* :meth:`OnlineHost.commit` — commit a previously returned quote's token:
  the repair computed while pricing is adopted, not recomputed.
* :meth:`OnlineHost.quote_many` — price a batch of independent proposals,
  optionally fanned across the instance's persistent worker pool.
* :meth:`OnlineHost.reoptimize` — run the full randomized local search over
  the current book (e.g. nightly).

Repair = serve the newcomer with the synchronous greedy over the free pool,
then a bounded billboard-driven local search (the shared
:func:`~repro.algorithms.repair.bounded_repair` pass).  Two pricing engines
produce bit-identical quotes (DESIGN.md §15):

* ``pricing="incremental"`` (default) — one journaled allocation lives
  across quotes; a quote repairs it in place, records the deltas, and rolls
  back in O(moves touched); sweep certificates and regret caches stay warm.
* ``pricing="full"`` — rebuild the extended instance and copy the plan per
  quote; the from-scratch baseline the equivalence tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import env, obs
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.algorithms.repair import bounded_repair
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.market.incremental import QuoteWorkspace, _price_chunk
from repro.parallel.pool import instance_pool

#: The available quote-pricing engines (see module docstring).
PRICING_MODES = ("incremental", "full")


@dataclass(frozen=True)
class QuoteToken:
    """Commit material for one priced proposal.

    Valid only against the book version it was priced at: any accepted
    proposal or adopted reoptimization in between invalidates it (the
    recorded repair was computed against a plan that no longer exists).
    """

    newcomer: Advertiser
    book_version: int
    #: Incremental path: the journal slice + sweep snapshot to replay.
    entries: tuple = ()
    post_state: tuple | None = None
    #: Full path: the already-repaired extended allocation to adopt.
    repaired: Allocation | None = field(default=None, repr=False)


@dataclass(frozen=True)
class Quote:
    """The host's answer to "what would accepting this proposal cost me?"."""

    advertiser_name: str
    demand: int
    payment: float
    regret_before: float
    regret_after: float
    would_satisfy: bool
    #: Commit material (``None`` for pool-priced batch quotes, which are
    #: price-only).  Excluded from equality so quotes from different pricing
    #: engines compare on their numbers alone.
    token: QuoteToken | None = field(default=None, repr=False, compare=False)

    @property
    def regret_delta(self) -> float:
        """Regret change from accepting (negative = the book improves)."""
        return self.regret_after - self.regret_before

    @property
    def attractive(self) -> bool:
        """A proposal worth taking: the repaired plan's regret does not grow.

        Accepting an unsatisfiable proposal adds (part of) its payment as
        fresh unsatisfied penalty; accepting a serviceable one typically
        leaves regret unchanged or lower.
        """
        return self.regret_delta <= 1e-9


class OnlineHost:
    """A host managing a growing proposal book over a fixed inventory."""

    def __init__(
        self,
        coverage: CoverageIndex,
        gamma: float = 0.5,
        repair_sweeps: int = 2,
        seed: int = 0,
        pricing: str | None = None,
    ) -> None:
        if repair_sweeps < 0:
            raise ValueError(f"repair_sweeps must be non-negative, got {repair_sweeps}")
        if pricing is None:
            pricing = str(env.QUOTE_PRICING.get())
        if pricing not in PRICING_MODES:
            raise ValueError(
                f"unknown pricing {pricing!r}; expected one of {PRICING_MODES}"
            )
        self.coverage = coverage
        self.gamma = gamma
        self.repair_sweeps = repair_sweeps
        self.seed = seed
        self.pricing = pricing
        self._advertisers: list[Advertiser] = []
        self._allocation: Allocation | None = None
        self._book_version = 0
        self._workspace: QuoteWorkspace | None = (
            QuoteWorkspace(coverage, gamma=gamma, repair_sweeps=repair_sweeps)
            if pricing == "incremental"
            else None
        )
        # The book instance handed to worker pools, rebuilt per book version
        # (pools key on the instance object, so reusing it keeps them warm).
        self._pool_instance: MROAMInstance | None = None
        self._pool_instance_version = -1

    # ------------------------------------------------------------------ state

    @property
    def advertisers(self) -> tuple[Advertiser, ...]:
        return tuple(self._advertisers)

    @property
    def allocation(self) -> Allocation | None:
        """The current plan (``None`` until the first acceptance).

        On the incremental path this is the live journaled allocation over
        the extended instance (book + one empty ghost slot); the ghost owns
        nothing and contributes ``0.0`` regret, so it reads exactly like the
        book plan.
        """
        if self.pricing == "incremental":
            return self._workspace.allocation if self._advertisers else None
        return self._allocation

    def total_regret(self) -> float:
        if self.pricing == "incremental":
            return self._workspace.book_regret() if self._advertisers else 0.0
        return self._allocation.total_regret() if self._allocation else 0.0

    def instance(self) -> MROAMInstance:
        """The MROAM instance of the current book."""
        if not self._advertisers:
            raise ValueError("the proposal book is empty")
        return MROAMInstance(self.coverage, self._advertisers, gamma=self.gamma)

    # ------------------------------------------------------------- operations

    def _extended(self, demand: int, payment: float, name: str):
        """Instance + carried-over allocation with the new proposal appended."""
        newcomer = Advertiser(len(self._advertisers), demand, payment, name=name)
        instance = MROAMInstance(
            self.coverage, [*self._advertisers, newcomer], gamma=self.gamma
        )
        allocation = Allocation(instance)
        if self._allocation is not None:
            allocation.copy_assignments_from(self._allocation)
        return newcomer, instance, allocation

    def _price(self, demand: int, payment: float, name: str) -> Quote:
        """Price one proposal on the configured engine; state is unchanged."""
        if self.pricing == "incremental":
            workspace = self._workspace
            newcomer = Advertiser(
                workspace.newcomer_slot, demand, payment, name=name
            )
            priced = workspace.price(newcomer)
            regret_before = priced.regret_before
            regret_after = priced.regret_after
            would_satisfy = priced.would_satisfy
            token = QuoteToken(
                newcomer=newcomer,
                book_version=self._book_version,
                entries=priced.entries,
                post_state=priced.post_state,
            )
        else:
            newcomer, _, allocation = self._extended(demand, payment, name)
            regret_before = self.total_regret()
            repaired = bounded_repair(
                allocation, newcomer.advertiser_id, self.repair_sweeps
            )
            regret_after = repaired.total_regret()
            would_satisfy = repaired.is_satisfied(newcomer.advertiser_id)
            token = QuoteToken(
                newcomer=newcomer,
                book_version=self._book_version,
                repaired=repaired,
            )
        return Quote(
            advertiser_name=name,
            demand=demand,
            payment=payment,
            regret_before=regret_before,
            regret_after=regret_after,
            would_satisfy=would_satisfy,
            token=token,
        )

    def quote(self, demand: int, payment: float, name: str = "") -> Quote:
        """Price a proposal without changing the host's state.

        Timed under the ``quote.price`` span: its histogram's p50/p95/p99
        are the quoting-latency numbers the online-service work needs.
        """
        with obs.span("quote.price", demand=int(demand)):
            return self._price(demand, payment, name)

    def commit(self, quote: "Quote | QuoteToken") -> None:
        """Adopt a priced proposal's repair: the token's plan becomes live.

        Raises ``ValueError`` when the quote carries no token (pool-priced
        batch quotes) or the book changed since it was priced.
        """
        token = quote.token if isinstance(quote, Quote) else quote
        if token is None:
            raise ValueError("quote carries no commit token; re-price it")
        if token.book_version != self._book_version:
            raise ValueError(
                "stale quote token: the book changed since this proposal was "
                "priced; re-quote it"
            )
        if self.pricing == "incremental":
            self._workspace.accept(token.newcomer, token.entries, token.post_state)
        else:
            self._allocation = token.repaired
        self._advertisers.append(token.newcomer)
        self._book_version += 1

    def accept(self, demand: int, payment: float, name: str = "") -> Quote:
        """Commit a proposal: extend the book and adopt the repaired plan."""
        with obs.span("quote.accept", demand=int(demand)):
            quote = self._price(demand, payment, name)
            self.commit(quote)
        return quote

    def quote_many(self, proposals, workers: int | None = None) -> list[Quote]:
        """Price independent proposals as one batch (state unchanged).

        ``proposals`` is a sequence of ``(demand, payment)`` or ``(demand,
        payment, name)`` tuples.  With ``workers >= 2`` (argument or
        ``REPRO_QUOTE_BATCH_WORKERS``) and a non-empty book on the
        incremental engine, the batch fans across the book instance's
        persistent worker pool; pool-priced quotes are price-only (no commit
        token), and their numbers are bit-identical to the serial loop.
        """
        normalized = [
            (proposal[0], proposal[1], proposal[2] if len(proposal) > 2 else "")
            for proposal in proposals
        ]
        if workers is None:
            configured = env.QUOTE_BATCH_WORKERS.get()
            workers = int(configured) if configured is not None else 0
        with obs.span("quote.batch", proposals=len(normalized)):
            if (
                self.pricing == "incremental"
                and self._advertisers
                and workers >= 2
                and len(normalized) >= 2
            ):
                quotes = self._quote_many_parallel(normalized, workers)
                if quotes is not None:
                    return quotes
            return [
                self._price(demand, payment, name)
                for demand, payment, name in normalized
            ]

    def _quote_many_parallel(self, proposals: list, workers: int) -> list | None:
        """Fan a normalized batch across the warm pool; ``None`` = go serial."""
        instance = self._book_instance()
        pool = instance_pool(instance, workers)
        if pool.workers < 2:
            return None
        owners = self._workspace.allocation.owners.copy()
        chunk = -(-len(proposals) // pool.workers)  # ceil division
        payloads = [
            {
                "owners": owners,
                "proposals": proposals[start : start + chunk],
                "repair_sweeps": self.repair_sweeps,
                "min_improvement": self._workspace.min_improvement,
            }
            for start in range(0, len(proposals), chunk)
        ]
        rows = [row for chunk_rows in pool.run(_price_chunk, payloads) for row in chunk_rows]
        return [
            Quote(
                advertiser_name=name,
                demand=demand,
                payment=payment,
                regret_before=regret_before,
                regret_after=regret_after,
                would_satisfy=would_satisfy,
            )
            for (demand, payment, name), (
                regret_before,
                regret_after,
                would_satisfy,
            ) in zip(proposals, rows)
        ]

    def _book_instance(self) -> MROAMInstance:
        """The book instance reused across pool calls at one book version."""
        if self._pool_instance_version != self._book_version:
            self._pool_instance = self.instance()
            self._pool_instance_version = self._book_version
        return self._pool_instance

    def reoptimize(self, restarts: int = 3) -> float:
        """Full randomized local search over the whole book (e.g. nightly).

        Returns the new total regret.  Keeps the better of the incumbent and
        the freshly searched plan; adopting invalidates outstanding quote
        tokens (the book version advances).
        """
        if not self._advertisers:
            return 0.0
        result = RandomizedLocalSearch(
            neighborhood="bls", restarts=restarts, seed=self.seed
        ).solve(self.instance())
        if result.total_regret < self.total_regret():
            if self.pricing == "incremental":
                self._workspace.adopt_book_plan(result.allocation)
            else:
                self._allocation = result.allocation
            self._book_version += 1
        return self.total_regret()
