"""The incremental quote-pricing workspace (DESIGN.md §15).

The from-scratch pricing path rebuilds an extended instance and re-copies
the whole standing plan per quote — O(book) before repair even starts.
:class:`QuoteWorkspace` keeps one *extended* world alive across quotes
instead:

* one :class:`~repro.core.journal.JournaledAllocation` over the book's
  advertisers **plus one spare newcomer slot** (held by a zero-payment ghost
  contract between quotes, which contributes exactly ``0.0`` regret);
* one :class:`~repro.algorithms.sweep.BillboardSweepState` whose version
  certificates survive from quote to quote — sound because a rejected quote
  rolls the allocation back to exactly the state the certificates were
  earned against;
* the journal's per-advertiser regret cache, invalidated by the very deltas
  the journal records.

Pricing a proposal mutates the spare slot's contract in place, repairs
around it (greedy + bounded BLS through
:func:`~repro.algorithms.repair.bounded_repair`), captures the journal
slice and a sweep-state snapshot as the commit token, and rolls everything
back.  Accepting replays the recorded deltas — the repair is never
recomputed.  Every float the caller sees is produced by the same operations
in the same order as the from-scratch path, so quotes are bit-identical
(the property tests in ``tests/market/test_online_incremental.py`` hold the
two paths in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.repair import bounded_repair, settle_certificates
from repro.algorithms.sweep import BillboardSweepState
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.journal import JournaledAllocation
from repro.core.problem import MROAMInstance


def _ghost(slot: int) -> Advertiser:
    """The idle contract of the spare slot: demand 1, payment 0.

    Zero payment makes both branches of Eq. 1 evaluate to exactly ``0.0``,
    so the ghost never perturbs a regret sum (``x + 0.0 == x`` in IEEE 754).
    """
    return Advertiser(slot, 1, 0.0, name="__ghost__")


@dataclass(frozen=True)
class PricedProposal:
    """One priced (and rolled-back) proposal plus its commit material."""

    newcomer: Advertiser
    regret_before: float
    regret_after: float
    would_satisfy: bool
    #: Journal slice that rebuilds the repaired plan via ``replay``.
    entries: tuple
    #: Sweep-state snapshot taken at the repaired plan (restored on accept).
    post_state: tuple


class QuoteWorkspace:
    """Long-lived pricing state: book + spare slot, journaled, warm."""

    def __init__(
        self,
        coverage: CoverageIndex,
        gamma: float = 0.5,
        repair_sweeps: int = 2,
        min_improvement: float = 1e-9,
        advertisers: Sequence[Advertiser] = (),
        allocation: Allocation | None = None,
    ) -> None:
        self._coverage = coverage
        self._gamma = float(gamma)
        self.repair_sweeps = repair_sweeps
        self.min_improvement = min_improvement
        self._book: list[Advertiser] = list(advertisers)
        self._rebuild(allocation)

    def _rebuild(self, book_allocation: Allocation | None) -> None:
        """Cold start: fresh extended instance, allocation, and sweep state."""
        slot = len(self._book)
        self._ghost = _ghost(slot)
        self._ext = MROAMInstance(
            self._coverage, [*self._book, self._ghost], gamma=self._gamma
        )
        self.allocation = JournaledAllocation(self._ext)
        if book_allocation is not None:
            self.allocation.copy_assignments_from(book_allocation)
        self.allocation.journal_enable()
        self.state = BillboardSweepState(slot + 1, self._coverage.num_billboards)
        if self._book:
            self.settle()

    def settle(self) -> None:
        """Re-certify the sweep state against the standing plan (no moves).

        Called after every book change: a bounded repair stops at
        ``max_sweeps`` before re-certifying its last accepted moves, leaving
        the carried state half-stale — and every later quote would then
        screen against a changed-candidate pool of half the inventory.  One
        verdict-only screen pass (see
        :func:`~repro.algorithms.repair.settle_certificates`) brings the
        certificates current, so the next quote's sweeps are restricted to
        the newcomer's own dirty set.
        """
        settle_certificates(self.allocation, self.state, self.min_improvement)

    # ------------------------------------------------------------------ state

    @property
    def newcomer_slot(self) -> int:
        """Index of the spare slot newcomers are priced in."""
        return len(self._book)

    @property
    def book(self) -> tuple[Advertiser, ...]:
        return tuple(self._book)

    def book_regret(self) -> float:
        """Total regret of the booked advertisers (slot excluded).

        Summed in id order over the journal's regret cache — the identical
        floats, in the identical order, as the book allocation's
        ``total_regret()`` on the from-scratch path.
        """
        return float(sum(self.allocation.regret(i) for i in range(len(self._book))))

    def _set_slot(self, advertiser: Advertiser) -> None:
        """Point the spare slot's contract at ``advertiser`` (in place)."""
        slot = self.newcomer_slot
        self._ext.advertisers[slot] = advertiser
        self._ext.demands[slot] = advertiser.demand
        self._ext.payments[slot] = advertiser.payment
        self.allocation.invalidate_regret(slot)

    # ------------------------------------------------------------- operations

    def price(self, newcomer: Advertiser) -> PricedProposal:
        """Repair around ``newcomer`` in the spare slot, record, roll back.

        Leaves the workspace byte-identical to before the call (journal
        rollback + sweep-state restore + ghost contract back in the slot);
        the returned :class:`PricedProposal` carries everything
        :meth:`accept` needs to commit the repair without recomputing it.
        """
        slot = self.newcomer_slot
        if newcomer.advertiser_id != slot:
            raise ValueError(
                f"newcomer id must be the spare slot {slot}, "
                f"got {newcomer.advertiser_id}"
            )
        self._set_slot(newcomer)
        before = self.book_regret()
        pre_state = self.state.snapshot()
        mark = self.allocation.journal_mark()
        repaired = bounded_repair(
            self.allocation,
            slot,
            self.repair_sweeps,
            state=self.state,
            min_improvement=self.min_improvement,
        )
        if repaired is not self.allocation:
            raise RuntimeError("incremental repair must keep the journaled object")
        after = self.allocation.total_regret()
        would_satisfy = self.allocation.is_satisfied(slot)
        entries = self.allocation.journal_entries(mark)
        post_state = self.state.snapshot()
        self.allocation.rollback_to(mark)
        self.state.restore(pre_state)
        self._set_slot(self._ghost)
        return PricedProposal(
            newcomer=newcomer,
            regret_before=float(before),
            regret_after=float(after),
            would_satisfy=bool(would_satisfy),
            entries=entries,
            post_state=post_state,
        )

    def accept(self, newcomer: Advertiser, entries: tuple, post_state: tuple) -> None:
        """Commit a priced proposal: replay its deltas, grow the book.

        The replayed journal slice reproduces the repaired plan exactly
        (assign/release are deterministic in their arguments), the restored
        sweep snapshot revalidates the certificates earned while pricing,
        and a fresh ghost slot is appended for the next newcomer.
        """
        self._set_slot(newcomer)
        self.allocation.replay(entries)
        self.state.restore(post_state)
        self.allocation.journal_commit()
        self._book.append(newcomer)
        slot = len(self._book)
        self._ghost = _ghost(slot)
        self._ext = MROAMInstance(
            self._coverage, [*self._book, self._ghost], gamma=self._gamma
        )
        self.allocation.grow(self._ext)
        self.state.grow_advertisers(slot + 1)
        self.settle()

    def adopt_book_plan(self, book_allocation: Allocation) -> None:
        """Adopt a from-scratch plan over the book (e.g. after reoptimize).

        Bulk-copies the assignments and cold-starts the sweep state — every
        certificate was earned against the replaced plan.
        """
        self.allocation.copy_assignments_from(book_allocation)
        self.state = BillboardSweepState(
            self.newcomer_slot + 1, self._coverage.num_billboards
        )
        self.settle()

    def install_owners(self, owners: np.ndarray) -> None:
        """Rebuild a shipped owner vector into the (empty) allocation.

        Used by pool workers: the parent ships its book plan as the compact
        owner vector, and replaying it as assigns reproduces the counter
        rows, influence vector, and sets exactly (integer adds commute).
        """
        owners = np.asarray(owners)
        self.allocation.replay(
            ("assign", int(billboard_id), int(owners[billboard_id]))
            for billboard_id in np.nonzero(owners != UNASSIGNED)[0]
        )


def _price_chunk(instance: MROAMInstance, payload: dict) -> list:
    """Pool runner: price a chunk of proposals against a shipped book plan.

    Runs in a worker against the attached *book* instance (which never
    mutates — the newcomer slot lives only in the worker's private
    workspace).  A cold workspace prices bit-identically to the parent's
    warm one (DESIGN.md §15), so the fan-out changes wall-clock only.
    """
    workspace = QuoteWorkspace(
        instance.coverage,
        gamma=instance.gamma,
        repair_sweeps=payload["repair_sweeps"],
        min_improvement=payload["min_improvement"],
        advertisers=instance.advertisers,
    )
    owners = payload["owners"]
    if owners is not None:
        workspace.install_owners(owners)
        workspace.settle()
    slot = workspace.newcomer_slot
    results = []
    for demand, payment, name in payload["proposals"]:
        priced = workspace.price(Advertiser(slot, demand, payment, name=name))
        results.append(
            (priced.regret_before, priced.regret_after, priced.would_satisfy)
        )
    return results
