"""Central registry of every ``REPRO_*`` environment knob.

Every environment variable the library reads is declared here as an
:class:`EnvKnob` — name, default, parser, one-line doc — and read through
the knob's accessors.  The ``env-registry`` lint rule (``repro lint``)
rejects any ``os.environ`` / ``os.getenv`` *read* of a ``REPRO_*`` key
outside this module, and ``scripts/gen_env_docs.py`` generates the README
knob table from these declarations, so the docs cannot drift from the code.

Writes (``os.environ[...] = value``) remain legal everywhere: environment
variables are the repo's cross-process transport (the CLI exports knobs so
forked pool workers inherit them), and only *reads* need a single source of
truth.  Use :func:`temporary` to set-and-restore a knob around a benchmark
section instead of hand-rolled save/restore.

Parsers take the raw string and return the typed value; they are only
invoked when the variable is set, so ``default`` is returned untouched
(``get()``) when the environment says nothing.  Modules with bespoke
validation (e.g. the bitmap storage-mode whitelist) read ``raw()`` and keep
their own error messages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

#: Strings accepted as "true" by :func:`parse_bool` (case-insensitive).
TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def parse_bool(raw: str) -> bool:
    """``"1"/"true"/"yes"/"on"`` (any case) → True, everything else False."""
    return raw.strip().lower() in TRUE_VALUES


def parse_nonempty(raw: str) -> str | None:
    """The string itself, or ``None`` for empty / whitespace-only values."""
    return raw if raw.strip() else None


@dataclass(frozen=True)
class EnvKnob:
    """One declared environment knob: the single place its read happens."""

    name: str
    default: object
    parser: Callable[[str], object]
    doc: str
    #: Where the knob surfaces besides the environment ("--bitmap-storage",
    #: "constructor argument", ...) — documentation only.
    cli: str = field(default="", compare=False)

    def raw(self) -> str | None:
        """The raw environment string, or ``None`` when unset."""
        return os.environ.get(self.name)

    def is_set(self) -> bool:
        """Whether the variable is present *and* non-empty."""
        raw = self.raw()
        return raw is not None and bool(raw)

    def get(self) -> object:
        """The parsed value, or ``default`` when the variable is unset.

        Parser exceptions propagate — a malformed knob should fail loudly at
        the read site, with the variable name in the message.
        """
        raw = self.raw()
        if raw is None:
            return self.default
        return self.parser(raw)


#: Declaration order is presentation order in the generated docs table.
REGISTRY: dict[str, EnvKnob] = {}


def _declare(knob: EnvKnob) -> EnvKnob:
    if knob.name in REGISTRY:
        raise ValueError(f"duplicate env knob declaration: {knob.name}")
    REGISTRY[knob.name] = knob
    return knob


def knob(name: str) -> EnvKnob:
    """Look up a declared knob by variable name (KeyError when undeclared)."""
    return REGISTRY[name]


class temporary:
    """Context manager: set (or unset) a knob for a scope, then restore.

    ``value=None`` removes the variable for the scope.  Used by the bench
    scripts to pin a knob per measured section without hand-rolled
    save/restore of ``os.environ``.
    """

    def __init__(self, name: str, value: str | None) -> None:
        self.name = name
        self.value = value
        self._previous: str | None = None

    def __enter__(self) -> "temporary":
        self._previous = os.environ.get(self.name)
        if self.value is None:
            os.environ.pop(self.name, None)
        else:
            os.environ[self.name] = str(self.value)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(self.name, None)
        else:
            os.environ[self.name] = self._previous


# --------------------------------------------------------------- coverage


COVERAGE_CACHE = _declare(
    EnvKnob(
        name="REPRO_COVERAGE_CACHE",
        default=None,
        parser=parse_nonempty,
        doc="Directory caching coverage indices on disk, keyed by a content "
        "fingerprint of (city, λ, meet-test mode, bitmap config); unset "
        "disables caching.",
    )
)

COVERAGE_CHUNK_SIZE = _declare(
    EnvKnob(
        name="REPRO_COVERAGE_CHUNK_SIZE",
        default=None,
        parser=int,
        doc="Stream the coverage build N trajectories at a time (peak build "
        "memory O(N)); unset builds single-shot.",
        cli="--coverage-chunk-size N",
    )
)

BITMAP_BUDGET_MB = _declare(
    EnvKnob(
        name="REPRO_BITMAP_BUDGET_MB",
        default=512.0,
        parser=float,
        doc="Packed-bitmap influence kernel memory budget in megabytes "
        "(0 disables the bitmap kernel); results are bit-identical either "
        "way.",
        cli="bitmap_budget_mb=",
    )
)

BITMAP_STORAGE = _declare(
    EnvKnob(
        name="REPRO_BITMAP_STORAGE",
        default="auto",
        parser=str,
        doc="Bitmap storage tier: auto (RAM within budget, memmap spill past "
        "it), ram, memmap, or none; every tier is bit-identical.",
        cli="--bitmap-storage",
    )
)

BITMAP_SPILL_DIR = _declare(
    EnvKnob(
        name="REPRO_BITMAP_SPILL_DIR",
        default=None,
        parser=parse_nonempty,
        doc="Directory for memmap bitmap shards; defaults to "
        "$REPRO_COVERAGE_CACHE/bitmap-shards when only the cache is set.",
    )
)

NUMBA = _declare(
    EnvKnob(
        name="REPRO_NUMBA",
        default=False,
        parser=parse_bool,
        doc="Opt in to numba-compiled popcount kernels (~2-4x on large "
        "matrices, bit-identical); warns once and falls back to numpy when "
        "numba is not importable.",
    )
)


# --------------------------------------------------------------- solvers


SCREEN_MIN_CELLS = _declare(
    EnvKnob(
        name="REPRO_SCREEN_MIN_CELLS",
        default=1 << 17,
        parser=int,
        doc="Round-cell threshold (screened rows × inventory) above which "
        "BLS dirty-engine screen rounds fan out to the persistent pool; "
        "smaller rounds stay serial.",
        cli="screen_workers=",
    )
)

POOL_OVERSUBSCRIBE = _declare(
    EnvKnob(
        name="REPRO_POOL_OVERSUBSCRIBE",
        default=False,
        parser=lambda raw: bool(raw),
        doc="Lift the CPU-affinity cap on worker-pool sizes (any non-empty "
        "value); for attribution runs on small hosts, not timing runs.",
    )
)


# ----------------------------------------------------------------- market


QUOTE_PRICING = _declare(
    EnvKnob(
        name="REPRO_QUOTE_PRICING",
        default="incremental",
        parser=str,
        doc="OnlineHost pricing engine: incremental (journaled allocation, "
        "warm restricted repair) or full (rebuild-from-scratch baseline); "
        "quotes are bit-identical either way.",
        cli="pricing=",
    )
)

QUOTE_BATCH_WORKERS = _declare(
    EnvKnob(
        name="REPRO_QUOTE_BATCH_WORKERS",
        default=None,
        parser=int,
        doc="Worker count for quote_many batch pricing over the shared "
        "instance pool; unset (or < 2) prices the batch serially.",
        cli="workers=",
    )
)


# ----------------------------------------------------------- observability


OBS_OUT = _declare(
    EnvKnob(
        name="REPRO_OBS_OUT",
        default=None,
        parser=parse_nonempty,
        doc="Write the observability run log (spans, counters, solver "
        "telemetry) to this JSONL path; setting it enables collection.",
        cli="--obs-out PATH",
    )
)

OBS_TRACE = _declare(
    EnvKnob(
        name="REPRO_OBS_TRACE",
        default=None,
        parser=parse_nonempty,
        doc="Write a clock-aligned Chrome/Perfetto trace (pid-attributed "
        "spans across worker pools) to this JSON path.",
        cli="--trace-out PATH",
    )
)

OBS_LEDGER = _declare(
    EnvKnob(
        name="REPRO_OBS_LEDGER",
        default=None,
        parser=parse_nonempty,
        doc="Append one JSONL record per harness cell / bench section "
        "(commit, instance features, outcome) to this ledger path.",
        cli="--ledger PATH",
    )
)

OBS_SPILL_DIR = _declare(
    EnvKnob(
        name="REPRO_OBS_SPILL_DIR",
        default=None,
        parser=parse_nonempty,
        doc="Directory where pool workers spill their final unshipped obs "
        "snapshot at teardown; exported automatically next to the "
        "configured output, not meant to be set by hand.",
    )
)
