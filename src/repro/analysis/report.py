"""Per-advertiser deployment reports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation


@dataclass(frozen=True)
class AdvertiserReport:
    """One advertiser's row in the host's deployment report."""

    advertiser_id: int
    name: str
    demand: int
    payment: float
    achieved_influence: int
    billboard_count: int
    satisfied: bool
    regret: float
    collectable_revenue: float

    @property
    def fill_rate(self) -> float:
        """Achieved influence over demand (can exceed 1 when over-served)."""
        return self.achieved_influence / self.demand

    def as_row(self) -> str:
        status = "satisfied" if self.satisfied else "UNSATISFIED"
        return (
            f"{self.name or f'a{self.advertiser_id}':<24} "
            f"demand={self.demand:>8,} achieved={self.achieved_influence:>8,} "
            f"({self.fill_rate:>5.0%}) boards={self.billboard_count:>4} "
            f"{status:<12} regret={self.regret:>9.1f} "
            f"collectable=${self.collectable_revenue:,.0f}"
        )


def plan_report(allocation: Allocation) -> list[AdvertiserReport]:
    """Build the deployment report of a plan, one row per advertiser."""
    instance = allocation.instance
    rows = []
    for advertiser in instance.advertisers:
        advertiser_id = advertiser.advertiser_id
        achieved = allocation.influence(advertiser_id)
        rows.append(
            AdvertiserReport(
                advertiser_id=advertiser_id,
                name=advertiser.name,
                demand=advertiser.demand,
                payment=advertiser.payment,
                achieved_influence=achieved,
                billboard_count=len(allocation.billboards_of(advertiser_id)),
                satisfied=achieved >= advertiser.demand,
                regret=instance.regret_of(advertiser_id, achieved),
                collectable_revenue=instance.dual_of(advertiser_id, achieved),
            )
        )
    return rows
