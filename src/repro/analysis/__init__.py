"""Plan analysis: reports and diagnostics on deployment plans.

The solvers return an :class:`~repro.core.allocation.Allocation`; this
package turns one into the artifacts a host actually reads — per-advertiser
deployment reports, market feasibility summaries, and inventory criticality
(which billboards the plan depends on most).
"""

from repro.analysis.report import AdvertiserReport, plan_report
from repro.analysis.inventory import BillboardCriticality, inventory_criticality
from repro.analysis.market import MarketSummary, market_summary

__all__ = [
    "AdvertiserReport",
    "BillboardCriticality",
    "MarketSummary",
    "inventory_criticality",
    "market_summary",
    "plan_report",
]
