"""Market feasibility summaries for an MROAM instance."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import MROAMInstance


@dataclass(frozen=True)
class MarketSummary:
    """Macro view of one instance's demand-supply situation.

    Attributes mirror the quantities the paper's experiment design controls:
    the realized α, the average individual demand ratio, and two feasibility
    indicators — whether the global demand exceeds the supply (``α > 1``
    means someone must go unsatisfied) and whether any single advertiser's
    demand exceeds the total reachable audience (individually unsatisfiable
    regardless of allocation).
    """

    num_billboards: int
    num_advertisers: int
    supply: int
    reachable_audience: int
    global_demand: float
    alpha: float
    avg_individual_demand_ratio: float
    overdemanded: bool
    unsatisfiable_advertisers: int
    total_payment: float

    def describe(self) -> str:
        lines = [
            f"market: |U|={self.num_billboards}, |A|={self.num_advertisers}",
            f"  supply I*={self.supply:,} (reachable audience {self.reachable_audience:,})",
            f"  global demand={self.global_demand:,.0f} (alpha={self.alpha:.2f})",
            f"  avg individual demand = {self.avg_individual_demand_ratio:.1%} of supply",
            f"  committed payments = ${self.total_payment:,.0f}",
        ]
        if self.overdemanded:
            lines.append("  WARNING: demand exceeds supply - someone must go unsatisfied")
        if self.unsatisfiable_advertisers:
            lines.append(
                f"  WARNING: {self.unsatisfiable_advertisers} advertiser(s) demand more "
                "than the reachable audience"
            )
        return "\n".join(lines)


def market_summary(instance: MROAMInstance) -> MarketSummary:
    """Compute the :class:`MarketSummary` of one instance."""
    supply = instance.coverage.supply
    reachable = instance.coverage.total_reachable()
    global_demand = instance.global_demand
    return MarketSummary(
        num_billboards=instance.num_billboards,
        num_advertisers=instance.num_advertisers,
        supply=supply,
        reachable_audience=reachable,
        global_demand=global_demand,
        alpha=global_demand / supply if supply else float("inf"),
        avg_individual_demand_ratio=(
            float(np.mean(instance.demands)) / supply if supply else float("inf")
        ),
        overdemanded=global_demand > supply,
        unsatisfiable_advertisers=int(np.sum(instance.demands > reachable)),
        total_payment=instance.total_payment(),
    )
