"""Inventory criticality: which billboards does the plan depend on most?

For every assigned billboard the criticality is the regret increase the host
would suffer if that billboard became unavailable and its slot were simply
vacated (the plan is not re-optimized — this is the *marginal* dependence,
exactly :func:`repro.core.moves.delta_release` negated on the regret axis).
Hosts use this to prioritize maintenance or to price premium panels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_release


@dataclass(frozen=True)
class BillboardCriticality:
    """Marginal dependence of the plan on one assigned billboard."""

    billboard_id: int
    advertiser_id: int
    regret_increase_if_lost: float
    individual_influence: int


def inventory_criticality(
    allocation: Allocation, top_k: int | None = None
) -> list[BillboardCriticality]:
    """Rank assigned billboards by the regret increase their loss causes.

    Parameters
    ----------
    allocation:
        The plan to analyze (not mutated).
    top_k:
        Return only the ``top_k`` most critical billboards (default: all
        assigned ones).
    """
    instance = allocation.instance
    rows = []
    for billboard_id in range(instance.num_billboards):
        owner = allocation.owner_of(billboard_id)
        if owner == UNASSIGNED:
            continue
        # Losing the billboard is exactly a forced release: total regret
        # changes by delta_release (positive = the plan depends on it; a
        # negative value flags a billboard that over-serves its advertiser).
        increase = delta_release(allocation, billboard_id)
        rows.append(
            BillboardCriticality(
                billboard_id=billboard_id,
                advertiser_id=owner,
                regret_increase_if_lost=increase,
                individual_influence=instance.coverage.influence_of(billboard_id),
            )
        )
    rows.sort(key=lambda row: (-row.regret_increase_if_lost, row.billboard_id))
    return rows[:top_k] if top_k is not None else rows
