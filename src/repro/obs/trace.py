"""Cross-process tracing: clock-aligned Chrome/Perfetto trace events.

Completed :mod:`repro.obs.spans` become Chrome-trace *complete* events
(``"ph": "X"``) attributed with the recording process id and native thread
id, so one run that fans restarts or harness cells out over persistent
worker pools (:mod:`repro.parallel.pool`) renders as a per-process timeline
in ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_.

**Clock alignment.**  Span durations come from ``time.perf_counter()``
(``CLOCK_MONOTONIC``), which on Linux is a *system-wide* clock: every forked
worker reads the same timeline as the parent.  Trace timestamps map that
timeline onto the epoch with a per-process offset ``time.time() -
time.perf_counter()`` captured once (and inherited verbatim by forked
children, so parent and workers share one mapping by construction).  Within
a process, timestamps are therefore strictly monotone; across processes
they align to well under a millisecond — a worker's task event lands inside
the parent's ``pool.map`` window.

**Transport.**  Trace events accumulate in the registry's trace buffer and
ride the same :func:`~repro.obs.registry.take_snapshot` /
``merge_snapshot`` path worker metrics already use, so a worker's events
arrive in the parent with the worker's pid/tid/timestamps intact.  Events a
worker never got to ship (a pool torn down right after spawn, work recorded
after its last task) are flushed by :func:`flush_worker_spill` — registered
via ``atexit`` *and* ``multiprocessing.util.Finalize`` in every pool worker
— into the spill directory next to the configured output file, and
:func:`write_trace` / :func:`~repro.obs.sink.write_jsonl` fold the spill
files back in before writing.

**Sampling.**  On span boundaries (throttled to one sample per ~50 ms) the
tracer emits Chrome *counter* events (``"ph": "C"``) for the process RSS,
the bitmap shard-tier residency gauges, and the kernel dispatch counters,
so the timeline shows memory and kernel activity alongside the spans.

Enable with ``--trace-out`` on the CLI / bench scripts or by exporting
``REPRO_OBS_TRACE=/path/to/trace.json``.  Tracing implies metric
collection; with tracing off the only cost at a span boundary is one
attribute test.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import uuid
from pathlib import Path

from repro import env
from repro.obs import registry as _registry
from repro.obs.registry import SPILL_DIR_ENV, _STATE

#: Environment variable naming the Chrome-trace output path; setting it
#: enables tracing (read by the CLI and the bench scripts, not at import).
TRACE_ENV = env.OBS_TRACE.name

#: Minimum seconds between two boundary samples of the RSS/kernel counters.
_SAMPLE_INTERVAL_S = 0.05

#: Counter series sampled on span boundaries (prefix match on counters).
_SAMPLED_COUNTER_PREFIXES = (
    "influence.dispatch.",
    "influence.kernel.",
    "influence.tier.",
)

#: Gauge series sampled on span boundaries (prefix match on gauges).
_SAMPLED_GAUGE_PREFIXES = ("bitmap.shards.", "influence.bitmap.bytes")

_EPOCH_OFFSET: float | None = None


def _epoch_offset() -> float:
    """``time.time() - time.perf_counter()``, captured once per lineage.

    Forked children inherit the parent's cached value, which is exactly what
    clock alignment wants: one shared mapping from the system-wide monotonic
    clock to the epoch (see module docstring).
    """
    global _EPOCH_OFFSET
    if _EPOCH_OFFSET is None:
        _EPOCH_OFFSET = time.time() - time.perf_counter()
    return _EPOCH_OFFSET


def _ts_us(perf_t: float) -> int:
    return int((perf_t + _epoch_offset()) * 1e6)


# ------------------------------------------------------------- lifecycle


def trace_enabled() -> bool:
    """Whether trace-event collection is on in this process."""
    return _STATE.trace_enabled


def trace_enable(out: str | None = None) -> None:
    """Turn tracing on; ``out`` optionally names the Chrome JSON path.

    Tracing implies metric collection (spans must run to be traced), so this
    also enables the registry.
    """
    _STATE.trace_enabled = True
    _STATE.active = True
    if out is not None:
        _STATE.trace_out = str(out)
    if not _STATE.enabled:
        _registry.enable()
    _registry._update_spill_env()


def trace_disable() -> None:
    """Turn tracing off and drop the trace buffer (metrics untouched)."""
    _STATE.trace_enabled = False
    _STATE.active = _STATE.enabled
    _STATE.trace_out = None
    _STATE.trace_events = []
    _registry._update_spill_env()


def trace_reset() -> None:
    """Clear the trace buffer (tracing state unchanged)."""
    _STATE.trace_events = []


def set_trace_collection(flag: bool) -> None:
    """Flip event collection without touching the buffer or the out path.

    The worker-side sync uses this on obs on/off transitions so pending
    events recorded before the transition still ship with the next snapshot
    or the teardown spill.
    """
    _STATE.trace_enabled = bool(flag)
    _STATE.active = _STATE.enabled or _STATE.trace_enabled


def configured_trace_out() -> str | None:
    """The trace output path configured via :func:`trace_enable`, if any."""
    return _STATE.trace_out


def take_trace(reset_after: bool = False) -> list[dict]:
    """The buffered trace events (optionally draining the buffer)."""
    events = list(_STATE.trace_events)
    if reset_after:
        _STATE.trace_events = []
    return events


# ------------------------------------------------------------- recording


def emit_complete(
    name: str,
    started_perf: float,
    duration_s: float,
    cat: str = "span",
    args: dict | None = None,
) -> None:
    """Record one Chrome *complete* event from perf-counter coordinates."""
    if not _STATE.trace_enabled:
        return
    event = {
        "name": name,
        "ph": "X",
        "cat": cat,
        "ts": _ts_us(started_perf),
        "dur": max(0, int(duration_s * 1e6)),
        "pid": os.getpid(),
        "tid": threading.get_native_id(),
    }
    if args:
        event["args"] = args
    _STATE.trace_events.append(event)


def emit_counter(name: str, values: dict) -> None:
    """Record one Chrome *counter* sample (one track per dict key)."""
    if not _STATE.trace_enabled:
        return
    _STATE.trace_events.append(
        {
            "name": name,
            "ph": "C",
            "cat": "counter",
            "ts": _ts_us(time.perf_counter()),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "args": {key: float(value) for key, value in values.items()},
        }
    )


def emit_instant(name: str, args: dict | None = None) -> None:
    """Record one Chrome *instant* event (process scope)."""
    if not _STATE.trace_enabled:
        return
    event = {
        "name": name,
        "ph": "i",
        "s": "p",
        "cat": "mark",
        "ts": _ts_us(time.perf_counter()),
        "pid": os.getpid(),
        "tid": threading.get_native_id(),
    }
    if args:
        event["args"] = args
    _STATE.trace_events.append(event)


def read_rss_mb() -> float | None:
    """Current resident set size in MiB (Linux ``/proc``; None elsewhere)."""
    try:
        with open("/proc/self/status") as stream:
            for line in stream:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:  # pragma: no cover - non-Linux
        return None
    return None


def record_span(span) -> None:
    """Emit a completed :class:`~repro.obs.spans.Span` as a trace event,
    then maybe sample the RSS / shard-tier / kernel-dispatch counters.

    Called from ``Span.__exit__`` behind the ``trace_enabled`` test; the
    boundary sample is throttled to one per ~50 ms so deep span nests don't
    flood the timeline.
    """
    args: dict = {"path": span.path}
    if span.attrs:
        args.update(span.attrs)
    emit_complete(span.name, span._started, span.duration_s, args=args)
    now = time.perf_counter()
    if now - _STATE.trace_last_sample >= _SAMPLE_INTERVAL_S:
        _STATE.trace_last_sample = now
        sample_process_counters()


def sample_process_counters() -> None:
    """One counter sample: RSS plus the selected gauge/counter series."""
    rss = read_rss_mb()
    if rss is not None:
        emit_counter("rss_mb", {"rss_mb": rss})
    registry = _STATE.registry
    dispatch = {
        name: value
        for name, value in registry.counters.items()
        if name.startswith(_SAMPLED_COUNTER_PREFIXES)
    }
    if dispatch:
        emit_counter("kernel_dispatch", dispatch)
    shards = {
        name: value
        for name, value in registry.gauges.items()
        if name.startswith(_SAMPLED_GAUGE_PREFIXES)
    }
    if shards:
        emit_counter("bitmap_residency", shards)


# -------------------------------------------------------- worker spill


_SPILLED = False


def flush_worker_spill() -> Path | None:
    """Write this process's unshipped snapshot (metrics + trace) to the
    spill directory, if one is configured and anything is pending.

    Registered in pool workers via ``atexit`` *and*
    ``multiprocessing.util.Finalize`` (forked multiprocessing children exit
    through ``os._exit``, which skips ``atexit``); the double registration
    is safe because the first flush drains the registry, making the second
    a no-op.
    """
    global _SPILLED
    spill_dir = env.OBS_SPILL_DIR.raw()
    if not spill_dir:
        return None
    snapshot = _registry.take_snapshot(reset_after=True)
    if not any(snapshot.values()):
        return None
    _SPILLED = True
    directory = Path(spill_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"obs-spill-{os.getpid()}-{uuid.uuid4().hex[:8]}.json"
    path.write_text(json.dumps(snapshot, default=_jsonable))
    return path


def register_worker_flush() -> None:
    """Hook :func:`flush_worker_spill` into this (worker) process's exits."""
    atexit.register(flush_worker_spill)
    try:
        from multiprocessing import util

        util.Finalize(None, flush_worker_spill, exitpriority=100)
    except Exception:  # pragma: no cover - multiprocessing always present
        pass


def collect_spills() -> int:
    """Fold every spill file for the configured outputs into this registry.

    Returns the number of spill files consumed (each is deleted after a
    successful merge, so repeated writes never double count).
    """
    directories = set()
    for out in (_STATE.trace_out, _STATE.out_path, None):
        if out is not None:
            directories.add(f"{out}.spill")
    env_dir = env.OBS_SPILL_DIR.raw()
    if env_dir:
        directories.add(env_dir)
    consumed = 0
    for directory in directories:
        directory = Path(directory)
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("obs-spill-*.json")):
            try:
                snapshot = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            _registry.merge_snapshot(snapshot, force=True)
            path.unlink(missing_ok=True)
            consumed += 1
    return consumed


# ------------------------------------------------------------ writing


def _jsonable(value):
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def to_chrome(events: list[dict], other_data: dict | None = None) -> dict:
    """Wrap raw trace events in the Chrome trace-file envelope.

    Adds ``process_name`` metadata per pid (the writing process is ``main``,
    every other pid a ``worker``) and sorts events by timestamp.
    """
    events = sorted(events, key=lambda event: (event.get("ts", 0), event.get("pid", 0)))
    own_pid = os.getpid()
    metadata = []
    for pid in sorted({event["pid"] for event in events if "pid" in event}):
        name = "main" if pid == own_pid else f"worker-{pid}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": other_data or {},
    }


def write_trace(path: str | os.PathLike | None = None) -> Path:
    """Merge worker spills and write the Chrome trace JSON to ``path``.

    ``path`` defaults to the path configured via :func:`trace_enable`.  The
    final registry counters/gauges ride in ``otherData`` so the trace file
    is self-contained for :mod:`repro.obs.report`.
    """
    if path is None:
        path = _STATE.trace_out
    if path is None:
        raise ValueError("no trace output path configured; pass one or trace_enable(out=...)")
    collect_spills()
    registry = _STATE.registry
    other: dict = {}
    if registry.counters:
        other["counters"] = dict(registry.counters)
    if registry.gauges:
        other["gauges"] = dict(registry.gauges)
    try:
        from repro.obs.ledger import git_commit

        other["commit"] = git_commit()
    except Exception:  # pragma: no cover - git metadata is best-effort
        pass
    data = to_chrome(take_trace(), other)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, default=_jsonable) + "\n")
    return path


def validate_chrome_trace(data: dict) -> list[str]:
    """Schema-check a Chrome trace dict; returns human-readable problems.

    Checks the envelope, the per-event required fields, phase-specific
    fields (complete events need a non-negative ``dur``), and per-pid
    timestamp monotonicity of the complete events.
    """
    problems: list[str] = []
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        return ["top level must be an object with a traceEvents list"]
    last_ts: dict[int, int] = {}
    for index, event in enumerate(data["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "ts"):
            if key not in event:
                problems.append(f"{where}: missing required field {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "C", "M", "i", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if not isinstance(event.get("ts", 0), (int, float)) or event.get("ts", 0) < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(f"{where}: complete event needs non-negative dur")
            pid = event.get("pid")
            if isinstance(pid, int):
                if event["ts"] < last_ts.get(pid, 0):
                    problems.append(
                        f"{where}: ts moved backwards within pid {pid} "
                        "(events must sort monotone per process)"
                    )
                last_ts[pid] = event["ts"]
        if ph == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: instant scope must be one of t/p/g")
    return problems
