"""Append-only per-run ledger: the calibration dataset for solver choice.

Every harness cell and bench section can append one JSONL record keyed by
the git commit, the *instance features* that drive solver behaviour
(billboard/advertiser/trajectory counts, γ, demand pressure, coverage
overlap skew), the engine/solver configuration, and the outcome telemetry
(regret, wall time, move counts).  Records are single ``O_APPEND`` writes,
so concurrent processes interleave whole lines and the file only ever
grows — the adaptive solver portfolio on the ROADMAP reads it back with
:func:`read_ledger` to learn which engine wins on which instance shape.

Enable by passing ``--ledger PATH`` to the CLI / bench scripts or exporting
``REPRO_OBS_LEDGER=PATH``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from repro import env

#: Environment variable naming the ledger path; the harness and bench
#: scripts append to it whenever it is set.
LEDGER_ENV = env.OBS_LEDGER.name

#: Schema tag stamped on every record so readers can migrate old ledgers.
SCHEMA = "obs-ledger-v1"

_COMMIT: str | None = None


def git_commit() -> str:
    """The current git commit hash (cached; ``"unknown"`` outside a repo)."""
    global _COMMIT
    if _COMMIT is None:
        try:
            _COMMIT = (
                subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=10,
                    cwd=Path(__file__).resolve().parent,
                )
                .stdout.strip()
                or "unknown"
            )
        except (OSError, subprocess.SubprocessError):
            _COMMIT = "unknown"
    return _COMMIT


def ledger_path() -> Path | None:
    """The configured ledger path (``REPRO_OBS_LEDGER``), if any."""
    path = env.OBS_LEDGER.raw()
    return Path(path) if path else None


def enabled() -> bool:
    """Whether ledger appends are configured in this process."""
    return env.OBS_LEDGER.is_set()


def instance_features(instance) -> dict:
    """The instance-shape features a solver portfolio would condition on.

    ``overlap`` is ``Σ_b |cover(b)| / |∪_b cover(b)|`` — how many billboards
    reach the average reachable trajectory (1.0 = disjoint coverage, higher
    = more contested).  ``influence_cv`` is the coefficient of variation of
    the per-billboard influences — the skew of the inventory.
    """
    coverage = instance.coverage
    features = {
        "billboards": int(instance.num_billboards),
        "advertisers": int(instance.num_advertisers),
        "trajectories": int(coverage.num_trajectories),
        "gamma": float(instance.gamma),
        "alpha": float(instance.demand_supply_ratio),
    }
    try:
        individual = coverage.individual_influences
        total = float(coverage.total_reachable())
        summed = float(individual.sum())
        features["overlap"] = summed / total if total else 0.0
        mean = float(individual.mean()) if len(individual) else 0.0
        features["influence_cv"] = float(individual.std()) / mean if mean else 0.0
    except Exception:  # pragma: no cover - synthetic indexes without arrays
        pass
    return features


def record_run(
    kind: str,
    instance=None,
    path: str | os.PathLike | None = None,
    **payload,
) -> Path | None:
    """Append one ledger record; returns the path written, or None.

    ``kind`` names the producer (``"harness.cell"``, ``"bench.sweep"``, …);
    ``instance`` (optional) contributes :func:`instance_features`; every
    other keyword lands verbatim in the record.  ``path`` overrides the
    environment-configured ledger.  A missing path makes this a no-op so
    call sites never need their own guard.
    """
    if path is None:
        path = ledger_path()
        if path is None:
            return None
    path = Path(path)
    record = {
        "schema": SCHEMA,
        "kind": kind,
        "ts": time.time(),
        "commit": git_commit(),
        "pid": os.getpid(),
    }
    if instance is not None:
        record["instance"] = instance_features(instance)
    record.update(payload)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, default=_jsonable) + "\n"
    # One O_APPEND write per record: atomic line interleaving across the
    # harness's worker processes.
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)
    return path


def read_ledger(path: str | os.PathLike) -> list[dict]:
    """Parse a ledger back into records (bad lines are skipped, not fatal)."""
    records = []
    with Path(path).open() as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def _jsonable(value):
    if hasattr(value, "item"):
        return value.item()
    return str(value)
