"""The metric/span name taxonomy: every obs name used at a call site.

Counter, gauge, histogram, span, and trace-event names are **merge keys**:
worker snapshots fold into the parent registry by exact string match, so a
typo at one call site silently forks a metric series that then never
aggregates with its siblings across the snapshot merge.  The ``obs-naming``
lint rule closes that hole: a name literal used at an ``obs.*`` call site
anywhere outside :mod:`repro.obs` must appear here (or start with a
registered dynamic prefix).

Adding an instrumentation point therefore means adding its name here first
— which is also what keeps ``DESIGN.md`` §8's naming scheme honest.
"""

from __future__ import annotations

# ------------------------------------------------------------- counters

COVERAGE_CACHE_HIT = "coverage_cache.hit"
COVERAGE_CACHE_MISS = "coverage_cache.miss"
COVERAGE_CACHE_CORRUPT = "coverage_cache.corrupt"
COVERAGE_CACHE_WRITE_FAILURE = "coverage_cache.write_failure"
COVERAGE_BUILDS = "coverage.builds"
COVERAGE_CHUNKS = "coverage.chunks"
INFLUENCE_NUMBA_UNAVAILABLE = "influence.numba.unavailable"
INFLUENCE_BITMAP_SPILLED = "influence.bitmap.spilled"
INFLUENCE_BITMAP_SKIPPED = "influence.bitmap.skipped"
INFLUENCE_BITMAP_BUILDS = "influence.bitmap.builds"
INFLUENCE_DISPATCH_BITMAP = "influence.dispatch.bitmap"
INFLUENCE_DISPATCH_IDARRAY = "influence.dispatch.idarray"
INFLUENCE_KERNEL_NUMBA = "influence.kernel.numba"
INFLUENCE_KERNEL_NUMPY = "influence.kernel.numpy"
INFLUENCE_TIER_IDARRAY = "influence.tier.idarray"
SHM_CREATE = "shm.create"
SHM_ATTACH = "shm.attach"
POOL_SPAWN = "pool.spawn"  # also the span name of the spawn phase
POOL_REUSE = "pool.reuse"
GRID_JOIN_CANDIDATE_PAIRS = "grid.join.candidate_pairs"
GRID_JOIN_MATCHED_PAIRS = "grid.join.matched_pairs"
SOLVER_SOLVES = "solver.solves"
SOLVER_ITERATIONS = "solver.iterations"
BLS_SCREEN_ROUNDS = "bls.screen.rounds"
BLS_SCREEN_PARALLEL = "bls.screen.parallel"
BLS_DIRTY_SCANNED = "bls.dirty.scanned"
BLS_DIRTY_SKIPPED = "bls.dirty.skipped"
SWEEP_MOVES = "sweep.moves"
JOURNAL_ROLLBACK = "journal.rollback"
QUOTE_CACHE_HIT = "quote.cache.hit"
QUOTE_CACHE_MISS = "quote.cache.miss"

# --------------------------------------------------------------- gauges

INFLUENCE_BITMAP_BYTES = "influence.bitmap.bytes"
COVERAGE_TOTAL_REACHABLE = "coverage.total_reachable"

# ----------------------------------------------------------- histograms

INFLUENCE_POPCOUNT_ROWS = "influence.popcount.rows"
POOL_TASK_BATCH = "pool.task.batch"
BLS_PHASE_SCREEN = "bls.phase.screen"
BLS_PHASE_EXCHANGE = "bls.phase.exchange"
BLS_PHASE_RELEASE = "bls.phase.release"
BLS_PHASE_TOPUP = "bls.phase.topup"
BLS_PHASE_VERIFY = "bls.phase.verify"

# ---------------------------------------------------------------- spans

SPAN_COVERAGE_BUILD = "coverage.build"
SPAN_COVERAGE_BITMAP_BUILD = "coverage.bitmap_build"
SPAN_COVERAGE_CACHE_GET_OR_BUILD = "coverage_cache.get_or_build"
SPAN_POOL_ATTACH = "pool.attach"
SPAN_POOL_TASK = "pool.task"
SPAN_POOL_EXPORT = "pool.export"
SPAN_POOL_MAP = "pool.map"
SPAN_RESTART_GREEDY = "restart.greedy"
SPAN_RESTART_LOCAL_SEARCH = "restart.local_search"
SPAN_RESTART_REDUCE = "restart.reduce"
SPAN_HARNESS_CELL = "harness.cell"
SPAN_ALS_SEARCH = "als.search"
SPAN_BLS_SEARCH = "bls.search"
SPAN_ANNEAL_CHAIN = "anneal.chain"
SPAN_QUOTE_PRICE = "quote.price"
SPAN_QUOTE_ACCEPT = "quote.accept"
SPAN_QUOTE_BATCH = "quote.batch"

# ------------------------------------------------- run-event / trace kinds

EVENT_SOLVER = "solver"  # per-solve telemetry record (convergence, moves)
TRACE_BLS_SWEEP = "bls.sweep"  # per-sweep phase-split complete event
TRACE_KERNEL_DISPATCH_INSTANT = "kernel.dispatch"  # per-engine-pass deltas
TRACE_KERNEL_DISPATCH_TRACK = "kernel_dispatch"  # sampled counter track
TRACE_BITMAP_RESIDENCY_TRACK = "bitmap_residency"
TRACE_RSS_TRACK = "rss_mb"

#: Name families with a runtime-computed suffix (storage tier, solver name).
#: A call site using an f-string must open with one of these prefixes.
DYNAMIC_PREFIXES = (
    "influence.tier.",  # influence.tier.<storage tier>
    "bitmap.shards.",  # bitmap.shards.<storage tier>   (gauge)
    "solver.",  # solver.<registry name>          (span per solve)
)

#: Every fixed name above, as the membership set the lint rule checks.
NAMES = frozenset(
    value
    for key, value in list(globals().items())
    if key.isupper() and isinstance(value, str) and not key.startswith("_")
)
