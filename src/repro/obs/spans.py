"""Lightweight nesting spans.

``with span("coverage.build", lambda_m=100.0):`` times a region, records the
completed span as a run event (with its dotted nesting path and attributes)
and feeds its duration into the ``span.<name>`` histogram.  When
observability is disabled, :func:`span` returns a shared no-op context
manager — no allocation, no clock reads — so instrumented regions cost one
boolean test.

Spans nest via a process-local stack (the instrumented code is
single-threaded per process; worker processes each have their own stack).
Histogram names use the span's *own* name, not the nesting path, so serial
and parallel runs aggregate identically; the full path is kept on the span
event for trace reconstruction.
"""

from __future__ import annotations

import time

from repro.obs import registry as _registry
from repro.obs.registry import _STATE


class _NullSpan:
    """Shared do-nothing span used whenever collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region; created by :func:`span`, used as a context manager."""

    __slots__ = ("name", "attrs", "path", "duration_s", "_started")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.path = name
        self.duration_s: float | None = None
        self._started = 0.0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = _STATE.span_stack
        self.path = ".".join((*stack, self.name)) if stack else self.name
        stack.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._started
        stack = _STATE.span_stack
        if stack and stack[-1] == self.name:
            stack.pop()
        if _STATE.enabled:
            _registry.histogram_observe(f"span.{self.name}", self.duration_s)
            event: dict = {
                "name": self.name,
                "path": self.path,
                "duration_s": self.duration_s,
            }
            if self.attrs:
                event["attrs"] = dict(self.attrs)
            if exc_type is not None:
                event["error"] = exc_type.__name__
            _registry.record_event("span", **event)
        if _STATE.trace_enabled:
            from repro.obs import trace as _trace

            _trace.record_span(self)
        return False


def span(name: str, **attrs):
    """A context manager timing one named region (no-op when disabled).

    A live span is returned when either metric collection *or* tracing is
    on: traces deliberately span benchmark sections that toggle metric
    collection off, and ``Span.__exit__`` gates each output on its own flag.
    """
    if not _STATE.active:
        return _NULL_SPAN
    return Span(name, attrs)
