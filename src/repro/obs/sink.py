"""JSONL run-event sink and the human-readable run summary.

:func:`write_jsonl` dumps the event log (spans, per-solver telemetry) one
JSON object per line, followed by final ``counters`` / ``gauges`` /
``histograms`` snapshot lines, so a run file is self-contained: replaying
the lines in order reconstructs both the trace and the end-of-run totals.

:func:`summary_table` renders the same totals as the fixed-width table the
CLI prints under ``--obs-summary``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs import registry as _registry


def _jsonable(value):
    """JSON fallback for numpy scalars and other ``.item()``-bearers."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def write_jsonl(path: str | os.PathLike) -> Path:
    """Write all recorded events plus final metric snapshots to ``path``.

    Spill files left by torn-down pool workers (see
    :func:`repro.obs.trace.collect_spills`) are folded in first, so worker
    events recorded after their last shipped snapshot still land in the run
    file.
    """
    from repro.obs import trace as _trace

    _trace.collect_spills()
    registry = _registry.get_registry()
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as stream:
        for event in registry.events:
            stream.write(json.dumps(event, default=_jsonable) + "\n")
        stream.write(
            json.dumps(
                {"event": "counters", "counters": registry.counters},
                default=_jsonable,
            )
            + "\n"
        )
        if registry.gauges:
            stream.write(
                json.dumps(
                    {"event": "gauges", "gauges": registry.gauges}, default=_jsonable
                )
                + "\n"
            )
        stream.write(
            json.dumps(
                {
                    "event": "histograms",
                    "histograms": {
                        name: histogram.as_dict()
                        for name, histogram in registry.histograms.items()
                    },
                },
                default=_jsonable,
            )
            + "\n"
        )
    return path


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Parse a run file back into its event dicts (tests, analysis)."""
    with Path(path).open() as stream:
        return [json.loads(line) for line in stream if line.strip()]


def summary_table() -> str:
    """Fixed-width end-of-run summary: counters, gauges, span timings."""
    registry = _registry.get_registry()
    lines = ["== observability summary =="]

    counters = {
        name: value
        for name, value in sorted(registry.counters.items())
    }
    if counters:
        lines.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            formatted = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name:<{width}}  {formatted:>12}")

    if registry.gauges:
        lines.append("-- gauges --")
        width = max(len(name) for name in registry.gauges)
        for name, value in sorted(registry.gauges.items()):
            lines.append(f"  {name:<{width}}  {float(value):>12.3f}")

    spans = {
        name[len("span."):]: histogram
        for name, histogram in sorted(registry.histograms.items())
        if name.startswith("span.")
    }
    if spans:
        lines.append("-- spans --")
        width = max(len(name) for name in spans)
        lines.append(
            f"  {'name':<{width}}  {'count':>7}  {'total_s':>10}  {'mean_s':>10}"
            f"  {'p50_s':>10}  {'p95_s':>10}  {'p99_s':>10}  {'max_s':>10}"
        )
        for name, histogram in spans.items():
            lines.append(
                f"  {name:<{width}}  {histogram.count:>7}  {histogram.total:>10.4f}"
                f"  {histogram.mean:>10.4f}  {histogram.p50:>10.4f}"
                f"  {histogram.p95:>10.4f}  {histogram.p99:>10.4f}"
                f"  {histogram.max:>10.4f}"
            )

    others = {
        name: histogram
        for name, histogram in sorted(registry.histograms.items())
        if not name.startswith("span.")
    }
    if others:
        lines.append("-- histograms --")
        width = max(len(name) for name in others)
        lines.append(
            f"  {'name':<{width}}  {'count':>7}  {'mean':>12}  {'p50':>12}"
            f"  {'p95':>12}  {'p99':>12}  {'max':>12}"
        )
        for name, histogram in others.items():
            lines.append(
                f"  {name:<{width}}  {histogram.count:>7}  {histogram.mean:>12.1f}"
                f"  {histogram.p50:>12.1f}  {histogram.p95:>12.1f}"
                f"  {histogram.p99:>12.1f}"
                f"  {histogram.max if histogram.count else 0.0:>12.1f}"
            )

    if len(lines) == 1:
        lines.append("(nothing recorded)")
    return "\n".join(lines)
