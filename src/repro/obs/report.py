"""Bottleneck reports over traces, run logs, and ledgers.

:func:`render_report` sniffs the file format — Chrome trace JSON
(``traceEvents``), obs run-log JSONL, or ledger JSONL — and renders the
matching fixed-width report:

* **trace** — restart-bench time attribution (spawn / export / attach /
  warm-up / compute / reduce, against the pool-map wall time), the
  per-engine BLS sweep-phase breakdown, the kernel dispatch table, and
  per-pid RSS ranges.  This is the artifact that quantifies *why* parallel
  restarts do or don't pay at a given scale.
* **run log** — span timings with p50/p95/p99 plus the final counters.
* **ledger** — per-(kind, engine) outcome summary across recorded runs.

Exposed on the CLI as ``repro obs report`` and as
``scripts/obs_report.py``.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path

#: Span names whose total duration forms the restart-bench attribution.
_ATTRIBUTION_SPANS = (
    ("spawn", "pool.spawn"),
    ("export", "pool.export"),
    ("attach", "pool.attach"),
    ("compute", "pool.task"),
    ("reduce", "restart.reduce"),
)


def detect_format(path: str | os.PathLike) -> str:
    """``"trace"``, ``"ledger"``, or ``"runlog"`` for the file at ``path``."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        first_line = stripped.splitlines()[0] if stripped else ""
        try:
            whole = json.loads(text)
        except json.JSONDecodeError:
            whole = None
        if isinstance(whole, dict) and "traceEvents" in whole:
            return "trace"
        try:
            first = json.loads(first_line)
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and first.get("schema", "").startswith("obs-ledger"):
            return "ledger"
    return "runlog"


def _table(rows: list[tuple], headers: tuple) -> list[str]:
    """Fixed-width table lines: first column left, the rest right-aligned."""
    cells = [tuple(str(cell) for cell in row) for row in (headers, *rows)]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        first, *rest = (cell.ljust(widths[0]) if col == 0 else cell.rjust(widths[col])
                        for col, cell in enumerate(row))
        lines.append("  " + "  ".join((first, *rest)))
        if index == 0:
            lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    return lines


# --------------------------------------------------------------- trace


def _complete_events(data: dict) -> list[dict]:
    return [event for event in data.get("traceEvents", []) if event.get("ph") == "X"]


def restart_attribution(data: dict) -> dict:
    """Aggregate restart-bench timings from a Chrome trace dict.

    Returns totals (seconds) for each attribution bucket, the pool-map wall
    time, the worker pids seen, and the derived warm-up estimate: the first
    ``pool.map`` window's wall time minus its computed-in-parallel share —
    i.e. fork/import/attach latency the parent observed but no worker span
    accounts for.
    """
    events = _complete_events(data)
    totals = {key: 0.0 for key, _ in _ATTRIBUTION_SPANS}
    counts = {key: 0 for key, _ in _ATTRIBUTION_SPANS}
    by_name = {name: key for key, name in _ATTRIBUTION_SPANS}
    maps = []
    worker_pids: set[int] = set()
    parent_pids: set[int] = set()
    for event in events:
        name = event.get("name")
        key = by_name.get(name)
        duration_s = event.get("dur", 0) / 1e6
        if key is not None:
            totals[key] += duration_s
            counts[key] += 1
            if name in ("pool.task", "pool.attach"):
                worker_pids.add(event.get("pid"))
            else:
                parent_pids.add(event.get("pid"))
        elif name == "pool.map":
            maps.append(event)
            parent_pids.add(event.get("pid"))
    map_wall_s = sum(event.get("dur", 0) for event in maps) / 1e6
    warmup_s = 0.0
    if maps:
        first = min(maps, key=lambda event: event.get("ts", 0))
        start, end = first["ts"], first["ts"] + first.get("dur", 0)
        inner_tasks_us = sum(
            event.get("dur", 0)
            for event in events
            if event.get("name") in ("pool.task", "pool.attach")
            and start <= event.get("ts", 0) <= end
        )
        lanes = max(1, len(worker_pids))
        warmup_s = max(0.0, (first.get("dur", 0) - inner_tasks_us / lanes) / 1e6)
    return {
        "totals_s": totals,
        "counts": counts,
        "map_wall_s": map_wall_s,
        "map_count": len(maps),
        "warmup_s": warmup_s,
        "worker_pids": sorted(pid for pid in worker_pids if pid is not None),
        "parent_pids": sorted(pid for pid in parent_pids if pid is not None),
    }


def bls_phase_breakdown(data: dict) -> dict:
    """Per-engine sums of the BLS sweep phases from ``bls.sweep`` events."""
    engines: dict[str, dict] = {}
    for event in _complete_events(data):
        if event.get("name") != "bls.sweep":
            continue
        args = event.get("args", {})
        engine = str(args.get("engine", "?"))
        row = engines.setdefault(
            engine,
            {"sweeps": 0, "wall_s": 0.0, "screen_s": 0.0, "exchange_s": 0.0,
             "release_s": 0.0, "topup_s": 0.0, "verify": 0},
        )
        row["sweeps"] += 1
        row["wall_s"] += event.get("dur", 0) / 1e6
        for phase in ("screen", "exchange", "release", "topup"):
            row[f"{phase}_s"] += float(args.get(f"{phase}_s", 0.0))
        row["verify"] += int(bool(args.get("verify")))
    return engines


def kernel_dispatch_table(data: dict) -> dict:
    """Kernel/dispatch counts: final totals plus per-engine instant deltas."""
    other = data.get("otherData", {})
    totals = {
        name: value
        for name, value in other.get("counters", {}).items()
        if name.startswith(("influence.dispatch.", "influence.kernel.", "influence.tier."))
    }
    per_engine: dict[str, dict] = {}
    for event in data.get("traceEvents", []):
        if event.get("ph") == "i" and event.get("name") == "kernel.dispatch":
            args = dict(event.get("args", {}))
            engine = str(args.pop("engine", "?"))
            row = per_engine.setdefault(engine, defaultdict(float))
            for name, value in args.items():
                row[name] += float(value)
    return {"totals": totals, "per_engine": {k: dict(v) for k, v in per_engine.items()}}


def rss_by_pid(data: dict) -> dict:
    """Per-pid (min, max) RSS in MiB from the sampled counter events."""
    ranges: dict[int, tuple[float, float]] = {}
    for event in data.get("traceEvents", []):
        if event.get("ph") == "C" and event.get("name") == "rss_mb":
            value = float(event.get("args", {}).get("rss_mb", 0.0))
            pid = event.get("pid")
            low, high = ranges.get(pid, (value, value))
            ranges[pid] = (min(low, value), max(high, value))
    return ranges


def trace_report(data: dict) -> str:
    lines = ["== trace report =="]
    other = data.get("otherData", {})
    if other.get("commit"):
        lines.append(f"commit: {other['commit']}")

    attribution = restart_attribution(data)
    totals = attribution["totals_s"]
    if any(totals.values()) or attribution["map_count"]:
        lines.append("")
        lines.append("-- restart bench time attribution --")
        lines.append(
            f"pool.map wall: {attribution['map_wall_s']:.4f}s over "
            f"{attribution['map_count']} map(s); worker pids: "
            f"{attribution['worker_pids'] or '(none)'}"
        )
        wall = attribution["map_wall_s"] or sum(totals.values()) or 1.0
        rows = []
        for key, _ in _ATTRIBUTION_SPANS:
            rows.append(
                (key, attribution["counts"][key], f"{totals[key]:.4f}",
                 f"{100.0 * totals[key] / wall:.1f}%")
            )
        rows.insert(3, ("warm-up", "-", f"{attribution['warmup_s']:.4f}",
                        f"{100.0 * attribution['warmup_s'] / wall:.1f}%"))
        lines.extend(_table(rows, ("bucket", "count", "total_s", "of map wall")))
        lines.append(
            "  (compute sums worker-side task time across lanes; warm-up is the"
        )
        lines.append(
            "   first map's wall minus its per-lane compute — fork/import cost)"
        )

    engines = bls_phase_breakdown(data)
    if engines:
        lines.append("")
        lines.append("-- BLS sweep phases per engine --")
        rows = []
        for engine, row in sorted(engines.items()):
            rows.append(
                (engine, row["sweeps"], f"{row['wall_s']:.4f}",
                 f"{row['screen_s']:.4f}", f"{row['exchange_s']:.4f}",
                 f"{row['release_s']:.4f}", f"{row['topup_s']:.4f}", row["verify"])
            )
        lines.extend(
            _table(rows, ("engine", "sweeps", "wall_s", "screen_s", "exchange_s",
                          "release_s", "topup_s", "verified"))
        )

    kernels = kernel_dispatch_table(data)
    if kernels["per_engine"]:
        lines.append("")
        lines.append("-- kernel dispatch per engine pass --")
        names = sorted({name for row in kernels["per_engine"].values() for name in row})
        rows = [
            (engine, *(f"{row.get(name, 0.0):.0f}" for name in names))
            for engine, row in sorted(kernels["per_engine"].items())
        ]
        short = [name.replace("influence.", "") for name in names]
        lines.extend(_table(rows, ("engine", *short)))
    if kernels["totals"]:
        lines.append("")
        lines.append("-- kernel dispatch totals --")
        rows = [(name, f"{value:.0f}") for name, value in sorted(kernels["totals"].items())]
        lines.extend(_table(rows, ("counter", "count")))

    rss = rss_by_pid(data)
    if rss:
        lines.append("")
        lines.append("-- RSS by pid (MiB) --")
        rows = [
            (str(pid), f"{low:.1f}", f"{high:.1f}")
            for pid, (low, high) in sorted(rss.items())
        ]
        lines.extend(_table(rows, ("pid", "min", "max")))

    if len(lines) <= 2:
        lines.append("(no attributable events in trace)")
    return "\n".join(lines)


# -------------------------------------------------------------- run log


def runlog_report(events: list[dict]) -> str:
    lines = ["== run-log report =="]
    histograms = {}
    counters = {}
    for event in events:
        if event.get("event") == "histograms":
            histograms = event.get("histograms", {})
        elif event.get("event") == "counters":
            counters = event.get("counters", {})
    spans = {
        name[len("span."):]: summary
        for name, summary in histograms.items()
        if name.startswith("span.")
    }
    if spans:
        lines.append("-- spans (by total time) --")
        rows = []
        ordered = sorted(spans.items(), key=lambda item: -item[1].get("total", 0.0))
        for name, summary in ordered:
            rows.append(
                (name, summary.get("count", 0), f"{summary.get('total', 0.0):.4f}",
                 f"{summary.get('p50', 0.0):.4f}", f"{summary.get('p95', 0.0):.4f}",
                 f"{summary.get('p99', 0.0):.4f}", f"{summary.get('max', 0.0):.4f}")
            )
        lines.extend(
            _table(rows, ("span", "count", "total_s", "p50_s", "p95_s", "p99_s", "max_s"))
        )
    if counters:
        lines.append("")
        lines.append("-- counters --")
        rows = [(name, f"{value:g}") for name, value in sorted(counters.items())]
        lines.extend(_table(rows, ("counter", "value")))
    if len(lines) == 1:
        lines.append("(no summary lines found — was the run log truncated?)")
    return "\n".join(lines)


# --------------------------------------------------------------- ledger


def ledger_report(records: list[dict]) -> str:
    lines = ["== ledger report =="]
    groups: dict[tuple, list[dict]] = defaultdict(list)
    for record in records:
        key = (record.get("kind", "?"), str(record.get("engine", record.get("method", "-"))))
        groups[key].append(record)
    rows = []
    for (kind, engine), members in sorted(groups.items()):
        regrets = [m["regret"] for m in members if isinstance(m.get("regret"), (int, float))]
        times = [m["wall_s"] for m in members if isinstance(m.get("wall_s"), (int, float))]
        commits = {m.get("commit", "?")[:9] for m in members}
        rows.append(
            (
                f"{kind}/{engine}",
                len(members),
                f"{sum(regrets) / len(regrets):.4f}" if regrets else "-",
                f"{sum(times) / len(times):.4f}" if times else "-",
                len(commits),
            )
        )
    if rows:
        lines.extend(_table(rows, ("kind/engine", "runs", "mean_regret", "mean_wall_s", "commits")))
    else:
        lines.append("(empty ledger)")
    return "\n".join(lines)


# ------------------------------------------------------------ dispatch


def render_report(path: str | os.PathLike) -> str:
    """Sniff the file format and render the matching report."""
    kind = detect_format(path)
    if kind == "trace":
        return trace_report(json.loads(Path(path).read_text()))
    if kind == "ledger":
        from repro.obs.ledger import read_ledger

        return ledger_report(read_ledger(path))
    from repro.obs.sink import read_jsonl

    return runlog_report(read_jsonl(path))
