"""Process-local metrics registry: counters, gauges, histograms, events.

The registry is a single module-level object so instrumentation anywhere in
the codebase can record into it without threading handles through every
call signature.  All recording functions take the same fast exit when
observability is disabled — one module-global boolean test — so the
instrumented hot paths (influence dispatch, cache lookups, radius joins)
pay essentially nothing in the default configuration.

Three metric families:

* **counters** — monotonically increasing floats/ints (``counter_add``);
* **gauges** — last-write-wins values (``gauge_set``);
* **histograms** — ``count/total/min/max`` summaries (``histogram_observe``),
  also fed by completed spans with their durations.

Plus an ordered **event log**: arbitrary JSON-serializable records
(completed spans, per-solver telemetry) that the JSONL sink writes out.

Worker processes collect into their own registry and ship
:func:`take_snapshot` dicts back to the parent, which
:func:`merge_snapshot`-s them — counter totals and histogram summaries are
associative, so ``workers=N`` telemetry aggregates to exactly the serial
totals for work that is deterministic per task.
"""

from __future__ import annotations

import logging
import time

#: Environment variable naming the JSONL run-event output path.  Read by the
#: CLI and the benchmark script (not at import time): setting it enables
#: collection and directs :func:`repro.obs.sink.write_jsonl` output.
OBS_OUT_ENV = "REPRO_OBS_OUT"


class Histogram:
    """A ``count/total/min/max`` summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def merge_dict(self, other: dict) -> None:
        if not other.get("count"):
            return
        self.count += int(other["count"])
        self.total += float(other["total"])
        self.min = min(self.min, float(other["min"]))
        self.max = max(self.max, float(other["max"]))


class MetricsRegistry:
    """All metrics of one process, in insertion order."""

    __slots__ = ("counters", "gauges", "histograms", "events")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []

    def histogram(self, name: str) -> Histogram:
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram()
        return found


class _ObsState:
    __slots__ = ("enabled", "registry", "out_path", "span_stack")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.out_path: str | None = None
        self.span_stack: list[str] = []


_STATE = _ObsState()


# ------------------------------------------------------------- lifecycle


def enabled() -> bool:
    """Whether observability collection is on in this process."""
    return _STATE.enabled


def enable(out: str | None = None) -> None:
    """Turn collection on; ``out`` optionally names the JSONL sink path."""
    _STATE.enabled = True
    if out is not None:
        _STATE.out_path = str(out)


def disable() -> None:
    """Turn collection off and drop all recorded state."""
    _STATE.enabled = False
    _STATE.out_path = None
    reset()


def reset() -> None:
    """Clear all recorded metrics and events (collection state unchanged)."""
    _STATE.registry = MetricsRegistry()
    _STATE.span_stack = []


def configured_out() -> str | None:
    """The JSONL output path configured via :func:`enable`, if any."""
    return _STATE.out_path


def get_registry() -> MetricsRegistry:
    return _STATE.registry


# ------------------------------------------------------------- recording


def counter_add(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    counters = _STATE.registry.counters
    counters[name] = counters.get(name, 0) + value


def counter_value(name: str) -> float:
    """Current value of a counter (0 if never incremented)."""
    return _STATE.registry.counters.get(name, 0)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _STATE.registry.gauges[name] = value


def histogram_observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _STATE.registry.histogram(name).observe(value)


def record_event(kind: str, **payload) -> None:
    """Append one run event (no-op when disabled).

    Events are JSON-serialized by the sink; payload values should be plain
    Python / numpy scalars, strings, lists, or dicts.
    """
    if not _STATE.enabled:
        return
    _STATE.registry.events.append({"event": kind, "ts": time.time(), **payload})


# ------------------------------------------------------- snapshot / merge


def take_snapshot(reset_after: bool = False) -> dict:
    """A picklable dict of everything recorded so far.

    ``reset_after=True`` atomically clears the registry, which is how the
    parallel harness workers ship per-task deltas back to the parent
    without double counting across tasks.
    """
    registry = _STATE.registry
    snapshot = {
        "counters": dict(registry.counters),
        "gauges": dict(registry.gauges),
        "histograms": {
            name: histogram.as_dict() for name, histogram in registry.histograms.items()
        },
        "events": list(registry.events),
    }
    if reset_after:
        reset()
    return snapshot


def merge_snapshot(snapshot: dict | None) -> None:
    """Fold a :func:`take_snapshot` dict into this process's registry.

    Counters add, gauges last-write-wins, histogram summaries merge, events
    append in call order.  No-op when disabled or for ``None`` snapshots.
    """
    if not _STATE.enabled or not snapshot:
        return
    registry = _STATE.registry
    for name, value in snapshot.get("counters", {}).items():
        registry.counters[name] = registry.counters.get(name, 0) + value
    registry.gauges.update(snapshot.get("gauges", {}))
    for name, summary in snapshot.get("histograms", {}).items():
        registry.histogram(name).merge_dict(summary)
    registry.events.extend(snapshot.get("events", []))


# --------------------------------------------------------------- logging


def get_logger(name: str = "repro") -> logging.Logger:
    """The shared obs logger hierarchy (stdlib logging, never ``print``)."""
    return logging.getLogger(name)
