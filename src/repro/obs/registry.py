"""Process-local metrics registry: counters, gauges, histograms, events.

The registry is a single module-level object so instrumentation anywhere in
the codebase can record into it without threading handles through every
call signature.  All recording functions take the same fast exit when
observability is disabled — one module-global boolean test — so the
instrumented hot paths (influence dispatch, cache lookups, radius joins)
pay essentially nothing in the default configuration.

Three metric families:

* **counters** — monotonically increasing floats/ints (``counter_add``);
* **gauges** — last-write-wins values (``gauge_set``);
* **histograms** — ``count/total/min/max`` summaries plus sparse log-scaled
  bucket counts (``histogram_observe``), so merged summaries can report
  p50/p95/p99 quantile estimates; also fed by completed spans with their
  durations.

Plus an ordered **event log**: arbitrary JSON-serializable records
(completed spans, per-solver telemetry) that the JSONL sink writes out.

Worker processes collect into their own registry and ship
:func:`take_snapshot` dicts back to the parent, which
:func:`merge_snapshot`-s them — counter totals, histogram summaries, and
bucket counts are associative, so ``workers=N`` telemetry aggregates to
exactly the serial totals for work that is deterministic per task.

The registry also hosts the *trace* buffer consumed by
:mod:`repro.obs.trace`: Chrome-trace-shaped span/counter events with
pid/tid attribution and epoch-aligned microsecond timestamps.  The buffer
lives here (not in the trace module) so snapshots carry trace events across
process boundaries through the same merge path as metrics, but it has its
own lifecycle — :func:`reset` and :func:`disable` leave it alone so a trace
can span benchmark sections that toggle collection on and off; only
:func:`repro.obs.trace.trace_disable`/``trace_reset`` drop it.
"""

from __future__ import annotations

import logging
import math
import os
import time

from repro import env

#: Environment variable naming the JSONL run-event output path.  Read by the
#: CLI and the benchmark script (not at import time): setting it enables
#: collection and directs :func:`repro.obs.sink.write_jsonl` output.
OBS_OUT_ENV = env.OBS_OUT.name

#: Environment variable naming the directory where pool worker processes
#: spill their final unshipped snapshot at teardown (see
#: :func:`repro.obs.trace.flush_worker_spill`).  Exported automatically when
#: an output path is configured, so forked workers inherit it.
SPILL_DIR_ENV = env.OBS_SPILL_DIR.name

#: Histogram bucket width: 8 log-scale buckets per octave (ratio 2^(1/8) ≈
#: 1.09), bounding quantile estimates to within ~9% of the true value.
_BUCKET_WIDTH = math.log(2.0) / 8.0

#: Bucket key for non-positive observations (JSON-safe string key).
_ZERO_BUCKET = "z"


class Histogram:
    """A ``count/total/min/max`` summary plus sparse log-bucket counts.

    Buckets are keyed by ``floor(log(value) / _BUCKET_WIDTH)`` (non-positive
    values land in the ``"z"`` bucket), giving p50/p95/p99 estimates within
    one bucket width (~9%) without storing observations.  Bucket counts add
    under merge, so parallel worker summaries quantile-estimate exactly like
    one serial registry would.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = int(math.log(value) // _BUCKET_WIDTH) if value > 0.0 else _ZERO_BUCKET
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (ceil-rank over the bucket counts).

        Returns the bucket's upper edge clamped to ``[min, max]``; exact for
        the extremes, within one bucket width (~9%) in between.  Falls back
        to linear count/max interpolation when bucket counts are missing
        (summaries merged from a pre-bucket snapshot).
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.buckets.get(_ZERO_BUCKET, 0)
        if cumulative >= rank:
            return min(self.min, 0.0)
        for key in sorted(k for k in self.buckets if k != _ZERO_BUCKET):
            cumulative += self.buckets[key]
            if cumulative >= rank:
                upper = math.exp((key + 1) * _BUCKET_WIDTH)
                return max(self.min, min(self.max, upper))
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {str(key): count for key, count in self.buckets.items()},
        }

    def merge_dict(self, other: dict) -> None:
        if not other.get("count"):
            return
        self.count += int(other["count"])
        self.total += float(other["total"])
        self.min = min(self.min, float(other["min"]))
        self.max = max(self.max, float(other["max"]))
        for key, count in other.get("buckets", {}).items():
            key = key if key == _ZERO_BUCKET else int(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(count)


class MetricsRegistry:
    """All metrics of one process, in insertion order."""

    __slots__ = ("counters", "gauges", "histograms", "events")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []

    def histogram(self, name: str) -> Histogram:
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram()
        return found


class _ObsState:
    __slots__ = (
        "enabled",
        "active",
        "registry",
        "out_path",
        "span_stack",
        "trace_enabled",
        "trace_events",
        "trace_out",
        "trace_last_sample",
    )

    def __init__(self) -> None:
        self.enabled = False
        # ``enabled or trace_enabled``, precomputed at the (rare) toggles so
        # the disabled span() path stays a single attribute test.
        self.active = False
        self.registry = MetricsRegistry()
        self.out_path: str | None = None
        self.span_stack: list[str] = []
        # Trace buffer (see repro.obs.trace): Chrome-trace-shaped dicts with
        # their own lifecycle — reset()/disable() leave them alone.
        self.trace_enabled = False
        self.trace_events: list[dict] = []
        self.trace_out: str | None = None
        self.trace_last_sample = 0.0


_STATE = _ObsState()


def _update_spill_env() -> None:
    """Export (or clear) the worker spill directory for forked children.

    The spill directory rides next to whichever output is configured — the
    trace path wins over the run-log path — so pool workers forked while an
    output is configured know where to flush unshipped events at teardown.
    """
    out = _STATE.trace_out or _STATE.out_path
    if out is not None:
        os.environ[SPILL_DIR_ENV] = f"{out}.spill"
    else:
        os.environ.pop(SPILL_DIR_ENV, None)


# ------------------------------------------------------------- lifecycle


def enabled() -> bool:
    """Whether observability collection is on in this process."""
    return _STATE.enabled


def enable(out: str | None = None) -> None:
    """Turn collection on; ``out`` optionally names the JSONL sink path."""
    _STATE.enabled = True
    _STATE.active = True
    if out is not None:
        _STATE.out_path = str(out)
        _update_spill_env()


def disable() -> None:
    """Turn collection off and drop all recorded metrics/events.

    The trace buffer is left intact (traces deliberately span enable/disable
    cycles, e.g. benchmark warm-up vs timed sections); drop it with
    :func:`repro.obs.trace.trace_disable`.
    """
    _STATE.enabled = False
    _STATE.active = _STATE.trace_enabled
    _STATE.out_path = None
    _update_spill_env()
    reset()


def reset() -> None:
    """Clear all recorded metrics and events (collection state unchanged)."""
    _STATE.registry = MetricsRegistry()
    _STATE.span_stack = []


def configured_out() -> str | None:
    """The JSONL output path configured via :func:`enable`, if any."""
    return _STATE.out_path


def get_registry() -> MetricsRegistry:
    return _STATE.registry


# ------------------------------------------------------------- recording


def counter_add(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    counters = _STATE.registry.counters
    counters[name] = counters.get(name, 0) + value


def counter_value(name: str) -> float:
    """Current value of a counter (0 if never incremented)."""
    return _STATE.registry.counters.get(name, 0)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _STATE.registry.gauges[name] = value


def histogram_observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name`` (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _STATE.registry.histogram(name).observe(value)


def record_event(kind: str, **payload) -> None:
    """Append one run event (no-op when disabled).

    Events are JSON-serialized by the sink; payload values should be plain
    Python / numpy scalars, strings, lists, or dicts.
    """
    if not _STATE.enabled:
        return
    _STATE.registry.events.append({"event": kind, "ts": time.time(), **payload})


# ------------------------------------------------------- snapshot / merge


def take_snapshot(reset_after: bool = False) -> dict:
    """A picklable dict of everything recorded so far.

    ``reset_after=True`` atomically clears the registry, which is how the
    parallel harness workers ship per-task deltas back to the parent
    without double counting across tasks.
    """
    registry = _STATE.registry
    snapshot = {
        "counters": dict(registry.counters),
        "gauges": dict(registry.gauges),
        "histograms": {
            name: histogram.as_dict() for name, histogram in registry.histograms.items()
        },
        "events": list(registry.events),
        "trace": list(_STATE.trace_events),
    }
    if reset_after:
        reset()
        _STATE.trace_events = []
    return snapshot


def merge_snapshot(snapshot: dict | None, force: bool = False) -> None:
    """Fold a :func:`take_snapshot` dict into this process's registry.

    Counters add, gauges last-write-wins, histogram summaries merge, events
    and trace events append in call order.  No-op when disabled or for
    ``None`` snapshots; ``force=True`` bypasses the enabled gate (used when
    folding worker spill files into a run being written out).
    """
    if (not _STATE.enabled and not _STATE.trace_enabled and not force) or not snapshot:
        return
    registry = _STATE.registry
    for name, value in snapshot.get("counters", {}).items():
        registry.counters[name] = registry.counters.get(name, 0) + value
    registry.gauges.update(snapshot.get("gauges", {}))
    for name, summary in snapshot.get("histograms", {}).items():
        registry.histogram(name).merge_dict(summary)
    registry.events.extend(snapshot.get("events", []))
    _STATE.trace_events.extend(snapshot.get("trace", ()))


# --------------------------------------------------------------- logging


def get_logger(name: str = "repro") -> logging.Logger:
    """The shared obs logger hierarchy (stdlib logging, never ``print``)."""
    return logging.getLogger(name)
