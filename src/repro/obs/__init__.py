"""Observability layer: metrics registry, spans, and the JSONL run sink.

Instrumented code imports this package and records unconditionally::

    from repro import obs

    obs.counter_add("influence.dispatch.bitmap")
    with obs.span("coverage.build", lambda_m=lambda_m):
        ...

Collection is **off by default**: every recording call exits on one boolean
test, so the instrumentation is safe to leave in the hottest paths.  It is
turned on by the CLI's ``--obs-out`` / ``--obs-summary`` flags, the
``REPRO_OBS_OUT`` environment variable (read by the CLI and the benchmark
script), or programmatically via :func:`enable`.

See ``DESIGN.md`` §8 for the metric naming scheme and merge semantics.
"""

from repro.obs.ledger import (
    LEDGER_ENV,
    git_commit,
    instance_features,
    ledger_path,
    read_ledger,
    record_run,
)
from repro.obs.registry import (
    OBS_OUT_ENV,
    SPILL_DIR_ENV,
    Histogram,
    MetricsRegistry,
    configured_out,
    counter_add,
    counter_value,
    disable,
    enable,
    enabled,
    gauge_set,
    get_logger,
    get_registry,
    histogram_observe,
    merge_snapshot,
    record_event,
    reset,
    take_snapshot,
)
from repro.obs.report import render_report
from repro.obs.sink import read_jsonl, summary_table, write_jsonl
from repro.obs.spans import Span, span
from repro.obs.trace import (
    TRACE_ENV,
    collect_spills,
    emit_counter,
    emit_instant,
    flush_worker_spill,
    register_worker_flush,
    set_trace_collection,
    take_trace,
    trace_disable,
    trace_enable,
    trace_enabled,
    trace_reset,
    validate_chrome_trace,
    write_trace,
)

__all__ = [
    "LEDGER_ENV",
    "OBS_OUT_ENV",
    "SPILL_DIR_ENV",
    "TRACE_ENV",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "collect_spills",
    "configured_out",
    "counter_add",
    "counter_value",
    "disable",
    "emit_counter",
    "emit_instant",
    "enable",
    "enabled",
    "flush_worker_spill",
    "gauge_set",
    "get_logger",
    "get_registry",
    "git_commit",
    "histogram_observe",
    "instance_features",
    "ledger_path",
    "merge_snapshot",
    "read_jsonl",
    "read_ledger",
    "record_event",
    "record_run",
    "register_worker_flush",
    "render_report",
    "reset",
    "set_trace_collection",
    "span",
    "summary_table",
    "take_snapshot",
    "take_trace",
    "trace_disable",
    "trace_enable",
    "trace_enabled",
    "trace_reset",
    "validate_chrome_trace",
    "write_trace",
]
