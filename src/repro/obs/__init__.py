"""Observability layer: metrics registry, spans, and the JSONL run sink.

Instrumented code imports this package and records unconditionally::

    from repro import obs

    obs.counter_add("influence.dispatch.bitmap")
    with obs.span("coverage.build", lambda_m=lambda_m):
        ...

Collection is **off by default**: every recording call exits on one boolean
test, so the instrumentation is safe to leave in the hottest paths.  It is
turned on by the CLI's ``--obs-out`` / ``--obs-summary`` flags, the
``REPRO_OBS_OUT`` environment variable (read by the CLI and the benchmark
script), or programmatically via :func:`enable`.

See ``DESIGN.md`` §8 for the metric naming scheme and merge semantics.
"""

from repro.obs.registry import (
    OBS_OUT_ENV,
    Histogram,
    MetricsRegistry,
    configured_out,
    counter_add,
    counter_value,
    disable,
    enable,
    enabled,
    gauge_set,
    get_logger,
    get_registry,
    histogram_observe,
    merge_snapshot,
    record_event,
    reset,
    take_snapshot,
)
from repro.obs.sink import read_jsonl, summary_table, write_jsonl
from repro.obs.spans import Span, span

__all__ = [
    "OBS_OUT_ENV",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "configured_out",
    "counter_add",
    "counter_value",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_logger",
    "get_registry",
    "histogram_observe",
    "merge_snapshot",
    "read_jsonl",
    "record_event",
    "reset",
    "span",
    "summary_table",
    "take_snapshot",
    "write_jsonl",
]
