"""Simulated annealing over the billboard-level move set.

An extension baseline (not in the paper): the paper's Section 6 framework is
restart + strictly-improving local search; annealing explores the same
neighbourhood — assign, release, exchange — but accepts worsening moves with
Metropolis probability ``exp(−Δ/T)`` under a geometric cooling schedule.
Included to let users check whether MROAM's landscape rewards the paper's
choice (the ablation bench compares the two at matched budgets).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import Solver
from repro.algorithms.greedy_global import SynchronousGreedy
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_assign, delta_exchange_billboards, delta_release
from repro.core.problem import MROAMInstance
from repro.utils.rng import as_generator


class SimulatedAnnealingSolver(Solver):
    """Metropolis search over assign/release/exchange moves.

    Parameters
    ----------
    steps:
        Number of proposed moves.
    initial_temperature:
        Starting temperature, in regret units.  ``None`` self-calibrates to
        a fraction of the greedy plan's regret (or of the total payment when
        the greedy already reaches zero).
    cooling:
        Geometric decay per step (``T ← T · cooling``).
    seed:
        RNG seed or generator.
    """

    name = "SA"

    def __init__(
        self,
        steps: int = 20_000,
        initial_temperature: float | None = None,
        cooling: float = 0.9995,
        seed=None,
    ) -> None:
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        if not 0.0 < cooling <= 1.0:
            raise ValueError(f"cooling must be in (0, 1], got {cooling}")
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def _propose(self, allocation: Allocation, rng: np.random.Generator):
        """One random move as ``(delta, apply_callable)`` or ``None``."""
        instance = allocation.instance
        kind = rng.integers(0, 3)
        if kind == 0 and allocation.unassigned:  # assign
            billboard_id = int(rng.choice(sorted(allocation.unassigned)))
            advertiser_id = int(rng.integers(instance.num_advertisers))
            delta = delta_assign(allocation, billboard_id, advertiser_id)
            return delta, lambda: allocation.assign(billboard_id, advertiser_id)
        if kind == 1:  # release
            assigned = np.nonzero(allocation.owners != UNASSIGNED)[0]
            if len(assigned) == 0:
                return None
            billboard_id = int(rng.choice(assigned))
            delta = delta_release(allocation, billboard_id)
            return delta, lambda: allocation.release(billboard_id)
        # exchange two random billboards (possibly one unassigned)
        billboard_a, billboard_b = rng.integers(0, instance.num_billboards, size=2)
        if billboard_a == billboard_b:
            return None
        if allocation.owner_of(int(billboard_a)) == allocation.owner_of(int(billboard_b)):
            return None
        delta = delta_exchange_billboards(allocation, int(billboard_a), int(billboard_b))
        return delta, lambda: allocation.exchange_billboards(
            int(billboard_a), int(billboard_b)
        )

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        rng = as_generator(self.seed)
        allocation = SynchronousGreedy().solve(instance).allocation
        current_regret = allocation.total_regret()
        best = allocation.clone()
        best_regret = current_regret

        temperature = self.initial_temperature
        if temperature is None:
            scale = current_regret if current_regret > 0 else instance.total_payment()
            temperature = max(0.05 * scale, 1e-6)

        accepted = 0
        # Telemetry sampling window: ~100 convergence points per run.
        sample_every = max(1, self.steps // 100)
        steps_since_sample = 0
        accepted_at_sample = 0
        for step in range(self.steps):
            proposal = self._propose(allocation, rng)
            temperature *= self.cooling
            if proposal is not None:
                delta, apply_move = proposal
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-12)
                ):
                    apply_move()
                    current_regret += delta
                    accepted += 1
                    if current_regret < best_regret - 1e-12:
                        best_regret = current_regret
                        best = allocation.clone()
            steps_since_sample += 1
            if steps_since_sample == sample_every or step + 1 == self.steps:
                self.record_iteration(
                    best_regret,
                    moves_evaluated=steps_since_sample,
                    moves_accepted=accepted - accepted_at_sample,
                )
                steps_since_sample = 0
                accepted_at_sample = accepted

        stats["sa_steps"] = self.steps
        stats["sa_accepted"] = accepted
        stats["sa_final_temperature"] = temperature
        return best
