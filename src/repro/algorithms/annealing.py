"""Simulated annealing over the billboard-level move set.

An extension baseline (not in the paper): the paper's Section 6 framework is
restart + strictly-improving local search; annealing explores the same
neighbourhood — assign, release, exchange — but accepts worsening moves with
Metropolis probability ``exp(−Δ/T)`` under a geometric cooling schedule.
Included to let users check whether MROAM's landscape rewards the paper's
choice (the ablation bench compares the two at matched budgets).

``restarts > 1`` runs that many independent chains (seeds spawned from the
solver seed) and keeps the best plan seen across them; ``restart_workers``
fans the chains out over processes that attach the coverage index through
shared memory (:mod:`repro.parallel`).  The serial and parallel paths run
the same chains from the same spawned seeds, so they return the identical
best allocation.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.algorithms.base import Solver
from repro.algorithms.greedy_global import SynchronousGreedy
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_assign, delta_exchange_billboards, delta_release
from repro.core.problem import MROAMInstance
from repro.utils.rng import as_generator, spawn_children


def _propose(allocation: Allocation, rng: np.random.Generator):
    """One random move as ``(delta, apply_callable)`` or ``None``."""
    instance = allocation.instance
    kind = rng.integers(0, 3)
    if kind == 0 and allocation.unassigned:  # assign
        billboard_id = int(rng.choice(sorted(allocation.unassigned)))
        advertiser_id = int(rng.integers(instance.num_advertisers))
        delta = delta_assign(allocation, billboard_id, advertiser_id)
        return delta, lambda: allocation.assign(billboard_id, advertiser_id)
    if kind == 1:  # release
        assigned = np.nonzero(allocation.owners != UNASSIGNED)[0]
        if len(assigned) == 0:
            return None
        billboard_id = int(rng.choice(assigned))
        delta = delta_release(allocation, billboard_id)
        return delta, lambda: allocation.release(billboard_id)
    # exchange two random billboards (possibly one unassigned)
    billboard_a, billboard_b = rng.integers(0, instance.num_billboards, size=2)
    if billboard_a == billboard_b:
        return None
    if allocation.owner_of(int(billboard_a)) == allocation.owner_of(int(billboard_b)):
        return None
    delta = delta_exchange_billboards(allocation, int(billboard_a), int(billboard_b))
    return delta, lambda: allocation.exchange_billboards(
        int(billboard_a), int(billboard_b)
    )


def anneal_chain(
    instance: MROAMInstance,
    steps: int,
    initial_temperature: float | None,
    cooling: float,
    rng,
) -> dict:
    """One Metropolis chain from the greedy start.

    Returns a plain dict (picklable, modulo the allocation) with the best
    plan, its regret, the acceptance count, the final temperature, and the
    telemetry samples ``(best_regret, proposed, accepted_delta)`` — the chain
    itself records nothing, so it runs identically inside a worker process
    and in the solver's own process.
    """
    rng = as_generator(rng)
    chain_span = obs.span("anneal.chain", steps=int(steps))
    chain_span.__enter__()
    try:
        return _anneal_chain_body(instance, steps, initial_temperature, cooling, rng)
    finally:
        chain_span.__exit__(None, None, None)


def _anneal_chain_body(
    instance: MROAMInstance,
    steps: int,
    initial_temperature: float | None,
    cooling: float,
    rng,
) -> dict:
    allocation = SynchronousGreedy().solve(instance).allocation
    current_regret = allocation.total_regret()
    best = allocation.clone()
    best_regret = current_regret

    temperature = initial_temperature
    if temperature is None:
        scale = current_regret if current_regret > 0 else instance.total_payment()
        temperature = max(0.05 * scale, 1e-6)

    accepted = 0
    # Telemetry sampling window: ~100 convergence points per chain.
    sample_every = max(1, steps // 100)
    steps_since_sample = 0
    accepted_at_sample = 0
    samples = []
    for step in range(steps):
        proposal = _propose(allocation, rng)
        temperature *= cooling
        if proposal is not None:
            delta, apply_move = proposal
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                apply_move()
                current_regret += delta
                accepted += 1
                if current_regret < best_regret - 1e-12:
                    best_regret = current_regret
                    best = allocation.clone()
        steps_since_sample += 1
        if steps_since_sample == sample_every or step + 1 == steps:
            samples.append((best_regret, steps_since_sample, accepted - accepted_at_sample))
            steps_since_sample = 0
            accepted_at_sample = accepted
    return {
        "best": best,
        "best_regret": best_regret,
        "accepted": accepted,
        "final_temperature": temperature,
        "samples": samples,
    }


class SimulatedAnnealingSolver(Solver):
    """Metropolis search over assign/release/exchange moves.

    Parameters
    ----------
    steps:
        Number of proposed moves per chain.
    initial_temperature:
        Starting temperature, in regret units.  ``None`` self-calibrates to
        a fraction of the greedy plan's regret (or of the total payment when
        the greedy already reaches zero).
    cooling:
        Geometric decay per step (``T ← T · cooling``).
    seed:
        RNG seed or generator.
    restarts:
        Number of independent chains; the best plan across chains wins
        (first chain wins ties).  ``1`` (default) preserves the classic
        single-chain behaviour bit-for-bit.
    restart_workers:
        Fan chains out over this many processes attached to a shared-memory
        coverage index; ``None``/``1`` runs them serially.  Same result
        either way.
    restart_batch_size:
        Chains packed into one pool task on the parallel path (``"auto"``
        targets ≥0.5 s of compute per task from the run ledger's grain
        history, falling back to one wave per worker; see DESIGN.md §13).
        In-task reduction is the same strict ``<`` in chain order, so every
        batching choice returns the identical best plan.
    """

    name = "SA"

    def __init__(
        self,
        steps: int = 20_000,
        initial_temperature: float | None = None,
        cooling: float = 0.9995,
        seed=None,
        restarts: int = 1,
        restart_workers: int | None = None,
        restart_batch_size="auto",
    ) -> None:
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        if not 0.0 < cooling <= 1.0:
            raise ValueError(f"cooling must be in (0, 1], got {cooling}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if restart_workers is not None and restart_workers < 1:
            raise ValueError(
                f"restart_workers must be >= 1, got {restart_workers}"
            )
        if restart_batch_size not in (None, "auto") and (
            not isinstance(restart_batch_size, int) or restart_batch_size < 1
        ):
            raise ValueError(
                "restart_batch_size must be None, 'auto', or an int >= 1, "
                f"got {restart_batch_size!r}"
            )
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed
        self.restarts = restarts
        self.restart_workers = restart_workers
        self.restart_batch_size = restart_batch_size

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        if self.restarts == 1:
            chains = [
                anneal_chain(
                    instance,
                    self.steps,
                    self.initial_temperature,
                    self.cooling,
                    as_generator(self.seed),
                )
            ]
        else:
            seeds = spawn_children(self.seed, self.restarts)
            if self.restart_workers is not None and self.restart_workers > 1:
                from repro.parallel.restarts import run_annealing_chains

                chains = run_annealing_chains(
                    instance,
                    seeds,
                    steps=self.steps,
                    initial_temperature=self.initial_temperature,
                    cooling=self.cooling,
                    workers=self.restart_workers,
                    restart_batch_size=self.restart_batch_size,
                )
            else:
                chains = [
                    anneal_chain(
                        instance,
                        self.steps,
                        self.initial_temperature,
                        self.cooling,
                        chain_seed,
                    )
                    for chain_seed in seeds
                ]

        # Track the winning chain *index* and fetch its plan once at the end:
        # batched tasks ship only their in-task winner's plan, and the global
        # winner is always its own task's winner (strict < at both levels),
        # so chains[best_index]["best"] is always present.
        best_index = -1
        best_regret = math.inf
        accepted = 0
        for index, chain in enumerate(chains):
            for best_so_far, proposed, accepted_delta in chain["samples"]:
                self.record_iteration(
                    min(best_regret, best_so_far),
                    moves_evaluated=proposed,
                    moves_accepted=accepted_delta,
                )
            accepted += chain["accepted"]
            if chain["best_regret"] < best_regret:
                best_regret = chain["best_regret"]
                best_index = index
                stats["sa_best_restart"] = index
        best = chains[best_index]["best"]

        stats["sa_steps"] = self.steps * self.restarts
        stats["sa_accepted"] = accepted
        stats["sa_final_temperature"] = chains[-1]["final_temperature"]
        if self.restarts > 1:
            stats["sa_restarts"] = self.restarts
        return best
