"""Shared vectorized marginal-gain selection for the greedy solvers.

Both greedies pick, for an advertiser ``a_i``, the unassigned billboard
maximizing the *regret-effectiveness* ratio

    (R(S_i) − R(S_i ∪ {o})) / I({o})

(Algorithm 1 line 1.5 and Algorithm 2 line 2.6).  The batch coverage gains
let us price every candidate in one numpy pass instead of per-billboard
Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation


def _regret_values_unchecked(
    payment: float, demand: float, gamma: float, achieved: np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 1 with no demand validation — the per-move hot path.

    Demand positivity is enforced once, at :class:`~repro.core.problem.
    MROAMInstance` construction, so the solver internals (exchange screens,
    partner selection, greedy pricing) call this variant; the public
    :func:`regret_values` keeps the guard for direct callers.
    """
    achieved = np.asarray(achieved, dtype=np.float64)
    unsatisfied = payment * (1.0 - gamma * achieved / demand)
    excessive = payment * (achieved - demand) / demand
    return np.where(achieved < demand, unsatisfied, excessive)


def regret_values(
    payment: float, demand: float, gamma: float, achieved: np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 1 over an array of achieved influences."""
    if np.any(np.asarray(demand) <= 0):
        raise ValueError("advertiser demand must be positive (Eq. 1 divides by demand)")
    return _regret_values_unchecked(payment, demand, gamma, achieved)


def best_marginal_billboard(
    allocation: Allocation,
    advertiser_id: int,
    candidate_ids: np.ndarray,
) -> int | None:
    """The candidate maximizing the regret-effectiveness ratio, or ``None``.

    Candidates whose individual influence ``I({o})`` is zero are skipped —
    they can never change any advertiser's influence, so assigning them only
    burns inventory (and the paper's ratio is undefined for them).  Ties are
    broken by the smallest billboard id for determinism.
    """
    if len(candidate_ids) == 0:
        return None
    instance = allocation.instance
    advertiser = instance.advertisers[advertiser_id]
    coverage = instance.coverage

    individual = coverage.individual_influences[candidate_ids]
    usable = individual > 0
    if not usable.any():
        return None
    candidate_ids = candidate_ids[usable]
    individual = individual[usable]

    current_influence = allocation.influence(advertiser_id)
    if current_influence == 0:
        # An empty counter row (influence 0 ⇒ all counts 0) makes every
        # candidate's gain exactly its individual influence — the common case
        # for a quoting newcomer, where this skips the batch coverage pass.
        gains = individual
    else:
        masks = allocation.packed_masks(advertiser_id)
        gains = coverage.batch_add_gains(
            allocation.counts_row(advertiser_id),
            free_bits=masks[0] if masks is not None else None,
            candidate_ids=candidate_ids,
        )
    current_regret = instance.regret_of(advertiser_id, current_influence)
    new_regrets = _regret_values_unchecked(
        advertiser.payment, advertiser.demand, instance.gamma, current_influence + gains
    )
    ratios = (current_regret - new_regrets) / individual

    best = int(np.argmax(ratios))
    # argmax returns the first maximum; candidate_ids is sorted ascending, so
    # ties already resolve to the smallest billboard id.
    return int(candidate_ids[best])
