"""Bounded repair: the shared greedy + BLS pass behind quote pricing.

The online host prices a proposal by *repairing* the standing plan around
one newcomer: greedy fills the newcomer from the free pool, then a bounded
number of billboard-driven local-search sweeps smooths the neighbourhood.
Both the from-scratch path (``pricing="full"``) and the incremental path
(``pricing="incremental"``) funnel through :func:`bounded_repair`, so the
two can only differ in *what they skip* — never in the moves they accept —
which is the bit-identity contract of DESIGN.md §15.
"""

from __future__ import annotations

from repro.algorithms.bls import (
    _find_improving_exchange_frozen,
    _release_pass_improves,
    billboard_driven_local_search,
)
from repro.algorithms.greedy_global import synchronous_greedy
from repro.algorithms.screen import ScreenRoundPlanner
from repro.algorithms.sweep import BillboardSweepState
from repro.core.allocation import Allocation


def bounded_repair(
    allocation: Allocation,
    newcomer_id: int,
    sweeps: int,
    state: BillboardSweepState | None = None,
    min_improvement: float = 1e-9,
    stats: dict | None = None,
    screen_workers: int | None = None,
) -> Allocation:
    """Greedy-fill one newcomer, then run ``sweeps`` bounded BLS sweeps.

    With ``state`` (a live :class:`BillboardSweepState`), the BLS pass runs
    warm: certificates earned by earlier repairs against the identical
    allocation state restrict the scans to the free pool plus the dirty set
    around the newcomer.  The greedy fill is stamped as one move touching the
    newcomer *before* the sweeps — it changed the newcomer's set and the
    newcomer's contract differs from whatever the slot previously held, so
    every certificate involving newcomer-owned billboards must be treated as
    stale (this also invalidates the top-up certificate, since the greedy
    drained the free pool it was earned against).

    Returns the repaired allocation — the same object that was passed in
    whenever it journals (the dirty engine's top-up then works in place).
    """
    synchronous_greedy(allocation, active={newcomer_id}, stats=stats)
    if state is not None:
        state.mark_move(advertisers=(newcomer_id,))
    if sweeps:
        # A carried (settled) state trusts its certificates and skips the
        # terminating verify sweep — the from-scratch path keeps it, so the
        # warm quote pays O(delta) where the cold quote pays O(book).  The
        # accepted moves are identical either way (every certificate skip is
        # backed by a proof the scan returns ``None``).
        allocation = billboard_driven_local_search(
            allocation,
            min_improvement=min_improvement,
            max_sweeps=sweeps,
            stats=stats,
            state=state,
            screen_workers=screen_workers,
            final_verify=state is None,
        )
    return allocation


def settle_certificates(
    allocation: Allocation,
    state: BillboardSweepState,
    min_improvement: float = 1e-9,
) -> None:
    """Re-certify a standing plan's sweep state without moving anything.

    Bounded repairs stop at ``max_sweeps`` before their last accepted moves
    are re-certified, so a freshly committed book leaves most scan
    certificates behind the current version — and every subsequent quote
    then screens against a changed-candidate pool of half the inventory.
    This pass runs the exchange screen (and, for rows the screen cannot
    clear, the exact restricted scan) plus the batched release screen over
    the standing plan **read-only**: rows priced non-improving are certified
    at the current version — exactly the proof the dirty engine records
    after a failed screen or a ``None`` scan.  A row whose scan *does* find
    an improving exchange is left uncertified: the move is not applied (the
    plan must stay byte-identical to what the accept sequence produced), so
    its certificate would be a lie.

    Soundness is the dirty engine's own invariant (DESIGN.md §10): a
    certificate only ever claims "the full scan at this version returns
    ``None``", which the screen/scan pair proves.  Settling therefore
    changes what later warm sweeps *skip*, never the moves they accept.
    """
    planner = ScreenRoundPlanner(
        allocation,
        state,
        min_improvement,
        verifying=False,
        screen_workers=None,
        track=False,
        # Read-only: no move is ever applied, so nothing invalidates the
        # round — one eager screen covers the whole book.
        eager_rounds=True,
    )
    for advertiser_id in range(allocation.instance.num_advertisers):
        billboard_list = sorted(allocation.billboards_of(advertiser_id))
        for position, billboard_id in enumerate(billboard_list):
            survived, screen_ids = planner.lookup(
                advertiser_id, position, billboard_list
            )
            if survived:
                # The screen's survivors carry the certificate proof that
                # every excluded partner is non-improving, so the exact scan
                # runs restricted — same soundness as the dirty engine's.
                partner = _find_improving_exchange_frozen(
                    allocation,
                    advertiser_id,
                    billboard_id,
                    min_improvement,
                    candidate_ids=screen_ids,
                )
                if partner is not None:
                    continue  # a real improving move: cannot certify
            state.certify_scan(billboard_id)
        if state.release_pass_clean(advertiser_id):
            continue
        if billboard_list and not _release_pass_improves(
            allocation, advertiser_id, billboard_list, min_improvement
        ):
            state.certify_release_pass(advertiser_id)
