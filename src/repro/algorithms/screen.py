"""Round-fused exchange screens for the dirty BLS engine (DESIGN.md §13).

The dirty engine's optimistic exchange screen is a pure function of the
current allocation: given an outgoing billboard and its candidate set, the
interval arithmetic proves (or fails to prove) that no improving exchange
exists among the candidates.  PR 4 batched the screen per advertiser; the
trace attribution of PR 6 showed that even so, the screen dominates dirty-BLS
sweep wall (~60%) — mostly numpy call overhead and per-billboard candidate
set construction, not arithmetic volume.

This module collapses the screen to *round* granularity:

* :func:`round_candidates` builds every remaining billboard's candidate set
  in one broadcasted pass over the version counters (bit-identical per row to
  :meth:`~repro.algorithms.sweep.BillboardSweepState.changed_candidates` /
  the full-scan mask);
* :func:`round_flags` prices every (billboard, candidate) pair of the round
  in one fused vectorized pass — elementwise identical arithmetic to the
  per-advertiser ``_exchange_screen_batch``, so the verdict vectors are
  bit-identical;
* :class:`ScreenRoundPlanner` caches one round's verdicts for the engine and
  drops them after every accepted move, so each verdict is consumed at
  exactly the allocation state the serial per-advertiser screen would have
  computed it at — the accepted move sequence cannot drift.  Rows are
  screened in geometrically growing chunks (1, 2, 4, …) from the visit
  frontier: move-heavy stretches, where the next accepted move would throw
  eager work away, cost one row per miss exactly like the per-billboard
  screen, while quiescent stretches — the verification sweep and the late
  sweeps where the screen wall actually concentrates — fuse the whole
  remaining round within a logarithmic number of dispatches;
* with ``screen_workers > 1`` the round's rows fan out across the instance's
  persistent shared-memory pool (:func:`repro.parallel.pool.instance_pool`):
  workers rebuild candidate sets from the shipped version counters against
  their attached coverage, return flag vectors (plus candidate sets for the
  few surviving rows), and the parent replays surviving exchanges serially —
  move order, and with it Theorem 2's verification sweep, is untouched.

Rounds below :func:`parallel_min_cells` (``rows × inventory`` cells) stay
serial: a pool round trip costs ~1 ms, which only pays for itself once the
fused screen itself costs more than that.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import env, obs
from repro.algorithms._marginal import _regret_values_unchecked
from repro.algorithms.sweep import round_candidates
from repro.core.allocation import UNASSIGNED

#: Environment override for the serial-fallback threshold (round cells =
#: screened rows × billboard inventory).  Benchmarks and tests lower it to
#: force the parallel path on small instances.
PARALLEL_MIN_CELLS_ENV = env.SCREEN_MIN_CELLS.name

#: Below this many round cells the pool round trip (~1 ms) exceeds the fused
#: screen itself; the planner stays serial.
DEFAULT_PARALLEL_MIN_CELLS = 1 << 17

#: Serial chunk growth stops at this many cells (rows × inventory).  The
#: fused pass materializes several float64 temporaries proportional to the
#: chunk's candidate volume; past this size they fall out of cache and the
#: screen turns memory-bound (measured at bench scale: unbounded chunks
#: cost ~25% more wall than capped ones), while chunks this size still
#: amortize the numpy call overhead dozens of rows at a time.  Only
#: enforced while the parallel path is unavailable: pool workers split
#: oversized chunks, so growth past the cap is exactly what makes fan-out
#: worthwhile.
SERIAL_CHUNK_CELLS = 1 << 16


def parallel_min_cells() -> int:
    """The measured-size threshold gating parallel screen rounds."""
    raw = env.SCREEN_MIN_CELLS.raw()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_PARALLEL_MIN_CELLS


def _optimistic_regret(
    payments: np.ndarray,
    demands: np.ndarray,
    gamma: float,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Minimum Eq. 1 regret reachable with achieved influence in ``[lo, hi]``.

    Regret decreases in the unsatisfied branch, drops to 0 exactly at the
    demand, and increases in the excessive branch, so the minimum is at the
    point of the interval closest to the demand.

    All operands broadcast (scalars welcome).  Demand positivity is enforced
    once at :class:`~repro.core.problem.MROAMInstance` construction, not per
    call — this runs inside the exchange screen's hot path.
    """
    lo = np.maximum(lo, 0.0)
    hi = np.maximum(hi, lo)
    at_hi = payments * (1.0 - gamma * hi / demands)  # still unsatisfied at hi
    at_lo = payments * (lo - demands) / demands  # already excessive at lo
    result = np.where(hi < demands, at_hi, 0.0)
    return np.where(lo > demands, at_lo, result)


def round_flags(
    instance,
    owners: np.ndarray,
    influences: np.ndarray,
    advertiser_ids: np.ndarray,
    billboard_ids: np.ndarray,
    flat_candidates: np.ndarray,
    lengths: np.ndarray,
    min_improvement: float,
) -> np.ndarray:
    """Screen verdicts for every row of a round in one fused pass.

    ``flags[k] is False`` carries the per-advertiser batch screen's proof:
    exchanging ``billboard_ids[k]`` with any of its candidates improves total
    regret by at most ``min_improvement``.  The arithmetic is elementwise
    with per-row scalars broadcast via ``repeat``, so each row's verdict is
    bit-identical to ``_exchange_screen_batch`` on the same candidate set.
    """
    verdicts = np.zeros(len(billboard_ids), dtype=bool)
    keep = np.nonzero(lengths > 0)[0]
    if len(keep) == 0:
        return verdicts
    individual = instance.coverage.individual_influences_f64
    influences_f64 = np.asarray(influences).astype(np.float64)
    seg_lengths = lengths[keep]
    starts = np.zeros(len(keep), dtype=np.int64)
    np.cumsum(seg_lengths[:-1], out=starts[1:])

    row_advertisers = np.asarray(advertiser_ids, dtype=np.int64)[keep]
    outgoing = np.repeat(np.asarray(billboard_ids, dtype=np.int64)[keep], seg_lengths)
    row_payments = instance.payments[row_advertisers]
    row_demands = instance.demands[row_advertisers]
    row_influence = influences_f64[row_advertisers]
    row_regret = _regret_values_unchecked(
        row_payments, row_demands, instance.gamma, row_influence
    )
    own_influence = np.repeat(row_influence, seg_lengths)

    own_best = _optimistic_regret(
        np.repeat(row_payments, seg_lengths),
        np.repeat(row_demands, seg_lengths),
        instance.gamma,
        own_influence - individual[outgoing],
        own_influence + individual[flat_candidates],
    )
    potential = np.repeat(row_regret, seg_lengths) - own_best

    candidate_owners = owners[flat_candidates]
    assigned = candidate_owners != UNASSIGNED
    if assigned.any():
        partner_ids = candidate_owners[assigned]
        partner_influence = influences_f64[partner_ids]
        partner_payments = instance.payments[partner_ids]
        partner_demands = instance.demands[partner_ids]
        partner_regret = _regret_values_unchecked(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence,
        )
        partner_best = _optimistic_regret(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence - individual[flat_candidates[assigned]],
            partner_influence + individual[outgoing[assigned]],
        )
        potential[assigned] += partner_regret - partner_best
    verdicts[keep] = np.logical_or.reduceat(potential > min_improvement, starts)
    return verdicts


def _screen_chunk(instance, payload: tuple) -> dict:
    """One worker's share of a screen round (runs inside the pool).

    The payload carries the allocation snapshot (owners, influences) and the
    sweep-state vectors; candidate sets are rebuilt here against the attached
    coverage — far cheaper to recompute than to ship — and returned only for
    the rows that survive, which are the only ones the parent's exact scans
    will consume.
    """
    (
        owners,
        influences,
        advertiser_version,
        freed_version,
        certified,
        advertiser_ids,
        billboard_ids,
        min_improvement,
    ) = payload
    flat, lengths = round_candidates(
        owners, advertiser_ids, billboard_ids, certified, advertiser_version, freed_version
    )
    flags = round_flags(
        instance,
        owners,
        influences,
        advertiser_ids,
        billboard_ids,
        flat,
        lengths,
        min_improvement,
    )
    offsets = np.zeros(len(billboard_ids), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    survivors = {
        int(billboard_ids[k]): flat[offsets[k] : offsets[k] + lengths[k]]
        for k in np.nonzero(flags)[0]
    }
    return {"flags": flags, "survivors": survivors}


class ScreenRoundPlanner:
    """Round-level verdict cache for the dirty engine's exchange phase.

    One *round* covers every billboard the phase has yet to visit: the
    current advertiser's remaining list plus all later advertisers' sets.
    Verdicts stay valid while the allocation is unchanged; every accepted
    move calls :meth:`invalidate`, so a verdict is always consumed at the
    allocation state the serial per-advertiser screen would have computed it
    at.  A ``certify_scan`` between misses never invalidates: it stamps only
    the screened billboard's own certificate, which no other row's candidate
    set reads.

    The round is screened lazily in chunks that double per miss (1, 2, 4,
    …), resetting after every invalidation.  This keeps the planner no worse
    than the per-billboard screen when moves land constantly (each chunk is
    then a single frontier row) and lets it fuse — and with
    ``screen_workers`` fan out — the whole remaining inventory once moves
    dry up, which is where the screen wall concentrates.

    Moves themselves are never computed here — the parent replays surviving
    exchanges serially through the exact restricted scan, which is what
    keeps the move sequence (and the final verification sweep's guarantee)
    identical across serial and parallel screen runs.
    """

    def __init__(
        self,
        allocation,
        state,
        min_improvement: float,
        verifying: bool,
        screen_workers: int | None,
        track: bool,
        eager_rounds: bool = False,
    ) -> None:
        self.allocation = allocation
        self.state = state
        self.min_improvement = min_improvement
        self.verifying = verifying
        self.screen_workers = screen_workers
        self.track = track
        self.screen_seconds = 0.0
        self.rounds = 0
        self.parallel_rounds = 0
        self._valid = False
        self._chunk_rows = 1
        # Eager rounds: the first screen of the round covers the whole
        # remaining frontier (still bounded by the serial cell cap) instead
        # of doubling up from one row.  Callers that expect few or no moves —
        # warm quote repairs on a settled state, the read-only settle pass —
        # opt in: nine doubling dispatches collapse into one or two, and the
        # post-move reset below still drops back to single-row chunks when a
        # move does land.  Verdicts are row-wise and chunking-invariant, so
        # this changes wall-clock only.
        self._next_chunk = (1 << 30) if eager_rounds else 1
        self._verdicts: dict[int, bool] = {}
        self._survivor_sets: dict[int, np.ndarray] = {}

    def invalidate(self) -> None:
        """Drop the cached verdicts (call after every accepted move)."""
        self._valid = False
        self._next_chunk = 1  # a move landed: assume more follow nearby

    def lookup(
        self, advertiser_id: int, position: int, billboard_list: list[int]
    ) -> tuple[bool, np.ndarray | None]:
        """Verdict (and, for survivors, the screened candidate ids) of
        ``billboard_list[position]`` owned by ``advertiser_id``.

        A miss — the cache was invalidated by a move, or the visit frontier
        passed the covered prefix — screens the next chunk of the remaining
        round, starting at this row.  Chunks double per consecutive miss and
        reset to one row after an invalidation.
        """
        billboard_id = billboard_list[position]
        if not self._valid:
            self._verdicts = {}
            self._survivor_sets = {}
            self._chunk_rows = self._next_chunk
            self._valid = True
        if billboard_id not in self._verdicts:
            self._compute(advertiser_id, position, billboard_list)
        if not self._verdicts.get(billboard_id, False):
            return False, None
        return True, self._survivor_sets[billboard_id]

    def clear_run(
        self, advertiser_id: int, position: int, billboard_list: list[int]
    ) -> tuple[int, list[int]]:
        """The advertiser's screened-clear run starting at ``position``.

        Returns ``(rows_consumed, billboards_to_certify)``: the longest
        prefix of ``billboard_list[position:]`` the serial loop would walk
        without scanning — rows no longer owned (skipped without a
        certificate) and rows whose cached verdict is ``False`` (skipped
        *with* one).  Stops at the first row whose verdict is missing or
        ``True``.  No move can have landed inside the run (a move empties
        the cache), so the caller may certify the whole run in one
        vectorized stamp — each row lands on exactly the version the
        per-row loop would have written.
        """
        if not self._valid:
            return 0, []
        verdicts = self._verdicts
        owner_of = self.allocation.owner_of
        consumed = 0
        cleared: list[int] = []
        for billboard_id in billboard_list[position:]:
            if owner_of(billboard_id) != advertiser_id:
                consumed += 1  # moved earlier in this sweep: skip, no stamp
                continue
            if not (billboard_id in verdicts and not verdicts[billboard_id]):
                break
            consumed += 1
            cleared.append(billboard_id)
        return consumed, cleared

    # ------------------------------------------------------------ internals

    def _round_rows(
        self, advertiser_id: int, position: int, billboard_list: list[int], limit: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The next ``limit`` unscreened rows from the visit frontier, in the
        exact order the serial engine visits them: the current advertiser's
        remaining (still-owned) list, then each later advertiser's sorted
        set."""
        allocation = self.allocation
        advertisers: list[int] = []
        billboards: list[int] = []
        for candidate in billboard_list[position:]:
            if len(billboards) >= limit:
                break
            if allocation.owner_of(candidate) == advertiser_id:
                advertisers.append(advertiser_id)
                billboards.append(candidate)
        later = advertiser_id + 1
        while len(billboards) < limit and later < allocation.instance.num_advertisers:
            for candidate in sorted(allocation.billboards_of(later)):
                if len(billboards) >= limit:
                    break
                advertisers.append(later)
                billboards.append(candidate)
            later += 1
        return (
            np.asarray(advertisers, dtype=np.int64),
            np.asarray(billboards, dtype=np.int64),
        )

    def _serial_row_width(self) -> int:
        """Estimated candidates per row, for the cache-bound serial chunk cap.

        A cold (or verifying) state screens full-inventory rows, so the cap
        divides by the inventory as before.  A settled warm state screens
        only the billboards stamped since the oldest owned certificate — a
        handful per row — so the cap can admit proportionally more rows per
        fused round, collapsing a whole warm sweep into one or two screen
        calls.  Purely a chunking heuristic: verdicts are computed row-wise
        and are chunking-invariant, so this changes wall-clock only.
        """
        allocation = self.allocation
        inventory = allocation.instance.num_billboards
        if self.verifying:
            return inventory
        state = self.state
        owners = allocation.owners
        assigned = owners != UNASSIGNED
        if not assigned.any():
            return inventory
        # The certificate floor is taken over rows that will actually screen
        # restricted; own-side-stale rows (owner moved since certification,
        # or never certified) take the full mask whatever the floor says,
        # and their billboards count into the width below via their fresh
        # stamps instead.
        owned = np.nonzero(assigned)[0]
        cert = state.scan_version[owned]
        current = (cert > 0) & (state.advertiser_version[owners[owned]] <= cert)
        if not current.any():
            return inventory
        floor = int(cert[current].min())
        stamp = np.where(
            assigned,
            state.advertiser_version[np.where(assigned, owners, 0)],
            state.freed_version,
        )
        return max(int((stamp > floor).sum()), 1)

    def _compute(
        self, advertiser_id: int, position: int, billboard_list: list[int]
    ) -> None:
        started = time.perf_counter() if self.track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock
        limit = self._chunk_rows
        if not self.screen_workers or self.screen_workers < 2:
            limit = min(
                limit, max(1, SERIAL_CHUNK_CELLS // max(self._serial_row_width(), 1))
            )
        advertiser_ids, billboard_ids = self._round_rows(
            advertiser_id, position, billboard_list, limit
        )
        self._chunk_rows = limit * 2
        self.rounds += 1
        obs.counter_add("bls.screen.rounds")
        if len(billboard_ids) == 0:
            if self.track:
                self.screen_seconds += time.perf_counter() - started  # repro-lint: ignore[determinism] telemetry-only clock
            return
        allocation = self.allocation
        state = self.state
        owners = allocation.owners
        certified = state.round_certificates(
            advertiser_ids, billboard_ids, self.verifying
        )
        flags, survivors = None, None
        if self._use_pool(len(billboard_ids)):
            flags, survivors = self._compute_parallel(
                owners, advertiser_ids, billboard_ids, certified
            )
        if flags is None:
            flags, survivors = self._serial_round(
                owners, advertiser_ids, billboard_ids, certified
            )
        self._verdicts.update(
            zip((int(b) for b in billboard_ids), flags.tolist())
        )
        self._survivor_sets.update(survivors)
        if self.track:
            self.screen_seconds += time.perf_counter() - started  # repro-lint: ignore[determinism] telemetry-only clock

    def _serial_round(
        self,
        owners: np.ndarray,
        advertiser_ids: np.ndarray,
        billboard_ids: np.ndarray,
        certified: np.ndarray,
    ) -> tuple[np.ndarray, dict]:
        allocation = self.allocation
        state = self.state
        flat, lengths = round_candidates(
            owners,
            advertiser_ids,
            billboard_ids,
            certified,
            state.advertiser_version,
            state.freed_version,
        )
        flags = round_flags(
            allocation.instance,
            owners,
            allocation.influences,
            advertiser_ids,
            billboard_ids,
            flat,
            lengths,
            self.min_improvement,
        )
        offsets = np.zeros(len(billboard_ids), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        survivors = {
            int(billboard_ids[k]): flat[offsets[k] : offsets[k] + lengths[k]]
            for k in np.nonzero(flags)[0]
        }
        return flags, survivors

    def _use_pool(self, rows: int) -> bool:
        if not self.screen_workers or self.screen_workers < 2 or rows < 2:
            return False
        cells = rows * self.allocation.instance.num_billboards
        return cells >= parallel_min_cells()

    def _compute_parallel(
        self,
        owners: np.ndarray,
        advertiser_ids: np.ndarray,
        billboard_ids: np.ndarray,
        certified: np.ndarray,
    ) -> tuple[np.ndarray, dict] | tuple[None, None]:
        from repro.parallel.pool import instance_pool

        allocation = self.allocation
        state = self.state
        pool = instance_pool(allocation.instance, self.screen_workers)
        chunks = min(pool.workers, len(billboard_ids))
        if chunks < 2:
            # The affinity cap collapsed the pool to one worker — the round
            # trip buys nothing; the caller falls back to the fused serial
            # screen in-process.
            return None, None
        influences = np.asarray(allocation.influences)
        shared = (
            np.asarray(owners),
            influences,
            state.advertiser_version,
            state.freed_version,
        )
        payloads = []
        for adv_chunk, bb_chunk, cert_chunk in zip(
            np.array_split(advertiser_ids, chunks),
            np.array_split(billboard_ids, chunks),
            np.array_split(certified, chunks),
        ):
            payloads.append((*shared, cert_chunk, adv_chunk, bb_chunk, self.min_improvement))
        self.parallel_rounds += 1
        obs.counter_add("bls.screen.parallel")
        results = pool.run(_screen_chunk, payloads)
        flags = np.concatenate([result["flags"] for result in results])
        survivors: dict[int, np.ndarray] = {}
        for result in results:
            survivors.update(result["survivors"])
        return flags, survivors
