"""G-Global: the synchronous greedy (paper Algorithm 2).

Unsatisfied advertisers are served round-robin, one billboard each per round,
so no single advertiser monopolizes the ideal inventory.  When the pool runs
dry while several advertisers remain unsatisfied, the least budget-effective
unsatisfied advertiser is *released* — its billboards return to the pool and
it is excluded from further assignment (it ends with an empty set and pays
the full unsatisfied penalty) — until fewer than two advertisers remain
unsatisfied.

The function form :func:`synchronous_greedy` mutates an existing allocation,
which is how Algorithms 3 and 5 invoke it as a subroutine with a non-empty
starting plan ``S^in``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._marginal import best_marginal_billboard
from repro.algorithms.base import Solver
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


def _sorted_unassigned(allocation: Allocation) -> np.ndarray:
    candidates = np.fromiter(
        allocation.unassigned, dtype=np.int64, count=len(allocation.unassigned)
    )
    candidates.sort()
    return candidates


def synchronous_greedy(
    allocation: Allocation,
    active: set[int] | None = None,
    stats: dict | None = None,
) -> None:
    """Run Algorithm 2 in place on ``allocation``.

    Parameters
    ----------
    allocation:
        The plan to extend; may already hold assignments (``S^in``).
    active:
        Advertiser ids eligible for assignment; defaults to all.  Mutated in
        place as advertisers are released.
    stats:
        Optional output dict receiving ``assignments`` / ``releases`` counts.
    """
    instance = allocation.instance
    if active is None:
        active = set(range(instance.num_advertisers))
    assignments = 0
    releases = 0
    marginal_evals = 0

    while True:
        unsatisfied = [i for i in sorted(active) if not allocation.is_satisfied(i)]
        if not unsatisfied:
            break

        progress = False
        for advertiser_id in unsatisfied:
            if allocation.is_satisfied(advertiser_id) or not allocation.unassigned:
                continue
            candidates = _sorted_unassigned(allocation)
            marginal_evals += len(candidates)
            pick = best_marginal_billboard(allocation, advertiser_id, candidates)
            if pick is None:
                continue
            allocation.assign(pick, advertiser_id)
            assignments += 1
            progress = True

        if progress:
            continue

        # The pool is exhausted (or only useless billboards remain).  Release
        # the least budget-effective unsatisfied advertiser so the others can
        # be topped up, until fewer than two remain unsatisfied (lines
        # 2.9-2.13).
        unsatisfied = [i for i in sorted(active) if not allocation.is_satisfied(i)]
        if len(unsatisfied) >= 2:
            victim = min(
                unsatisfied,
                key=lambda i: (instance.advertisers[i].budget_effectiveness, i),
            )
            allocation.release_all(victim)
            active.discard(victim)
            releases += 1
        else:
            break

    if stats is not None:
        stats["assignments"] = stats.get("assignments", 0) + assignments
        stats["releases"] = stats.get("releases", 0) + releases
        stats["marginal_gain_evals"] = (
            stats.get("marginal_gain_evals", 0) + marginal_evals
        )


class SynchronousGreedy(Solver):
    """Algorithm 2 as a standalone solver (the paper's G-Global)."""

    name = "G-Global"

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        allocation = Allocation(instance)
        synchronous_greedy(allocation, stats=stats)
        return allocation
