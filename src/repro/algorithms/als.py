"""Advertiser-driven local search (paper Algorithm 4).

The neighbourhood of a plan is every plan reachable by exchanging the *whole*
billboard sets of two advertisers.  Because influence depends only on the
set, each candidate exchange is priced from the two influence scalars alone,
making this the cheap-but-coarse member of the framework: it can rescue a
plan where one advertiser hogs a large set, but cannot rebalance individual
billboards.
"""

from __future__ import annotations

from repro.core.allocation import Allocation
from repro.core.moves import delta_exchange_sets


def advertiser_driven_local_search(
    allocation: Allocation,
    min_improvement: float = 1e-9,
    stats: dict | None = None,
) -> Allocation:
    """Run Algorithm 4 in place; returns the same (improved) allocation.

    Sweeps all ordered advertiser pairs, applying any set exchange that
    strictly reduces total regret, until a full sweep finds no improving
    exchange.  ``min_improvement`` guards against float-noise cycling.
    """
    num_advertisers = allocation.instance.num_advertisers
    sweeps = 0
    exchanges = 0
    evaluated = 0
    improved = True
    while improved:
        improved = False
        sweeps += 1
        for advertiser_a in range(num_advertisers):
            for advertiser_b in range(advertiser_a + 1, num_advertisers):
                delta = delta_exchange_sets(allocation, advertiser_a, advertiser_b)
                evaluated += 1
                if delta < -min_improvement:
                    allocation.exchange_sets(advertiser_a, advertiser_b)
                    exchanges += 1
                    improved = True
    if stats is not None:
        stats["als_sweeps"] = stats.get("als_sweeps", 0) + sweeps
        stats["als_exchanges"] = stats.get("als_exchanges", 0) + exchanges
        stats["als_moves_evaluated"] = stats.get("als_moves_evaluated", 0) + evaluated
    return allocation
