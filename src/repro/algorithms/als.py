"""Advertiser-driven local search (paper Algorithm 4).

The neighbourhood of a plan is every plan reachable by exchanging the *whole*
billboard sets of two advertisers.  Because influence depends only on the
set, each candidate exchange is priced from the two influence scalars alone,
making this the cheap-but-coarse member of the framework: it can rescue a
plan where one advertiser hogs a large set, but cannot rebalance individual
billboards.

The default ``engine="dirty"`` skips pairs where neither advertiser's set
changed since the pair was last priced non-improving (the delta depends only
on the two influence scalars, so it is provably unchanged), and finishes with
one unrestricted sweep; ``engine="full"`` is the reference loop.  Both accept
the identical exchange sequence.
"""

from __future__ import annotations

from repro import obs
from repro.algorithms.sweep import PairSweepState
from repro.core.allocation import Allocation
from repro.core.moves import delta_exchange_sets

SWEEP_ENGINES = ("dirty", "full")


def _emit_stats(stats: dict, sweeps: int, exchanges: int, evaluated: int) -> None:
    stats["als_sweeps"] = stats.get("als_sweeps", 0) + sweeps
    stats["als_exchanges"] = stats.get("als_exchanges", 0) + exchanges
    stats["als_moves_evaluated"] = stats.get("als_moves_evaluated", 0) + evaluated


def _full_engine(
    allocation: Allocation, min_improvement: float, stats: dict | None
) -> Allocation:
    num_advertisers = allocation.instance.num_advertisers
    sweeps = 0
    exchanges = 0
    evaluated = 0
    improved = True
    while improved:
        improved = False
        sweeps += 1
        for advertiser_a in range(num_advertisers):
            for advertiser_b in range(advertiser_a + 1, num_advertisers):
                delta = delta_exchange_sets(allocation, advertiser_a, advertiser_b)
                evaluated += 1
                if delta < -min_improvement:
                    allocation.exchange_sets(advertiser_a, advertiser_b)
                    exchanges += 1
                    improved = True
    if stats is not None:
        _emit_stats(stats, sweeps, exchanges, evaluated)
    return allocation


def _dirty_engine(
    allocation: Allocation, min_improvement: float, stats: dict | None
) -> Allocation:
    num_advertisers = allocation.instance.num_advertisers
    state = PairSweepState(num_advertisers)
    sweeps = 0
    exchanges = 0
    evaluated = 0
    verifying = False
    while True:
        improved = False
        sweeps += 1
        for advertiser_a in range(num_advertisers):
            # One vectorized row filter replaces the per-pair pair_clean
            # calls.  An accepted exchange dirties every later pair in the
            # row (it bumps advertiser_a's version), so the remaining suffix
            # is re-queried after each acceptance — cleanliness is thereby
            # evaluated at visit time, exactly like the per-pair loop.
            start = advertiser_a + 1
            while start < num_advertisers:
                if verifying:
                    partners = range(start, num_advertisers)
                else:
                    partners = state.dirty_partners(advertiser_a, start)
                start = num_advertisers
                for advertiser_b in partners:
                    advertiser_b = int(advertiser_b)
                    delta = delta_exchange_sets(allocation, advertiser_a, advertiser_b)
                    evaluated += 1
                    if delta < -min_improvement:
                        allocation.exchange_sets(advertiser_a, advertiser_b)
                        state.mark_exchange(advertiser_a, advertiser_b)
                        exchanges += 1
                        improved = True
                        start = advertiser_b + 1
                        break
                    state.certify_pair(advertiser_a, advertiser_b)
        if improved:
            verifying = False
            continue
        if verifying:
            break  # the unrestricted sweep found nothing: local optimum
        verifying = True
    if stats is not None:
        _emit_stats(stats, sweeps, exchanges, evaluated)
    return allocation


def advertiser_driven_local_search(
    allocation: Allocation,
    min_improvement: float = 1e-9,
    stats: dict | None = None,
    engine: str = "dirty",
) -> Allocation:
    """Run Algorithm 4 in place; returns the same (improved) allocation.

    Sweeps all ordered advertiser pairs, applying any set exchange that
    strictly reduces total regret, until a full sweep finds no improving
    exchange.  ``min_improvement`` guards against float-noise cycling.
    ``engine`` selects the sweep bookkeeping (see module docstring); the
    resulting allocation is identical either way.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {SWEEP_ENGINES}")
    with obs.span("als.search", engine=engine):
        if engine == "full":
            return _full_engine(allocation, min_improvement, stats)
        return _dirty_engine(allocation, min_improvement, stats)
