"""Solver registry: paper method names → configured solver instances."""

from __future__ import annotations

from repro.algorithms.base import Solver
from repro.algorithms.greedy_global import SynchronousGreedy
from repro.algorithms.greedy_order import BudgetEffectiveGreedy
from repro.algorithms.local_search import RandomizedLocalSearch

#: The four methods compared in the paper's experiments, in reporting order.
PAPER_METHODS = ("g-order", "g-global", "als", "bls")


def make_solver(name: str, seed=None, **kwargs) -> Solver:
    """Create a solver by its paper name.

    Parameters
    ----------
    name:
        One of ``"g-order"``, ``"g-global"``, ``"als"``, ``"bls"``
        (case-insensitive; ``_`` and ``-`` interchangeable).
    seed:
        RNG seed for the randomized methods (ignored by the greedies).
    **kwargs:
        Extra constructor arguments (e.g. ``restarts`` for ALS/BLS).
    """
    key = name.lower().replace("_", "-")
    if key == "g-order":
        return BudgetEffectiveGreedy()
    if key == "g-global":
        return SynchronousGreedy()
    if key == "als":
        return RandomizedLocalSearch(neighborhood="als", seed=seed, **kwargs)
    if key == "bls":
        return RandomizedLocalSearch(neighborhood="bls", seed=seed, **kwargs)
    if key == "sa":
        from repro.algorithms.annealing import SimulatedAnnealingSolver

        return SimulatedAnnealingSolver(seed=seed, **kwargs)
    if key == "bnb":
        from repro.algorithms.branch_and_bound import BranchAndBoundSolver

        return BranchAndBoundSolver(**kwargs)
    raise ValueError(
        f"unknown solver {name!r}; expected one of {PAPER_METHODS} "
        "or the extensions ('sa', 'bnb')"
    )
