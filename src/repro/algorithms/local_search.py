"""The randomized local search framework (paper Algorithm 3).

The framework first takes the synchronous greedy plan as the incumbent and
refines it with the configured neighbourhood search.  It then performs a
number of *random restarts*: each restart seeds every advertiser with one
uniformly random billboard, completes the plan with the synchronous greedy,
runs the neighbourhood search, and keeps the best plan seen.  The random
seeding is what lets the framework escape the greedy's poor local minima
(the objective is neither monotone nor submodular, Example 2 of the paper).

The two neighbourhoods are the paper's ALS (Algorithm 4, advertiser-set
exchanges) and BLS (Algorithm 5, billboard-level moves).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.als import advertiser_driven_local_search
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.algorithms.base import Solver
from repro.utils.rng import as_generator

NEIGHBORHOODS = ("als", "bls")


class RandomizedLocalSearch(Solver):
    """Algorithm 3 parameterized by the neighbourhood search strategy.

    Parameters
    ----------
    neighborhood:
        ``"als"`` (Algorithm 4) or ``"bls"`` (Algorithm 5).
    restarts:
        The "preset count" of random restarts (Algorithm 3 line 3.2); the
        deterministic greedy start is refined in addition to these.
    seed:
        RNG seed (or generator) driving the random restart plans.
    min_improvement:
        Acceptance threshold forwarded to the neighbourhood search.
    max_sweeps:
        Optional sweep cap forwarded to the BLS neighbourhood.
    """

    def __init__(
        self,
        neighborhood: str = "bls",
        restarts: int = 5,
        seed=None,
        min_improvement: float = 1e-9,
        max_sweeps: int | None = None,
    ) -> None:
        if neighborhood not in NEIGHBORHOODS:
            raise ValueError(
                f"unknown neighborhood {neighborhood!r}; expected one of {NEIGHBORHOODS}"
            )
        if restarts < 0:
            raise ValueError(f"restarts must be non-negative, got {restarts}")
        self.neighborhood = neighborhood
        self.restarts = restarts
        self.seed = seed
        self.min_improvement = min_improvement
        self.max_sweeps = max_sweeps
        self.name = neighborhood.upper()

    def _local_search(self) -> Callable[[Allocation, dict], Allocation]:
        if self.neighborhood == "als":
            return lambda allocation, stats: advertiser_driven_local_search(
                allocation, self.min_improvement, stats
            )
        return lambda allocation, stats: billboard_driven_local_search(
            allocation, self.min_improvement, self.max_sweeps, stats
        )

    def _random_seed_plan(self, instance: MROAMInstance, rng: np.random.Generator) -> Allocation:
        """Lines 3.3-3.7: one uniformly random billboard per advertiser."""
        allocation = Allocation(instance)
        pool = np.arange(instance.num_billboards)
        rng.shuffle(pool)
        for advertiser_id in range(min(instance.num_advertisers, len(pool))):
            allocation.assign(int(pool[advertiser_id]), advertiser_id)
        return allocation

    # Cumulative stats counters the restart telemetry reports as deltas.
    _EVALUATED_KEYS = ("als_moves_evaluated", "bls_moves_evaluated")
    _ACCEPTED_KEYS = (
        "als_exchanges",
        "bls_exchanges",
        "bls_releases",
        "bls_topups",
        "assignments",
        "releases",
    )

    def _record_restart(self, best_regret: float, before: dict, stats: dict) -> None:
        """One telemetry point per restart: best regret + this restart's moves."""

        def delta(keys: tuple) -> int:
            return sum(stats.get(k, 0) - before.get(k, 0) for k in keys)

        self.record_iteration(
            best_regret,
            moves_evaluated=delta(self._EVALUATED_KEYS),
            moves_accepted=delta(self._ACCEPTED_KEYS),
            marginal_gain_evals=delta(("marginal_gain_evals",)),
        )

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        rng = as_generator(self.seed)
        local_search = self._local_search()

        # Line 3.1: incumbent from the synchronous greedy, then refined.
        before = dict(stats)
        best = Allocation(instance)
        synchronous_greedy(best, stats=stats)
        best = local_search(best, stats)
        best_regret = best.total_regret()
        stats["best_restart"] = -1  # -1 = the deterministic greedy start
        self._record_restart(best_regret, before, stats)

        for restart in range(self.restarts):
            before = dict(stats)
            plan = self._random_seed_plan(instance, rng)
            synchronous_greedy(plan, stats=stats)
            plan = local_search(plan, stats)
            plan_regret = plan.total_regret()
            if plan_regret < best_regret:
                best, best_regret = plan, plan_regret
                stats["best_restart"] = restart
            self._record_restart(best_regret, before, stats)
        stats["restarts"] = self.restarts
        return best
