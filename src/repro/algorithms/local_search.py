"""The randomized local search framework (paper Algorithm 3).

The framework first takes the synchronous greedy plan as the incumbent and
refines it with the configured neighbourhood search.  It then performs a
number of *random restarts*: each restart seeds every advertiser with one
uniformly random billboard, completes the plan with the synchronous greedy,
runs the neighbourhood search, and keeps the best plan seen.  The random
seeding is what lets the framework escape the greedy's poor local minima
(the objective is neither monotone nor submodular, Example 2 of the paper).

The two neighbourhoods are the paper's ALS (Algorithm 4, advertiser-set
exchanges) and BLS (Algorithm 5, billboard-level moves).

``restart_workers > 1`` fans the restarts out over worker processes that
attach the coverage index through shared memory (:mod:`repro.parallel`).
The restart seed plans are pre-drawn from the same sequential RNG stream the
serial loop consumes, and the best-plan reduction applies the same strict
``<`` in restart order, so serial and parallel runs return the identical
best allocation.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro import obs
from repro.algorithms.als import advertiser_driven_local_search
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.greedy_global import synchronous_greedy
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.algorithms.base import Solver
from repro.utils.rng import as_generator

NEIGHBORHOODS = ("als", "bls")
ENGINES = ("dirty", "dirty-full-scan", "full")


class RandomizedLocalSearch(Solver):
    """Algorithm 3 parameterized by the neighbourhood search strategy.

    Parameters
    ----------
    neighborhood:
        ``"als"`` (Algorithm 4) or ``"bls"`` (Algorithm 5).
    restarts:
        The "preset count" of random restarts (Algorithm 3 line 3.2); the
        deterministic greedy start is refined in addition to these.
    seed:
        RNG seed (or generator) driving the random restart plans.
    min_improvement:
        Acceptance threshold forwarded to the neighbourhood search.
    max_sweeps:
        Optional sweep cap forwarded to the BLS neighbourhood.
    engine:
        Sweep engine for the neighbourhood search: ``"dirty"`` (default)
        skips provably unchanged scans, ``"full"`` rescans everything.  Both
        reach the identical allocation (see DESIGN.md §9).
    restart_workers:
        Fan the random restarts out over this many worker processes attached
        to a shared-memory coverage index; ``None``/``1`` runs them serially.
        Same best allocation either way.
    restart_batch_size:
        Restarts packed into one pool task on the parallel path (DESIGN.md
        §13).  ``"auto"`` (default) sizes batches so one task targets ≥0.5 s
        of compute, calibrated from the incumbent refinement's wall time (or
        the run ledger's grain history); an explicit int pins the batch
        size; ``None``/``1`` restores one-task-per-restart.  The reduction
        is strict ``<`` in restart order in-task and across tasks, so every
        batching choice returns the serial run's exact best allocation.
    screen_workers:
        Forwarded to the BLS neighbourhood: fan each dirty-engine screen
        round over the instance's worker pool when the round exceeds the
        measured-size threshold.  Verdicts (hence moves) are bit-identical
        to the serial screen.
    """

    def __init__(
        self,
        neighborhood: str = "bls",
        restarts: int = 5,
        seed=None,
        min_improvement: float = 1e-9,
        max_sweeps: int | None = None,
        engine: str = "dirty",
        restart_workers: int | None = None,
        restart_batch_size="auto",
        screen_workers: int | None = None,
    ) -> None:
        if neighborhood not in NEIGHBORHOODS:
            raise ValueError(
                f"unknown neighborhood {neighborhood!r}; expected one of {NEIGHBORHOODS}"
            )
        if restarts < 0:
            raise ValueError(f"restarts must be non-negative, got {restarts}")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if restart_workers is not None and restart_workers < 1:
            raise ValueError(
                f"restart_workers must be >= 1, got {restart_workers}"
            )
        if restart_batch_size not in (None, "auto") and (
            not isinstance(restart_batch_size, int) or restart_batch_size < 1
        ):
            raise ValueError(
                "restart_batch_size must be None, 'auto', or an int >= 1, "
                f"got {restart_batch_size!r}"
            )
        if screen_workers is not None and screen_workers < 1:
            raise ValueError(f"screen_workers must be >= 1, got {screen_workers}")
        self.neighborhood = neighborhood
        self.restarts = restarts
        self.seed = seed
        self.min_improvement = min_improvement
        self.max_sweeps = max_sweeps
        self.engine = engine
        self.restart_workers = restart_workers
        self.restart_batch_size = restart_batch_size
        self.screen_workers = screen_workers
        self.name = neighborhood.upper()

    def _local_search(self) -> Callable[[Allocation, dict], Allocation]:
        if self.neighborhood == "als":
            # ALS has no coverage scans to restrict, so the BLS-only
            # "dirty-full-scan" benchmarking engine maps to plain "dirty".
            als_engine = "full" if self.engine == "full" else "dirty"
            return lambda allocation, stats: advertiser_driven_local_search(
                allocation, self.min_improvement, stats, engine=als_engine
            )
        return lambda allocation, stats: billboard_driven_local_search(
            allocation,
            self.min_improvement,
            self.max_sweeps,
            stats,
            engine=self.engine,
            screen_workers=self.screen_workers,
        )

    def _random_seed_ids(
        self, instance: MROAMInstance, rng: np.random.Generator
    ) -> np.ndarray:
        """The billboard drawn for each advertiser (one RNG shuffle)."""
        pool = np.arange(instance.num_billboards)
        rng.shuffle(pool)
        return pool[: min(instance.num_advertisers, len(pool))].copy()

    def _random_seed_plan(self, instance: MROAMInstance, rng: np.random.Generator) -> Allocation:
        """Lines 3.3-3.7: one uniformly random billboard per advertiser."""
        allocation = Allocation(instance)
        for advertiser_id, billboard_id in enumerate(self._random_seed_ids(instance, rng)):
            allocation.assign(int(billboard_id), int(advertiser_id))
        return allocation

    # Cumulative stats counters the restart telemetry reports as deltas.
    _EVALUATED_KEYS = (
        "als_moves_evaluated",
        "bls_exchange_evaluated",
        "bls_release_evaluated",
    )
    _ACCEPTED_KEYS = (
        "als_exchanges",
        "bls_exchanges",
        "bls_releases",
        "bls_topups",
        "assignments",
        "releases",
    )

    def _record_restart(self, best_regret: float, before: dict, stats: dict) -> None:
        """One telemetry point per restart: best regret + this restart's moves."""

        def delta(keys: tuple) -> int:
            return sum(stats.get(k, 0) - before.get(k, 0) for k in keys)

        self.record_iteration(
            best_regret,
            moves_evaluated=delta(self._EVALUATED_KEYS),
            moves_accepted=delta(self._ACCEPTED_KEYS),
            marginal_gain_evals=delta(("marginal_gain_evals",)),
        )

    @staticmethod
    def _merge_stats(stats: dict, extra: dict) -> None:
        """Fold a restart's counters into the cumulative stats dict."""
        for key, value in extra.items():
            if isinstance(value, (int, float)):
                stats[key] = stats.get(key, 0) + value

    def _parallel_restarts(
        self,
        instance: MROAMInstance,
        rng: np.random.Generator,
        best: Allocation,
        best_regret: float,
        stats: dict,
        estimate_seconds: float | None,
    ) -> tuple[Allocation, float]:
        """Fan the restarts out over processes; identical reduction to serial.

        The seed-id arrays are pre-drawn here from the same ``rng`` stream
        (and in the same order) the serial loop would consume, so the workers
        run the exact restarts the serial path runs.  The reduction tracks
        the winning restart *index* and rebuilds one allocation at the end —
        batched tasks only ship their in-task winner's owner vector, and the
        global winner is always its own task's winner (strict ``<`` both
        levels), so that vector is always present.
        """
        from repro.parallel.restarts import (
            allocation_from_owners,
            run_local_search_restarts,
        )

        seed_ids = [
            self._random_seed_ids(instance, rng) for _ in range(self.restarts)
        ]
        outcomes = run_local_search_restarts(
            instance,
            seed_ids,
            neighborhood=self.neighborhood,
            min_improvement=self.min_improvement,
            max_sweeps=self.max_sweeps,
            engine=self.engine,
            workers=self.restart_workers,
            restart_batch_size=self.restart_batch_size,
            estimate_seconds=estimate_seconds,
        )
        with obs.span("restart.reduce", restarts=len(outcomes)):
            best_index = -1
            for restart, outcome in enumerate(outcomes):
                before = dict(stats)
                self._merge_stats(stats, outcome["stats"])
                if outcome["total_regret"] < best_regret:
                    best_regret = outcome["total_regret"]
                    best_index = restart
                    stats["best_restart"] = restart
                self._record_restart(best_regret, before, stats)
            if best_index >= 0:
                best = allocation_from_owners(
                    instance, outcomes[best_index]["owners"]
                )
        return best, best_regret

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        rng = as_generator(self.seed)
        local_search = self._local_search()

        # Line 3.1: incumbent from the synchronous greedy, then refined.
        # Its wall time doubles as the "auto" grain calibration estimate —
        # one restart is the same greedy + neighbourhood search from a
        # random seed plan.
        before = dict(stats)
        incumbent_started = time.perf_counter()  # repro-lint: ignore[determinism] telemetry-only clock
        best = Allocation(instance)
        synchronous_greedy(best, stats=stats)
        best = local_search(best, stats)
        incumbent_seconds = time.perf_counter() - incumbent_started  # repro-lint: ignore[determinism] telemetry-only clock
        best_regret = best.total_regret()
        stats["best_restart"] = -1  # -1 = the deterministic greedy start
        self._record_restart(best_regret, before, stats)

        if self.restarts > 0 and (self.restart_workers or 1) > 1:
            best, best_regret = self._parallel_restarts(
                instance, rng, best, best_regret, stats, incumbent_seconds
            )
        else:
            for restart in range(self.restarts):
                before = dict(stats)
                plan = self._random_seed_plan(instance, rng)
                synchronous_greedy(plan, stats=stats)
                plan = local_search(plan, stats)
                plan_regret = plan.total_regret()
                if plan_regret < best_regret:
                    best, best_regret = plan, plan_regret
                    stats["best_restart"] = restart
                self._record_restart(best_regret, before, stats)
        stats["restarts"] = self.restarts
        return best
