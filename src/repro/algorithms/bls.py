"""Billboard-driven local search (paper Algorithm 5).

The fine-grained neighbourhood: starting from the current plan, apply any of
four move families that reduces total regret, until none does:

1. exchange a billboard of one advertiser with a billboard of another;
2. exchange an assigned billboard with an unassigned one;
3. release an assigned billboard back to the pool;
4. top up with the synchronous greedy over the unassigned pool.

Theorem 2 shows this search reaches a ``(1+r)``-approximate local maximum of
the dual objective ``R'`` (see :mod:`repro.theory.duality`).

Scanning every billboard pair exactly would cost ``O(|U|²)`` exact delta
evaluations per sweep.  We keep the search exact but prune with an
*optimistic improvement bound*: for a candidate exchange, each affected
advertiser's post-move influence provably lands in an interval derived from
the two billboards' individual influences, so the best regret reachable over
that interval upper-bounds the move's improvement.  Candidates are exactly
evaluated in descending bound order; once bounds fall below the improvement
threshold, no improving exchange can exist among the rest.  Termination at a
genuine local minimum is therefore preserved.

Two sweep engines drive the move families:

* ``engine="full"`` — the reference loop: every sweep rescans every assigned
  billboard.
* ``engine="dirty"`` (default) — the dirty-set engine: version counters
  (:mod:`repro.algorithms.sweep`) certify which scans provably cannot find a
  move since nothing near them changed, and an interval screen discards
  candidates whose optimistic bound already falls below the acceptance
  threshold.  Skipped work is *proof-backed*, so both engines accept the
  identical move sequence and reach the identical allocation; the dirty
  engine still finishes with one unrestricted sweep before declaring local
  optimality (DESIGN.md §9).  Scans that survive the screen run *restricted*
  to the changed candidates via the row-restricted coverage kernels
  (DESIGN.md §10); ``engine="dirty-full-scan"`` disables only that
  restriction, for benchmarking the kernels against their full-pass
  ancestor.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.obs import trace as _trace
from repro.algorithms._marginal import _regret_values_unchecked
from repro.algorithms.greedy_global import synchronous_greedy

# _optimistic_regret lives in repro.algorithms.screen since the round-fused
# screens landed (DESIGN.md §13); re-exported here because it is the interval
# bound Algorithm 5's pruning argument is stated in terms of.
from repro.algorithms.screen import ScreenRoundPlanner, _optimistic_regret  # noqa: F401
from repro.algorithms.sweep import BillboardSweepState
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_release

SWEEP_ENGINES = ("dirty", "dirty-full-scan", "full")


def _partner_swap_delta(
    allocation: Allocation, partner_id: int, lost_billboard: int, gained_billboard: int
) -> int:
    """Exact influence change of advertiser ``partner_id`` losing
    ``lost_billboard`` and gaining ``gained_billboard``.

    Delegates to :meth:`CoverageIndex.swap_delta` — on the packed bitmap
    kernel the partner side of the exchange scan is two masked popcounts fed
    by the allocation's cached ``counts == 0`` / ``counts == 1`` bitmasks.
    """
    coverage = allocation.instance.coverage
    masks = allocation.packed_masks(partner_id)
    free_bits, ones_bits = masks if masks is not None else (None, None)
    return coverage.swap_delta(
        lost_billboard,
        gained_billboard,
        allocation.counts_row(partner_id),
        free_bits=free_bits,
        ones_bits=ones_bits,
    )


def _select_partner(
    allocation: Allocation,
    advertiser_id: int,
    billboard_id: int,
    own_regret: float,
    released_influence: float,
    candidates: np.ndarray,
    gains: np.ndarray,
    min_improvement: float,
    counters: dict | None,
) -> int | None:
    """Pick the best exchange partner given the own-side batch gains.

    ``gains[i]`` must price ``S_i − o_m + o_{candidates[i]}`` (both scan
    variants produce exactly this, full or candidate-restricted); everything
    downstream — the free-side argmin, the bound-ordered partner
    confirmation — is shared so the variants cannot drift apart.
    ``candidates`` must be ascending and exclude ``billboard_id`` and
    ``advertiser_id``'s own billboards; tie-breaks resolve by position, so a
    restricted scan whose candidate set provably contains every improving
    partner returns the identical choice as the full scan.
    """
    instance = allocation.instance
    individual = instance.coverage.individual_influences_f64
    advertiser = instance.advertisers[advertiser_id]

    owners = allocation.owners
    candidate_owners = owners[candidates].copy()
    if counters is not None:
        counters["exchange_evaluated"] = counters.get("exchange_evaluated", 0) + len(
            candidates
        )

    own_new = released_influence + gains.astype(np.float64)
    own_delta = (
        _regret_values_unchecked(
            advertiser.payment, float(advertiser.demand), instance.gamma, own_new
        )
        - own_regret
    )

    assigned = candidate_owners != UNASSIGNED
    free = ~assigned

    # Free candidates: the own-side delta is the whole story.
    best_free: int | None = None
    best_free_delta = -min_improvement
    if free.any():
        free_deltas = own_delta[free]
        position = int(np.argmin(free_deltas))
        if free_deltas[position] < best_free_delta:
            best_free = int(candidates[free][position])
            best_free_delta = float(free_deltas[position])

    # Assigned candidates: add an optimistic partner-side bound, then
    # confirm exactly in descending-bound order.
    best_assigned: int | None = None
    best_assigned_delta = -min_improvement
    if assigned.any():
        all_influences = allocation.influences.astype(np.float64)
        regret_by_advertiser = _regret_values_unchecked(
            instance.payments, instance.demands, instance.gamma, all_influences
        )
        partner_ids = candidate_owners[assigned]
        partner_influence = all_influences[partner_ids]
        partner_regret = regret_by_advertiser[partner_ids]
        # Partner j loses o_n and gains o_m: influence lands in
        # [v_j - I(o_n), v_j + I(o_m)].
        lo = partner_influence - individual[candidates[assigned]]
        hi = partner_influence + float(individual[billboard_id])
        partner_best = _optimistic_regret(
            instance.payments[partner_ids],
            instance.demands[partner_ids],
            instance.gamma,
            lo,
            hi,
        )
        improvement_bound = -(own_delta[assigned] + (partner_best - partner_regret))

        assigned_candidates = candidates[assigned]
        # Stable sort: equal bounds keep their ascending-candidate order, so
        # full and restricted scans confirm tied candidates in the same order.
        order = np.argsort(-improvement_bound, kind="stable")
        for position in order:
            if improvement_bound[position] <= -best_assigned_delta:
                break
            partner_billboard = int(assigned_candidates[position])
            partner_id = int(partner_ids[position])
            if counters is not None:
                counters["partner_exact"] = counters.get("partner_exact", 0) + 1
            influence_delta = _partner_swap_delta(
                allocation, partner_id, partner_billboard, billboard_id
            )
            partner_delta = (
                instance.regret_of(
                    partner_id, allocation.influence(partner_id) + influence_delta
                )
                - regret_by_advertiser[partner_id]
            )
            total = float(own_delta[assigned][position]) + partner_delta
            if total < best_assigned_delta:
                best_assigned = partner_billboard
                best_assigned_delta = total
                break  # first confirmed improvement wins

    if best_free is None and best_assigned is None:
        return None
    if best_assigned is None:
        return best_free
    if best_free is None:
        return best_assigned
    return best_free if best_free_delta <= best_assigned_delta else best_assigned


def _find_improving_exchange(
    allocation: Allocation,
    advertiser_id: int,
    billboard_id: int,
    min_improvement: float,
    counters: dict | None = None,
) -> int | None:
    """Best-bound-first search for an improving exchange partner of
    ``billboard_id`` (owned by ``advertiser_id``), or ``None``.

    The scan temporarily releases ``billboard_id`` so one batch coverage pass
    yields the *exact* own-side regret delta for every candidate partner:
    free-candidate exchanges are then fully priced with no per-candidate
    work, and only the partner advertiser's side of owner↔owner exchanges
    retains an optimistic interval bound that exact evaluation must confirm.
    """
    instance = allocation.instance
    coverage = instance.coverage
    own_influence = float(allocation.influence(advertiser_id))
    own_regret = instance.regret_of(advertiser_id, own_influence)

    # Temporarily release o_m: the batch gains over the resulting counters
    # price "S_i - o_m + o_n" exactly for every o_n.  Restored before return.
    allocation.release(billboard_id)
    try:
        released_influence = float(allocation.influence(advertiser_id))
        candidates = _all_exchange_candidates(
            allocation.owners, advertiser_id, billboard_id
        )
        masks = allocation.packed_masks(advertiser_id)
        gains = coverage.batch_add_gains(
            allocation.counts_row(advertiser_id),
            free_bits=masks[0] if masks is not None else None,
        )
        return _select_partner(
            allocation,
            advertiser_id,
            billboard_id,
            own_regret,
            released_influence,
            candidates,
            gains[candidates],
            min_improvement,
            counters,
        )
    finally:
        allocation.assign(billboard_id, advertiser_id)


def _find_improving_exchange_frozen(
    allocation: Allocation,
    advertiser_id: int,
    billboard_id: int,
    min_improvement: float,
    counters: dict | None = None,
    candidate_ids: np.ndarray | None = None,
) -> int | None:
    """:func:`_find_improving_exchange` without the release/assign round trip.

    Prices the released state analytically — the own-side gains come from
    :meth:`CoverageIndex.batch_add_gains_without` against the *unmodified*
    counter row, so the allocation (and its cached packed masks) is never
    touched.  Returns the identical partner: the candidate mask is unchanged
    (``billboard_id`` is excluded either way), the gain integers are equal by
    construction, and the shared :func:`_select_partner` does the rest.

    ``candidate_ids`` restricts the scan (and the coverage kernel pass) to
    those partners; the dirty engine passes the changed-candidate set, whose
    certificates prove every excluded partner is non-improving, so the
    restricted scan's answer equals the full scan's.
    """
    instance = allocation.instance
    coverage = instance.coverage
    if candidate_ids is None:
        candidate_ids = _all_exchange_candidates(
            allocation.owners, advertiser_id, billboard_id
        )
    own_influence = float(allocation.influence(advertiser_id))
    own_regret = instance.regret_of(advertiser_id, own_influence)
    released_influence = own_influence - float(
        allocation.influence_delta_remove(advertiser_id, billboard_id)
    )
    masks = allocation.packed_masks(advertiser_id)
    gains = coverage.batch_add_gains_without(
        allocation.counts_row(advertiser_id),
        billboard_id,
        free_bits=masks[0] if masks is not None else None,
        ones_bits=masks[1] if masks is not None else None,
        candidate_ids=candidate_ids,
    )
    return _select_partner(
        allocation,
        advertiser_id,
        billboard_id,
        own_regret,
        released_influence,
        candidate_ids,
        gains,
        min_improvement,
        counters,
    )


def _exchange_screen(
    allocation: Allocation,
    advertiser_id: int,
    billboard_id: int,
    candidate_ids: np.ndarray,
    min_improvement: float,
) -> bool:
    """Optimistic gate over a candidate set: ``False`` proves that exchanging
    ``billboard_id`` with *any* of ``candidate_ids`` improves total regret by
    at most ``min_improvement`` — the exact scan would return ``None``.

    Uses the same interval bounds the exact scan prunes with: the own side
    lands in ``[v_i − I(o_m), v_i + I(o_n)]`` and an assigned partner in
    ``[v_j − I(o_n), v_j + I(o_m)]``, so the summed best-case regret drop
    upper-bounds the true improvement.  Costs a handful of vectorized passes,
    no coverage queries.
    """
    if len(candidate_ids) == 0:
        return False
    instance = allocation.instance
    individual = instance.coverage.individual_influences_f64
    advertiser = instance.advertisers[advertiser_id]
    own_influence = float(allocation.influence(advertiser_id))
    own_regret = instance.regret_of(advertiser_id, own_influence)

    own_best = _optimistic_regret(
        advertiser.payment,
        float(advertiser.demand),
        instance.gamma,
        own_influence - float(individual[billboard_id]),
        own_influence + individual[candidate_ids],
    )
    potential = own_regret - own_best

    candidate_owners = allocation.owners[candidate_ids]
    assigned = candidate_owners != UNASSIGNED
    if assigned.any():
        partner_ids = candidate_owners[assigned]
        all_influences = allocation.influences.astype(np.float64)
        partner_influence = all_influences[partner_ids]
        partner_payments = instance.payments[partner_ids]
        partner_demands = instance.demands[partner_ids]
        partner_regret = _regret_values_unchecked(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence,
        )
        partner_best = _optimistic_regret(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence - individual[candidate_ids[assigned]],
            partner_influence + float(individual[billboard_id]),
        )
        potential[assigned] += partner_regret - partner_best
    return bool(np.any(potential > min_improvement))


def _exchange_screen_batch(
    allocation: Allocation,
    advertiser_id: int,
    billboard_ids: list[int],
    candidate_sets: list[np.ndarray],
    min_improvement: float,
) -> np.ndarray:
    """:func:`_exchange_screen` for many outgoing billboards in one pass.

    ``verdicts[k] is False`` carries the same proof as the scalar screen:
    exchanging ``billboard_ids[k]`` with any of ``candidate_sets[k]`` improves
    total regret by at most ``min_improvement``.  The bound arithmetic is
    elementwise, so concatenating the per-billboard candidate vectors and
    running it once yields bit-identical verdicts while paying the numpy call
    overhead once per advertiser pass instead of once per owned billboard.

    Valid only while the allocation is unchanged since the call — the dirty
    engine recomputes the batch after every accepted move.
    """
    verdicts = np.zeros(len(billboard_ids), dtype=bool)
    lengths = np.fromiter(
        (len(ids) for ids in candidate_sets),
        dtype=np.int64,
        count=len(candidate_sets),
    )
    keep = np.nonzero(lengths > 0)[0]
    if len(keep) == 0:
        return verdicts
    instance = allocation.instance
    individual = instance.coverage.individual_influences_f64
    advertiser = instance.advertisers[advertiser_id]
    own_influence = float(allocation.influence(advertiser_id))
    own_regret = instance.regret_of(advertiser_id, own_influence)

    flat = np.concatenate([candidate_sets[k] for k in keep])
    seg_lengths = lengths[keep]
    outgoing = np.repeat(
        np.asarray(billboard_ids, dtype=np.int64)[keep], seg_lengths
    )
    starts = np.zeros(len(keep), dtype=np.int64)
    np.cumsum(seg_lengths[:-1], out=starts[1:])

    own_best = _optimistic_regret(
        advertiser.payment,
        float(advertiser.demand),
        instance.gamma,
        own_influence - individual[outgoing],
        own_influence + individual[flat],
    )
    potential = own_regret - own_best

    candidate_owners = allocation.owners[flat]
    assigned = candidate_owners != UNASSIGNED
    if assigned.any():
        partner_ids = candidate_owners[assigned]
        all_influences = allocation.influences.astype(np.float64)
        partner_influence = all_influences[partner_ids]
        partner_payments = instance.payments[partner_ids]
        partner_demands = instance.demands[partner_ids]
        partner_regret = _regret_values_unchecked(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence,
        )
        partner_best = _optimistic_regret(
            partner_payments,
            partner_demands,
            instance.gamma,
            partner_influence - individual[flat[assigned]],
            partner_influence + individual[outgoing[assigned]],
        )
        potential[assigned] += partner_regret - partner_best
    verdicts[keep] = np.logical_or.reduceat(potential > min_improvement, starts)
    return verdicts


def _release_pass_improves(
    allocation: Allocation,
    advertiser_id: int,
    owned: list[int],
    min_improvement: float,
) -> bool:
    """Whether releasing any one billboard in ``owned`` improves total regret
    by more than ``min_improvement``, priced in one restricted batch pass.

    Equivalent to looping :func:`~repro.core.moves.delta_release` over
    ``owned`` against the unchanged allocation: the loss vector is
    :meth:`~repro.billboard.influence.CoverageIndex.batch_remove_losses`
    restricted to the owned rows, and the regret arithmetic repeats Eq. 1
    with the same operation order as the scalar path, so ``False`` proves
    the sequential release loop would accept nothing.
    """
    instance = allocation.instance
    masks = allocation.packed_masks(advertiser_id)
    losses = instance.coverage.batch_remove_losses(
        allocation.counts_row(advertiser_id),
        ones_bits=masks[1] if masks is not None else None,
        candidate_ids=np.asarray(owned, dtype=np.int64),
    )
    advertiser = instance.advertisers[advertiser_id]
    before = float(allocation.influence(advertiser_id))
    deltas = _regret_values_unchecked(
        advertiser.payment,
        float(advertiser.demand),
        instance.gamma,
        before - losses.astype(np.float64),
    ) - instance.regret_of(advertiser_id, before)
    return bool(np.any(deltas < -min_improvement))


def _all_exchange_candidates(
    owners: np.ndarray, advertiser_id: int, billboard_id: int
) -> np.ndarray:
    """Every legal exchange partner of ``billboard_id`` (the full scan's mask)."""
    mask = owners != advertiser_id
    mask[billboard_id] = False
    return np.nonzero(mask)[0]


def _emit_sweep_phases(
    engine: str,
    started: float,
    screen_s: float,
    exchange_s: float,
    release_s: float,
    topup_s: float,
    verify: bool,
) -> None:
    """Record one sweep's phase split (histograms + a ``bls.sweep`` trace event).

    Only called when collection or tracing is on — the engines sample the
    clock per phase boundary, not per move, so the instrumented sweep costs a
    handful of ``perf_counter`` reads.
    """
    duration_s = time.perf_counter() - started  # repro-lint: ignore[determinism] telemetry-only clock
    obs.histogram_observe("bls.phase.screen", screen_s)
    obs.histogram_observe("bls.phase.exchange", exchange_s)
    obs.histogram_observe("bls.phase.release", release_s)
    obs.histogram_observe("bls.phase.topup", topup_s)
    if verify:
        obs.histogram_observe("bls.phase.verify", duration_s)
    _trace.emit_complete(
        "bls.sweep",
        started,
        duration_s,
        cat="bls",
        args={
            "engine": engine,
            "screen_s": screen_s,
            "exchange_s": exchange_s,
            "release_s": release_s,
            "topup_s": topup_s,
            "verify": verify,
        },
    )


def _emit_stats(stats: dict, sweeps, exchanges, releases, topups, counters) -> None:
    stats["bls_sweeps"] = stats.get("bls_sweeps", 0) + sweeps
    stats["bls_exchanges"] = stats.get("bls_exchanges", 0) + exchanges
    stats["bls_releases"] = stats.get("bls_releases", 0) + releases
    stats["bls_topups"] = stats.get("bls_topups", 0) + topups
    stats["bls_exchange_evaluated"] = stats.get(
        "bls_exchange_evaluated", 0
    ) + counters.get("exchange_evaluated", 0)
    stats["bls_release_evaluated"] = stats.get(
        "bls_release_evaluated", 0
    ) + counters.get("release_evaluated", 0)
    stats["bls_partner_exact_evals"] = stats.get(
        "bls_partner_exact_evals", 0
    ) + counters.get("partner_exact", 0)


def _full_engine(
    allocation: Allocation,
    min_improvement: float,
    max_sweeps: int | None,
    stats: dict | None,
) -> Allocation:
    """The reference sweep loop: rescan everything, every sweep."""
    instance = allocation.instance
    sweeps = 0
    exchanges = 0
    releases = 0
    topups = 0
    counters: dict = {}

    while True:
        sweeps += 1
        improved = False
        track = obs.enabled() or obs.trace_enabled()
        sweep_start = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock

        # Move families 1 & 2: pairwise and assigned↔free exchanges.
        for advertiser_id in range(instance.num_advertisers):
            for billboard_id in sorted(allocation.billboards_of(advertiser_id)):
                if allocation.owner_of(billboard_id) != advertiser_id:
                    continue  # already moved earlier in this sweep
                partner = _find_improving_exchange(
                    allocation, advertiser_id, billboard_id, min_improvement, counters
                )
                if partner is not None:
                    allocation.exchange_billboards(billboard_id, partner)
                    exchanges += 1
                    improved = True
        exchange_end = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock

        # Move family 3: releases.
        for advertiser_id in range(instance.num_advertisers):
            for billboard_id in sorted(allocation.billboards_of(advertiser_id)):
                counters["release_evaluated"] = (
                    counters.get("release_evaluated", 0) + 1
                )
                if delta_release(allocation, billboard_id) < -min_improvement:
                    allocation.release(billboard_id)
                    releases += 1
                    improved = True
        release_end = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock

        # Move family 4: greedy top-up of the unassigned pool (line 5.11),
        # adopted only if it strictly improves (lines 5.12-5.13).
        if allocation.unassigned:
            candidate = allocation.clone()
            synchronous_greedy(candidate)
            if candidate.total_regret() < allocation.total_regret() - min_improvement:
                allocation = candidate
                topups += 1
                improved = True

        if track:
            _emit_sweep_phases(
                "full",
                sweep_start,
                0.0,
                exchange_end - sweep_start,
                release_end - exchange_end,
                time.perf_counter() - release_end,  # repro-lint: ignore[determinism] telemetry-only clock
                verify=False,
            )
        if not improved or (max_sweeps is not None and sweeps >= max_sweeps):
            break

    if stats is not None:
        _emit_stats(stats, sweeps, exchanges, releases, topups, counters)
    return allocation


def _dirty_engine(
    allocation: Allocation,
    min_improvement: float,
    max_sweeps: int | None,
    stats: dict | None,
    restrict_scans: bool = True,
    screen_workers: int | None = None,
    state: BillboardSweepState | None = None,
    final_verify: bool = True,
) -> Allocation:
    """The dirty-set sweep loop (see module docstring and DESIGN.md §9–10).

    Accepts exactly the moves the full engine accepts: every skipped scan is
    backed by a version certificate or an interval-screen proof that the full
    scan would have returned ``None`` there, and termination requires one
    final sweep with the certificates disabled.

    With ``restrict_scans`` (the default), a scan that survives the screen
    runs restricted to the changed-candidate set instead of the whole
    inventory — sound for the same reason the screen is: every certified
    candidate is provably non-improving, so the restricted scan's partner
    choice equals the full scan's (DESIGN.md §10).  ``restrict_scans=False``
    is the ``"dirty-full-scan"`` engine, kept for benchmarking the restricted
    kernels against their full-pass ancestor.

    ``screen_workers`` lets the restricted engine fan each screen *round*
    across the instance's persistent worker pool (DESIGN.md §13) — verdicts
    only; surviving exchanges are still replayed serially here, so the
    accepted move sequence is unchanged.

    ``state`` lets a caller carry version certificates across invocations
    (the incremental quoting engine, DESIGN.md §15).  Sound only when the
    allocation is byte-identical to where the certificates were earned —
    which the journal's rollback guarantees; a cold run on the same
    allocation takes the identical move sequence because every warm skip is
    backed by a proof that the cold scan would return ``None`` there.
    """
    instance = allocation.instance
    if state is None:
        state = BillboardSweepState(instance.num_advertisers, instance.num_billboards)
    journaled = bool(getattr(allocation, "journaling", False))
    sweeps = 0
    exchanges = 0
    releases = 0
    topups = 0
    scanned = 0
    skipped = 0
    counters: dict = {}
    verifying = False
    engine_name = "dirty" if restrict_scans else "dirty-full-scan"

    while True:
        sweeps += 1
        improved = False
        verify_sweep = verifying
        track = obs.enabled() or obs.trace_enabled()
        sweep_start = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock
        screen_s = 0.0

        # Move families 1 & 2: pairwise and assigned↔free exchanges.  The
        # restricted engine screens at *round* granularity — one fused bound
        # computation over every billboard the phase has yet to visit,
        # optionally fanned across the worker pool (ScreenRoundPlanner,
        # bit-identical verdicts) and recomputed after every accepted move;
        # the dirty-full-scan engine keeps the per-billboard screen — it *is*
        # the PR-3 loop, preserved as the benchmark baseline.
        planner = (
            ScreenRoundPlanner(
                allocation,
                state,
                min_improvement,
                verifying,
                screen_workers,
                track,
                # Warm quote repairs (trusted termination on a settled state)
                # expect few or no moves per sweep: screen the whole frontier
                # in one eager round instead of doubling up from one row.
                # Cold solves keep the adaptive doubling — their early sweeps
                # are move-heavy and eager rounds would screen rows a move is
                # about to invalidate.
                eager_rounds=not final_verify and not verifying,
            )
            if restrict_scans
            else None
        )
        for advertiser_id in range(instance.num_advertisers):
            billboard_list = sorted(allocation.billboards_of(advertiser_id))
            position = 0
            while position < len(billboard_list):
                billboard_id = billboard_list[position]
                if allocation.owner_of(billboard_id) != advertiser_id:
                    position += 1
                    continue  # already moved earlier in this sweep
                owners = allocation.owners
                if restrict_scans:
                    survived, screen_ids = planner.lookup(
                        advertiser_id, position, billboard_list
                    )
                    if not survived:
                        # The cached round covers the advertiser's remaining
                        # screened-clear run (eager rounds cover whole warm
                        # sweeps): certify it with one vectorized stamp
                        # instead of one loop iteration per row.
                        consumed, cleared = planner.clear_run(
                            advertiser_id, position, billboard_list
                        )
                        if consumed:
                            if cleared:
                                state.certify_scans(cleared)
                                skipped += len(cleared)
                            position += consumed
                            continue
                else:
                    screen_begin = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock
                    if verifying or state.own_side_stale(advertiser_id, billboard_id):
                        screen_ids = _all_exchange_candidates(
                            owners, advertiser_id, billboard_id
                        )
                    else:
                        screen_ids = state.changed_candidates(
                            billboard_id, owners, advertiser_id
                        )
                    survived = _exchange_screen(
                        allocation,
                        advertiser_id,
                        billboard_id,
                        screen_ids,
                        min_improvement,
                    )
                    if track:
                        screen_s += time.perf_counter() - screen_begin  # repro-lint: ignore[determinism] telemetry-only clock
                if not survived:
                    skipped += 1
                    state.certify_scan(billboard_id)
                    position += 1
                    continue
                scanned += 1
                # The screened set already carries the certificate proof that
                # every other candidate is non-improving, so the exact scan
                # (and its coverage pass) can run restricted to it.
                partner = _find_improving_exchange_frozen(
                    allocation,
                    advertiser_id,
                    billboard_id,
                    min_improvement,
                    counters,
                    candidate_ids=screen_ids if restrict_scans else None,
                )
                if partner is None:
                    state.certify_scan(billboard_id)
                    position += 1
                    continue
                partner_owner = allocation.owner_of(partner)
                allocation.exchange_billboards(billboard_id, partner)
                if partner_owner == UNASSIGNED:
                    # Family 2: billboard_id itself returns to the free pool.
                    state.mark_move(
                        advertisers=(advertiser_id,), freed=(billboard_id,)
                    )
                else:
                    state.mark_move(advertisers=(advertiser_id, partner_owner))
                exchanges += 1
                improved = True
                if planner is not None:
                    planner.invalidate()  # the move invalidates the round
                position += 1
        if planner is not None and track:
            screen_s = planner.screen_seconds
        exchange_end = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock

        # Move family 3: releases.  An advertiser's pass depends only on its
        # own set, so it is skipped while its certificate holds.
        for advertiser_id in range(instance.num_advertisers):
            if not verifying and state.release_pass_clean(advertiser_id):
                continue
            owned = sorted(allocation.billboards_of(advertiser_id))
            if restrict_scans and owned:
                # One restricted batch pass prices every owned billboard's
                # release against the current state; when none improves, the
                # whole per-billboard loop is provably a no-op and the pass
                # certifies immediately.
                if not _release_pass_improves(
                    allocation, advertiser_id, owned, min_improvement
                ):
                    counters["release_evaluated"] = counters.get(
                        "release_evaluated", 0
                    ) + len(owned)
                    state.certify_release_pass(advertiser_id)
                    continue
            accepted_any = False
            for billboard_id in owned:
                counters["release_evaluated"] = (
                    counters.get("release_evaluated", 0) + 1
                )
                if delta_release(allocation, billboard_id) < -min_improvement:
                    allocation.release(billboard_id)
                    state.mark_move(
                        advertisers=(advertiser_id,), freed=(billboard_id,)
                    )
                    releases += 1
                    accepted_any = True
                    improved = True
            if not accepted_any:
                state.certify_release_pass(advertiser_id)
        release_end = time.perf_counter() if track else 0.0  # repro-lint: ignore[determinism] telemetry-only clock

        # Move family 4: greedy top-up.  The greedy is deterministic in the
        # allocation, so it is re-run whenever the pool is non-empty (exactly
        # like the full engine) and its adoptions mark every advertiser whose
        # set it extended.
        if allocation.unassigned and (verify_sweep or not state.topup_clean()):
            # The certificate skip above is provably a rejection replay:
            # greedy is deterministic in the allocation, so an unchanged
            # state (version <= topup_version) reproduces the rejected
            # candidate.  Verify sweeps re-run it unconditionally, exactly
            # like the scan certificates.
            before_regret = allocation.total_regret()
            old_owners = allocation.owners.copy()
            if journaled:
                # In place under the journal so object identity survives (the
                # quoting engine rolls the whole quote back through it);
                # bit-identical to the clone path because greedy is
                # deterministic and rollback is an exact inverse.
                topup_mark = allocation.journal_mark()
                synchronous_greedy(allocation)
                adopted = (
                    allocation.total_regret() < before_regret - min_improvement
                )
                if not adopted:
                    allocation.rollback_to(topup_mark)
            else:
                candidate = allocation.clone()
                synchronous_greedy(candidate)
                adopted = candidate.total_regret() < before_regret - min_improvement
                if adopted:
                    allocation = candidate
            if adopted:
                changed = np.nonzero(old_owners != allocation.owners)[0]
                affected = {
                    int(owner)
                    for billboard in changed
                    for owner in (old_owners[billboard], allocation.owners[billboard])
                    if owner != UNASSIGNED
                }
                state.mark_move(advertisers=sorted(affected))
                topups += 1
                improved = True
            else:
                state.certify_topup()

        if track:
            _emit_sweep_phases(
                engine_name,
                sweep_start,
                screen_s,
                exchange_end - sweep_start - screen_s,
                release_end - exchange_end,
                time.perf_counter() - release_end,  # repro-lint: ignore[determinism] telemetry-only clock
                verify=verify_sweep,
            )
        if max_sweeps is not None and sweeps >= max_sweeps:
            break
        if improved:
            verifying = False
            continue
        if verifying:
            break  # the unrestricted sweep found nothing: local optimum
        if not final_verify:
            break  # caller trusts the certificates: empty sweep = optimum
        verifying = True

    obs.counter_add("bls.dirty.scanned", scanned)
    obs.counter_add("bls.dirty.skipped", skipped)
    if stats is not None:
        _emit_stats(stats, sweeps, exchanges, releases, topups, counters)
        stats["bls_dirty_scanned"] = stats.get("bls_dirty_scanned", 0) + scanned
        stats["bls_dirty_skipped"] = stats.get("bls_dirty_skipped", 0) + skipped
    return allocation


def billboard_driven_local_search(
    allocation: Allocation,
    min_improvement: float = 1e-9,
    max_sweeps: int | None = None,
    stats: dict | None = None,
    engine: str = "dirty",
    screen_workers: int | None = None,
    state: BillboardSweepState | None = None,
    final_verify: bool = True,
) -> Allocation:
    """Run Algorithm 5; returns the improved allocation (may be a new object).

    Parameters
    ----------
    allocation:
        Starting plan; mutated in place for move families 1–3.
    min_improvement:
        Minimum absolute regret reduction for a move to be accepted.  This is
        the ``r``-style improvement threshold of Definition 6.1 (expressed
        absolutely rather than relatively) and also guards against
        float-noise cycling.
    max_sweeps:
        Optional hard cap on full sweeps (None = run to local optimality).
    stats:
        Optional output dict receiving move counters.
    engine:
        ``"dirty"`` (default) skips scans proven unchanged since their last
        empty result and restricts surviving scans to the changed candidates;
        ``"dirty-full-scan"`` keeps the certificates but runs surviving scans
        over the whole inventory (the pre-restriction behaviour, kept for
        benchmarking); ``"full"`` rescans everything each sweep.  All three
        reach the identical allocation via the identical move sequence.
    screen_workers:
        With ``engine="dirty"`` and a value ≥ 2, screen rounds above the
        measured-size threshold (``REPRO_SCREEN_MIN_CELLS``) are fanned
        across the instance's persistent worker pool; verdicts — and
        therefore the accepted moves — are bit-identical to the serial
        screen (DESIGN.md §13).  ``None`` (default) keeps every round
        in-process.
    state:
        Optional :class:`BillboardSweepState` carried across invocations
        (warm certificates for the incremental quoting engine, DESIGN.md
        §15).  Only meaningful for the dirty engines; the caller must
        guarantee the allocation matches the state the certificates were
        earned against.
    final_verify:
        When ``True`` (default) a sweep that finds nothing is followed by
        one sweep with the certificates disabled before declaring a local
        optimum — the dirty engine's belt-and-braces mirror of the full
        engine's terminating no-op sweep.  ``False`` trusts the
        certificates and stops at the first empty sweep: sound because a
        certificate only ever skips a scan proven to return ``None``, so
        the verify sweep cannot accept a move the restricted sweep missed.
        The incremental quoting engine passes ``False`` — its carried,
        settled state would otherwise pay one full-inventory screen pass
        per quote for a sweep that provably does nothing (DESIGN.md §15).
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {SWEEP_ENGINES}")
    if state is not None and engine == "full":
        raise ValueError("a carried sweep state requires a dirty engine")
    with obs.span("bls.search", engine=engine):
        if engine == "full":
            return _full_engine(allocation, min_improvement, max_sweeps, stats)
        return _dirty_engine(
            allocation,
            min_improvement,
            max_sweeps,
            stats,
            restrict_scans=(engine == "dirty"),
            screen_workers=screen_workers,
            state=state,
            final_verify=final_verify,
        )
