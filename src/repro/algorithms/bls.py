"""Billboard-driven local search (paper Algorithm 5).

The fine-grained neighbourhood: starting from the current plan, apply any of
four move families that reduces total regret, until none does:

1. exchange a billboard of one advertiser with a billboard of another;
2. exchange an assigned billboard with an unassigned one;
3. release an assigned billboard back to the pool;
4. top up with the synchronous greedy over the unassigned pool.

Theorem 2 shows this search reaches a ``(1+r)``-approximate local maximum of
the dual objective ``R'`` (see :mod:`repro.theory.duality`).

Scanning every billboard pair exactly would cost ``O(|U|²)`` exact delta
evaluations per sweep.  We keep the search exact but prune with an
*optimistic improvement bound*: for a candidate exchange, each affected
advertiser's post-move influence provably lands in an interval derived from
the two billboards' individual influences, so the best regret reachable over
that interval upper-bounds the move's improvement.  Candidates are exactly
evaluated in descending bound order; once bounds fall below the improvement
threshold, no improving exchange can exist among the rest.  Termination at a
genuine local minimum is therefore preserved.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._marginal import regret_values
from repro.algorithms.greedy_global import synchronous_greedy
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_release


def _optimistic_regret(
    payments: np.ndarray,
    demands: np.ndarray,
    gamma: float,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Minimum Eq. 1 regret reachable with achieved influence in ``[lo, hi]``.

    Regret decreases in the unsatisfied branch, drops to 0 exactly at the
    demand, and increases in the excessive branch, so the minimum is at the
    point of the interval closest to the demand.
    """
    lo = np.maximum(lo, 0.0)
    hi = np.maximum(hi, lo)
    at_hi = payments * (1.0 - gamma * hi / demands)  # still unsatisfied at hi
    at_lo = payments * (lo - demands) / demands  # already excessive at lo
    result = np.zeros_like(lo, dtype=np.float64)
    result = np.where(hi < demands, at_hi, result)
    result = np.where(lo > demands, at_lo, result)
    return result


def _partner_swap_delta(
    allocation: Allocation, partner_id: int, lost_billboard: int, gained_billboard: int
) -> int:
    """Exact influence change of advertiser ``partner_id`` losing
    ``lost_billboard`` and gaining ``gained_billboard``.

    Delegates to :meth:`CoverageIndex.swap_delta` — on the packed bitmap
    kernel the partner side of the exchange scan is two masked popcounts fed
    by the allocation's cached ``counts == 0`` / ``counts == 1`` bitmasks.
    """
    coverage = allocation.instance.coverage
    masks = allocation.packed_masks(partner_id)
    free_bits, ones_bits = masks if masks is not None else (None, None)
    return coverage.swap_delta(
        lost_billboard,
        gained_billboard,
        allocation.counts_row(partner_id),
        free_bits=free_bits,
        ones_bits=ones_bits,
    )


def _find_improving_exchange(
    allocation: Allocation,
    advertiser_id: int,
    billboard_id: int,
    min_improvement: float,
    counters: dict | None = None,
) -> int | None:
    """Best-bound-first search for an improving exchange partner of
    ``billboard_id`` (owned by ``advertiser_id``), or ``None``.

    The scan temporarily releases ``billboard_id`` so one batch coverage pass
    yields the *exact* own-side regret delta for every candidate partner:
    free-candidate exchanges are then fully priced with no per-candidate
    work, and only the partner advertiser's side of owner↔owner exchanges
    retains an optimistic interval bound that exact evaluation must confirm.
    """
    instance = allocation.instance
    coverage = instance.coverage
    individual = coverage.individual_influences.astype(np.float64)

    advertiser = instance.advertisers[advertiser_id]
    own_influence = float(allocation.influence(advertiser_id))
    own_regret = instance.regret_of(advertiser_id, own_influence)

    # Temporarily release o_m: the batch gains over the resulting counters
    # price "S_i - o_m + o_n" exactly for every o_n.  Restored before return.
    allocation.release(billboard_id)
    try:
        released_influence = float(allocation.influence(advertiser_id))
        masks = allocation.packed_masks(advertiser_id)
        gains = coverage.batch_add_gains(
            allocation.counts_row(advertiser_id),
            free_bits=masks[0] if masks is not None else None,
        )

        owners = allocation.owners
        candidates = np.arange(instance.num_billboards)
        mask = (candidates != billboard_id) & (owners != advertiser_id)
        candidates = candidates[mask]
        candidate_owners = owners[candidates].copy()
        if counters is not None:
            counters["evaluated"] = counters.get("evaluated", 0) + len(candidates)

        own_new = released_influence + gains[candidates].astype(np.float64)
        own_delta = (
            regret_values(
                advertiser.payment, float(advertiser.demand), instance.gamma, own_new
            )
            - own_regret
        )

        assigned = candidate_owners != UNASSIGNED
        free = ~assigned

        # Free candidates: the own-side delta is the whole story.
        best_free: int | None = None
        best_free_delta = -min_improvement
        if free.any():
            free_deltas = own_delta[free]
            position = int(np.argmin(free_deltas))
            if free_deltas[position] < best_free_delta:
                best_free = int(candidates[free][position])
                best_free_delta = float(free_deltas[position])

        # Assigned candidates: add an optimistic partner-side bound, then
        # confirm exactly in descending-bound order.
        best_assigned: int | None = None
        best_assigned_delta = -min_improvement
        if assigned.any():
            all_influences = allocation.influences.astype(np.float64)
            regret_by_advertiser = regret_values(
                instance.payments, instance.demands, instance.gamma, all_influences
            )
            partner_ids = candidate_owners[assigned]
            partner_influence = all_influences[partner_ids]
            partner_regret = regret_by_advertiser[partner_ids]
            # Partner j loses o_n and gains o_m: influence lands in
            # [v_j - I(o_n), v_j + I(o_m)].
            lo = partner_influence - individual[candidates[assigned]]
            hi = partner_influence + float(individual[billboard_id])
            partner_best = _optimistic_regret(
                instance.payments[partner_ids],
                instance.demands[partner_ids],
                instance.gamma,
                lo,
                hi,
            )
            improvement_bound = -(own_delta[assigned] + (partner_best - partner_regret))

            assigned_candidates = candidates[assigned]
            order = np.argsort(-improvement_bound)
            for position in order:
                if improvement_bound[position] <= -best_assigned_delta:
                    break
                partner_billboard = int(assigned_candidates[position])
                partner_id = int(partner_ids[position])
                if counters is not None:
                    counters["partner_exact"] = counters.get("partner_exact", 0) + 1
                influence_delta = _partner_swap_delta(
                    allocation, partner_id, partner_billboard, billboard_id
                )
                partner_delta = (
                    instance.regret_of(
                        partner_id, allocation.influence(partner_id) + influence_delta
                    )
                    - regret_by_advertiser[partner_id]
                )
                total = float(own_delta[assigned][position]) + partner_delta
                if total < best_assigned_delta:
                    best_assigned = partner_billboard
                    best_assigned_delta = total
                    break  # first confirmed improvement wins
    finally:
        allocation.assign(billboard_id, advertiser_id)

    if best_free is None and best_assigned is None:
        return None
    if best_assigned is None:
        return best_free
    if best_free is None:
        return best_assigned
    return best_free if best_free_delta <= best_assigned_delta else best_assigned


def billboard_driven_local_search(
    allocation: Allocation,
    min_improvement: float = 1e-9,
    max_sweeps: int | None = None,
    stats: dict | None = None,
) -> Allocation:
    """Run Algorithm 5; returns the improved allocation (may be a new object).

    Parameters
    ----------
    allocation:
        Starting plan; mutated in place for move families 1–3.
    min_improvement:
        Minimum absolute regret reduction for a move to be accepted.  This is
        the ``r``-style improvement threshold of Definition 6.1 (expressed
        absolutely rather than relatively) and also guards against
        float-noise cycling.
    max_sweeps:
        Optional hard cap on full sweeps (None = run to local optimality).
    stats:
        Optional output dict receiving move counters.
    """
    instance = allocation.instance
    sweeps = 0
    exchanges = 0
    releases = 0
    topups = 0
    counters: dict = {}

    while True:
        sweeps += 1
        improved = False

        # Move families 1 & 2: pairwise and assigned↔free exchanges.
        for advertiser_id in range(instance.num_advertisers):
            for billboard_id in sorted(allocation.billboards_of(advertiser_id)):
                if allocation.owner_of(billboard_id) != advertiser_id:
                    continue  # already moved earlier in this sweep
                partner = _find_improving_exchange(
                    allocation, advertiser_id, billboard_id, min_improvement, counters
                )
                if partner is not None:
                    allocation.exchange_billboards(billboard_id, partner)
                    exchanges += 1
                    improved = True

        # Move family 3: releases.
        for advertiser_id in range(instance.num_advertisers):
            for billboard_id in sorted(allocation.billboards_of(advertiser_id)):
                counters["evaluated"] = counters.get("evaluated", 0) + 1
                if delta_release(allocation, billboard_id) < -min_improvement:
                    allocation.release(billboard_id)
                    releases += 1
                    improved = True

        # Move family 4: greedy top-up of the unassigned pool (line 5.11),
        # adopted only if it strictly improves (lines 5.12-5.13).
        if allocation.unassigned:
            candidate = allocation.clone()
            synchronous_greedy(candidate)
            if candidate.total_regret() < allocation.total_regret() - min_improvement:
                allocation = candidate
                topups += 1
                improved = True

        if not improved or (max_sweeps is not None and sweeps >= max_sweeps):
            break

    if stats is not None:
        stats["bls_sweeps"] = stats.get("bls_sweeps", 0) + sweeps
        stats["bls_exchanges"] = stats.get("bls_exchanges", 0) + exchanges
        stats["bls_releases"] = stats.get("bls_releases", 0) + releases
        stats["bls_topups"] = stats.get("bls_topups", 0) + topups
        stats["bls_moves_evaluated"] = stats.get("bls_moves_evaluated", 0) + counters.get(
            "evaluated", 0
        )
        stats["bls_partner_exact_evals"] = stats.get(
            "bls_partner_exact_evals", 0
        ) + counters.get("partner_exact", 0)
    return allocation
