"""Dirty-set bookkeeping for the local-search sweep engines.

Classic local-search engineering (don't-look bits / dirty-candidate lists):
after an accepted move, only billboards owned by the affected advertisers —
plus any billboard that was freed — can see a different move delta, so a
sweep needs to re-examine only those.  The state objects here track *which*
scans are provably still valid via monotone version counters:

* every accepted move bumps a global ``version`` and stamps it onto the
  advertisers (and freed billboards) it touched;
* a scan that comes back empty stamps the current version onto the scanned
  billboard (or pair) as a *certificate*;
* a later scan may be skipped, or restricted to the candidates whose stamp
  is newer than the certificate, because every unchanged candidate was
  already proven non-improving at certification time.

The engines built on top (``bls.py``, ``als.py``) still run one final
unrestricted sweep before declaring local optimality, so Theorem 2's
``(1+r)``-local-maximum guarantee never rests on this bookkeeping — the
certificates only let the intermediate sweeps skip provably dead work.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.allocation import UNASSIGNED


class BillboardSweepState:
    """Version counters for the billboard-driven (BLS) sweep engine.

    ``advertiser_version[a]`` — version of the last accepted move that changed
    advertiser ``a``'s set (so any exchange involving one of its billboards,
    on either side, may now price differently).

    ``freed_version[b]`` — version at which billboard ``b`` last returned to
    the free pool; consulted only while ``b`` is unassigned.

    ``scan_version[b]`` — certificate: the version at which a full candidate
    scan for ``b`` (as the outgoing billboard) last came back empty; 0 means
    never certified.

    ``release_version[a]`` — certificate for advertiser ``a``'s release pass
    (move family 3), which depends only on ``a``'s own set.
    """

    def __init__(self, num_advertisers: int, num_billboards: int) -> None:
        self.version = 1
        self.advertiser_version = np.ones(num_advertisers, dtype=np.int64)
        self.freed_version = np.ones(num_billboards, dtype=np.int64)
        self.scan_version = np.zeros(num_billboards, dtype=np.int64)
        self.release_version = np.zeros(num_advertisers, dtype=np.int64)
        # Certificate for the greedy top-up over the free pool: greedy is
        # deterministic in the allocation state, so a rejected top-up stays
        # rejected until the next accepted move bumps ``version``.
        self.topup_version = 0

    def mark_move(self, advertisers=(), freed=()) -> None:
        """Record one accepted move touching ``advertisers`` / freeing ``freed``."""
        self.version += 1
        obs.counter_add("sweep.moves")
        for advertiser_id in advertisers:
            self.advertiser_version[advertiser_id] = self.version
        for billboard_id in freed:
            self.freed_version[billboard_id] = self.version

    def own_side_stale(self, advertiser_id: int, billboard_id: int) -> bool:
        """True when ``billboard_id``'s own advertiser changed since its last
        certified scan (or it was never certified) — the whole candidate set
        must then be rescanned, not just the changed candidates."""
        certified = self.scan_version[billboard_id]
        return bool(certified == 0 or self.advertiser_version[advertiser_id] > certified)

    def changed_candidates(
        self, billboard_id: int, owners: np.ndarray, advertiser_id: int
    ) -> np.ndarray:
        """Exchange partners whose pairing with ``billboard_id`` may price
        differently than at its last certified scan.

        Assigned candidates are stale when their owner moved since the
        certificate; free candidates when they were freed since.  The
        billboard itself and its own advertiser's billboards are excluded,
        mirroring the full scan's candidate mask.
        """
        certified = self.scan_version[billboard_id]
        assigned = owners != UNASSIGNED
        changed = np.empty(len(owners), dtype=bool)
        changed[assigned] = self.advertiser_version[owners[assigned]] > certified
        changed[~assigned] = self.freed_version[~assigned] > certified
        changed[billboard_id] = False
        changed[owners == advertiser_id] = False
        return np.nonzero(changed)[0]

    def certify_scan(self, billboard_id: int) -> None:
        self.scan_version[billboard_id] = self.version

    def certify_scans(self, billboard_ids) -> None:
        """Vectorized :meth:`certify_scan` for a screened-clear run of rows.

        Sound whenever no move landed between the rows' screen verdicts and
        this call — every row then certifies at the same version the serial
        per-row loop would have stamped.
        """
        self.scan_version[np.asarray(billboard_ids, dtype=np.int64)] = self.version

    def round_certificates(
        self,
        advertiser_ids: np.ndarray,
        billboard_ids: np.ndarray,
        verifying: bool,
    ) -> np.ndarray:
        """Effective scan certificates for a whole screen round at once.

        ``-1`` marks rows that must take the full candidate mask — verify
        sweeps and rows failing :meth:`own_side_stale`; other rows carry
        their billboard's certified scan version, exactly the value
        :meth:`changed_candidates` compares stamps against.  Feed the result
        to :func:`round_candidates`.
        """
        if verifying:
            return np.full(len(billboard_ids), -1, dtype=np.int64)
        certified = self.scan_version[billboard_ids]
        stale = (certified == 0) | (
            self.advertiser_version[advertiser_ids] > certified
        )
        return np.where(stale, np.int64(-1), certified)

    def release_pass_clean(self, advertiser_id: int) -> bool:
        return bool(
            self.advertiser_version[advertiser_id]
            <= self.release_version[advertiser_id]
        )

    def certify_release_pass(self, advertiser_id: int) -> None:
        self.release_version[advertiser_id] = self.version

    def topup_clean(self) -> bool:
        """True when a greedy top-up was already priced non-improving against
        the current allocation state (nothing moved since)."""
        return self.version <= self.topup_version

    def certify_topup(self) -> None:
        self.topup_version = self.version

    # -------------------------------------------------- warm-state lifecycle
    #
    # The incremental quoting engine keeps one state object alive across
    # quotes: certificates earned while pricing one proposal stay valid for
    # the next, because a rejected quote restores the allocation to exactly
    # the snapshot the certificates were earned against (DESIGN.md §15).

    def snapshot(self) -> tuple:
        """Opaque copy of every counter, for :meth:`restore`."""
        return (
            self.version,
            self.advertiser_version.copy(),
            self.freed_version.copy(),
            self.scan_version.copy(),
            self.release_version.copy(),
            self.topup_version,
        )

    def restore(self, snapshot: tuple) -> None:
        """Reset all counters to a prior :meth:`snapshot`.

        The snapshot arrays are copied in — a snapshot may be restored more
        than once (priced proposal committed later), so the stored arrays
        must never alias the live ones.
        """
        (
            self.version,
            advertiser_version,
            freed_version,
            scan_version,
            release_version,
            self.topup_version,
        ) = snapshot
        self.advertiser_version = advertiser_version.copy()
        self.freed_version = freed_version.copy()
        self.scan_version = scan_version.copy()
        self.release_version = release_version.copy()

    def grow_advertisers(self, num_advertisers: int) -> None:
        """Extend the per-advertiser counters for appended advertiser slots.

        New rows are stamped with the *current* version: a fresh slot has no
        certified scans against it, so every certificate predating it must
        treat its billboards as changed candidates.
        """
        added = num_advertisers - len(self.advertiser_version)
        if added < 0:
            raise ValueError("cannot shrink the advertiser axis")
        if added:
            self.advertiser_version = np.concatenate(
                [
                    self.advertiser_version,
                    np.full(added, self.version, dtype=np.int64),
                ]
            )
            self.release_version = np.concatenate(
                [self.release_version, np.zeros(added, dtype=np.int64)]
            )


def round_candidates(
    owners: np.ndarray,
    advertiser_ids: np.ndarray,
    billboard_ids: np.ndarray,
    certified: np.ndarray,
    advertiser_version: np.ndarray,
    freed_version: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Every row's exchange-candidate ids, concatenated, plus per-row lengths.

    One broadcasted ``(rows × billboards)`` comparison replacing per-billboard
    :meth:`BillboardSweepState.changed_candidates` calls; each row's slice is
    bit-identical to the scalar helper because the stamp vector, the
    exclusion masks, and row-major ``nonzero`` ordering reproduce the same
    ascending candidate ids.  A ``certified`` entry of ``-1`` (see
    :meth:`BillboardSweepState.round_certificates`) turns its row into the
    full-scan mask — every stamp is ``>= 1``, so only the exclusions bite.

    A module function rather than a method because the parallel screen
    workers call it against *shipped* version vectors, not a live state
    object (DESIGN.md §13).
    """
    assigned = owners != UNASSIGNED
    stamp = np.where(
        assigned, advertiser_version[np.where(assigned, owners, 0)], freed_version
    )
    num_rows = len(billboard_ids)
    full_mask = certified < 0
    if not (full_mask.any() and not full_mask.all()):
        return _group_candidates(
            owners, stamp, advertiser_ids, billboard_ids, certified
        )
    # Mixed round: full-mask rows (own side stale, every stamp qualifies)
    # would drag the certified floor to -1 and force the dense broadcast for
    # everyone, so the two populations are screened separately and stitched
    # back in original row order.  Each row's slice is computed by exactly
    # the same comparison either way, so the merge is pure bookkeeping.
    restricted = ~full_mask
    flat_full, lengths_full = _group_candidates(
        owners,
        stamp,
        advertiser_ids[full_mask],
        billboard_ids[full_mask],
        certified[full_mask],
    )
    flat_rest, lengths_rest = _group_candidates(
        owners,
        stamp,
        advertiser_ids[restricted],
        billboard_ids[restricted],
        certified[restricted],
    )
    lengths = np.zeros(num_rows, dtype=np.int64)
    index_full = np.nonzero(full_mask)[0]
    index_rest = np.nonzero(restricted)[0]
    lengths[index_full] = lengths_full
    lengths[index_rest] = lengths_rest
    ends = np.cumsum(lengths)
    starts = ends - lengths
    flat = np.empty(int(ends[-1]) if num_rows else 0, dtype=np.int64)
    for index, group_flat, group_lengths in (
        (index_full, flat_full, lengths_full),
        (index_rest, flat_rest, lengths_rest),
    ):
        if len(group_flat):
            group_ends = np.cumsum(group_lengths)
            group_starts = group_ends - group_lengths
            positions = np.repeat(
                starts[index] - group_starts, group_lengths
            ) + np.arange(len(group_flat))
            flat[positions] = group_flat
    return flat, lengths


def _group_candidates(
    owners: np.ndarray,
    stamp: np.ndarray,
    advertiser_ids: np.ndarray,
    billboard_ids: np.ndarray,
    certified: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`round_candidates` for rows sharing one certificate regime.

    Columns whose stamp is at or below every row's certificate can never be
    marked changed, so the broadcast only needs the remaining pool.  On a
    settled warm state the pool is the handful of billboards touched since
    the oldest certificate in the group; on a cold group (``certified`` all
    ``-1``) it degenerates to the full inventory and the dense path is taken
    unchanged.
    """
    num_rows = len(billboard_ids)
    pool = np.nonzero(stamp > certified.min())[0]
    if len(pool) == len(stamp):
        changed = stamp[None, :] > certified[:, None]
        changed[owners[None, :] == advertiser_ids[:, None]] = False
        changed[np.arange(num_rows), billboard_ids] = False
        rows, cols = np.nonzero(changed)
        lengths = np.bincount(rows, minlength=num_rows).astype(np.int64)
        return cols, lengths
    if len(pool) == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.zeros(num_rows, dtype=np.int64),
        )
    changed = stamp[pool][None, :] > certified[:, None]
    changed[owners[pool][None, :] == advertiser_ids[:, None]] = False
    position = np.searchsorted(pool, billboard_ids)
    hit = position < len(pool)
    hit[hit] = pool[position[hit]] == billboard_ids[hit]
    changed[np.nonzero(hit)[0], position[hit]] = False
    rows, cols = np.nonzero(changed)
    lengths = np.bincount(rows, minlength=num_rows).astype(np.int64)
    return pool[cols], lengths


class PairSweepState:
    """Version counters for the advertiser-pair (ALS) sweep engine.

    ``delta_exchange_sets(a, b)`` depends only on the two advertisers'
    influence scalars, so a pair is clean exactly when neither advertiser
    moved since the pair was last priced non-improving.
    """

    def __init__(self, num_advertisers: int) -> None:
        self.version = 1
        self.advertiser_version = np.ones(num_advertisers, dtype=np.int64)
        self.pair_version = np.zeros((num_advertisers, num_advertisers), dtype=np.int64)

    def mark_exchange(self, advertiser_a: int, advertiser_b: int) -> None:
        self.version += 1
        self.advertiser_version[advertiser_a] = self.version
        self.advertiser_version[advertiser_b] = self.version

    def pair_clean(self, advertiser_a: int, advertiser_b: int) -> bool:
        certified = self.pair_version[advertiser_a, advertiser_b]
        return bool(
            self.advertiser_version[advertiser_a] <= certified
            and self.advertiser_version[advertiser_b] <= certified
        )

    def dirty_partners(self, advertiser_a: int, start: int) -> np.ndarray:
        """Partners ``b ≥ start`` whose pair ``(a, b)`` is *not* certified
        clean, as one vectorized row filter — the per-pair
        :meth:`pair_clean` loop collapsed into a single comparison pass.
        Cleanliness is evaluated at call time, so callers must re-query the
        remaining suffix after accepting an exchange in the row.
        """
        certified = self.pair_version[advertiser_a, start:]
        stale = (self.advertiser_version[advertiser_a] > certified) | (
            self.advertiser_version[start:] > certified
        )
        return np.nonzero(stale)[0] + start

    def certify_pair(self, advertiser_a: int, advertiser_b: int) -> None:
        self.pair_version[advertiser_a, advertiser_b] = self.version
