"""Exact exhaustive solver for tiny instances.

Not part of the paper (MROAM is NP-hard); used as the ground-truth oracle in
tests and to verify the worked example of Section 1.  Enumerates every
assignment of each billboard to an advertiser or to nobody —
``(|A| + 1)^|U|`` plans — so it is only viable for toy instances.
"""

from __future__ import annotations

import itertools

from repro.algorithms.base import Solver
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


class ExhaustiveSolver(Solver):
    """Brute-force optimal solver for instances with a tiny search space."""

    name = "Exhaustive"

    def __init__(self, max_plans: int = 2_000_000) -> None:
        self.max_plans = max_plans

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        num_options = instance.num_advertisers + 1  # each billboard: owner or nobody
        plan_count = num_options**instance.num_billboards
        if plan_count > self.max_plans:
            raise ValueError(
                f"search space has {plan_count} plans, above the cap of "
                f"{self.max_plans}; ExhaustiveSolver is only for toy instances"
            )

        coverage = instance.coverage
        best_owners: tuple[int, ...] | None = None
        best_regret = float("inf")
        for owners in itertools.product(range(num_options), repeat=instance.num_billboards):
            total = 0.0
            for advertiser_id in range(instance.num_advertisers):
                members = [b for b, owner in enumerate(owners) if owner == advertiser_id]
                achieved = coverage.influence_of_set(members)
                total += instance.regret_of(advertiser_id, achieved)
                if total >= best_regret:
                    break
            if total < best_regret:
                best_regret = total
                best_owners = owners

        stats["plans_enumerated"] = plan_count
        allocation = Allocation(instance)
        assert best_owners is not None
        for billboard_id, owner in enumerate(best_owners):
            if owner < instance.num_advertisers:
                allocation.assign(billboard_id, owner)
        return allocation
