"""G-Order: the budget-effective greedy (paper Algorithm 1).

Advertisers are served one at a time in descending budget-effectiveness
``L_i/I_i``; each is fed the billboard with the best regret-effectiveness
ratio until satisfied or the inventory runs out.  The paper uses this as the
weaker baseline: early advertisers exhaust the ideal billboards, so in tight
markets the tail advertisers go badly unsatisfied.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._marginal import best_marginal_billboard
from repro.algorithms.base import Solver
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


class BudgetEffectiveGreedy(Solver):
    """Algorithm 1: serve advertisers in descending ``L_i/I_i`` order."""

    name = "G-Order"

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        allocation = Allocation(instance)
        order = sorted(
            range(instance.num_advertisers),
            key=lambda i: (-instance.advertisers[i].budget_effectiveness, i),
        )
        assignments = 0
        marginal_evals = 0
        for advertiser_id in order:
            demand = instance.advertisers[advertiser_id].demand
            while allocation.unassigned and allocation.influence(advertiser_id) < demand:
                candidates = np.fromiter(
                    allocation.unassigned, dtype=np.int64, count=len(allocation.unassigned)
                )
                candidates.sort()
                marginal_evals += len(candidates)
                pick = best_marginal_billboard(allocation, advertiser_id, candidates)
                if pick is None:
                    # Only zero-influence billboards remain; they can never
                    # close the gap, so move on to the next advertiser.
                    break
                allocation.assign(pick, advertiser_id)
                assignments += 1
        stats["assignments"] = assignments
        stats["marginal_gain_evals"] = marginal_evals
        return allocation
