"""Exact branch-and-bound solver for small MROAM instances.

Not part of the paper (MROAM is NP-hard to approximate, Section 4); this is
a *test oracle* that scales meaningfully further than brute-force
enumeration.  It branches billboards in descending individual influence —
each to one advertiser or to nobody — and prunes with an admissible lower
bound obtained by relaxing the disjointness constraint: if every advertiser
could independently take all remaining billboards, advertiser ``i``'s regret
is at least the Eq. 1 minimum over the achievable influence interval
``[v_i, v_i + gain_i(remaining)]``, and those per-advertiser minima sum to a
valid bound because restrictions only increase the optimum.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Solver
from repro.algorithms.greedy_global import SynchronousGreedy
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance


class BranchAndBoundSolver(Solver):
    """Exact solver with admissible-bound pruning.

    Parameters
    ----------
    max_nodes:
        Safety cap on explored nodes; exceeded ⇒ ``RuntimeError``.  The
        default handles ~20-billboard instances comfortably; genuinely hard
        instances (the hardness reduction's, for example) can still be
        exponential — that is the point of the paper.
    """

    name = "B&B"

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        self.max_nodes = max_nodes

    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        # Warm start: the synchronous greedy gives the initial upper bound.
        incumbent = SynchronousGreedy().solve(instance).allocation
        best_regret = incumbent.total_regret()
        best_plan = incumbent.assignment_map()

        order = np.argsort(-instance.coverage.individual_influences)
        order = [int(b) for b in order]
        allocation = Allocation(instance)
        nodes_visited = 0

        def lower_bound(depth: int) -> float:
            remaining = order[depth:]
            total = 0.0
            for advertiser_id in range(instance.num_advertisers):
                achieved = allocation.influence(advertiser_id)
                potential = achieved
                if remaining:
                    # Relaxation: the advertiser takes the union of every
                    # remaining billboard's coverage.
                    counts = allocation.counts_row(advertiser_id)
                    union_ids = np.unique(
                        np.concatenate(
                            [instance.coverage.covered_by(b) for b in remaining]
                        )
                    )
                    if len(union_ids):
                        potential = achieved + int(
                            np.count_nonzero(counts[union_ids] == 0)
                        )
                total += _min_regret_on_interval(
                    instance, advertiser_id, achieved, potential
                )
            return total

        def dfs(depth: int) -> None:
            nonlocal best_regret, best_plan, nodes_visited
            nodes_visited += 1
            if nodes_visited > self.max_nodes:
                raise RuntimeError(
                    f"branch-and-bound exceeded {self.max_nodes} nodes; "
                    "instance too hard for the exact oracle"
                )
            if depth == len(order):
                regret = allocation.total_regret()
                if regret < best_regret - 1e-12:
                    best_regret = regret
                    best_plan = allocation.assignment_map()
                return
            if lower_bound(depth) >= best_regret - 1e-12:
                return

            billboard_id = order[depth]
            # Children: each advertiser, cheapest immediate delta first, then
            # "leave unassigned" — good incumbent updates come early.
            children = sorted(
                range(instance.num_advertisers),
                key=lambda a: instance.regret_of(
                    a,
                    allocation.influence(a)
                    + allocation.influence_delta_add(a, billboard_id),
                ),
            )
            for advertiser_id in children:
                allocation.assign(billboard_id, advertiser_id)
                dfs(depth + 1)
                allocation.release(billboard_id)
            dfs(depth + 1)  # leave unassigned

        dfs(0)
        stats["nodes_visited"] = nodes_visited

        result = Allocation(instance)
        for advertiser_id, billboard_set in best_plan.items():
            for billboard_id in billboard_set:
                result.assign(billboard_id, advertiser_id)
        return result


def _min_regret_on_interval(
    instance: MROAMInstance, advertiser_id: int, lo: float, hi: float
) -> float:
    """Minimum Eq. 1 regret with achieved influence anywhere in ``[lo, hi]``."""
    advertiser = instance.advertisers[advertiser_id]
    if lo <= advertiser.demand <= hi:
        return 0.0
    if hi < advertiser.demand:
        return instance.regret_of(advertiser_id, hi)
    return instance.regret_of(advertiser_id, lo)
