"""Solver interface shared by all MROAM methods."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.regret import RegretBreakdown
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run.

    Attributes
    ----------
    allocation:
        The deployment plan found (callers must not mutate it).
    total_regret:
        ``R(S)`` of the plan.
    breakdown:
        The regret split into unsatisfied-penalty and excessive-influence
        components (the stacked bars of the paper's figures).
    runtime_s:
        Wall-clock seconds spent inside :meth:`Solver.solve`.
    stats:
        Solver-specific counters (iterations, accepted moves, …).
    """

    allocation: Allocation
    total_regret: float
    breakdown: RegretBreakdown
    runtime_s: float
    stats: dict = field(default_factory=dict)

    @property
    def satisfied_count(self) -> int:
        """Number of advertisers whose demand is met."""
        instance = self.allocation.instance
        return sum(
            self.allocation.is_satisfied(i) for i in range(instance.num_advertisers)
        )


class Solver(abc.ABC):
    """Base class for MROAM solvers.

    Subclasses implement :meth:`_solve` returning an :class:`Allocation`;
    :meth:`solve` wraps it with timing and result packaging.
    """

    #: Paper name of the method (e.g. ``"G-Order"``); set by subclasses.
    name: str = "solver"

    def solve(self, instance: MROAMInstance) -> SolverResult:
        """Run the solver and package timing + regret metrics."""
        watch = Stopwatch()
        stats: dict = {}
        with watch:
            allocation = self._solve(instance, stats)
        return SolverResult(
            allocation=allocation,
            total_regret=allocation.total_regret(),
            breakdown=allocation.breakdown(),
            runtime_s=watch.elapsed,
            stats=stats,
        )

    @abc.abstractmethod
    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        """Produce a deployment plan for ``instance``.

        ``stats`` is an output parameter: solvers record counters into it.
        """
