"""Solver interface shared by all MROAM methods."""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field

from repro import obs
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.regret import RegretBreakdown
from repro.utils.timing import Stopwatch


class SolverTelemetry:
    """Per-solve iteration telemetry accumulated via ``record_iteration``.

    Keeps the convergence curve (best regret seen after each iteration /
    restart / sample point) and sums every numeric field the solver reports
    alongside it (moves evaluated, moves accepted, marginal-gain
    evaluations, …).  Always collected — it is part of the solver's
    ``stats``, not gated on the obs layer — and cheap: solvers record once
    per restart or per sampling window, never per move.
    """

    __slots__ = ("convergence", "counters")

    def __init__(self) -> None:
        self.convergence: list[float] = []
        self.counters: dict[str, float] = {}

    def record(self, best_regret: float, fields: dict) -> None:
        self.convergence.append(float(best_regret))
        for name, value in fields.items():
            if isinstance(value, (int, float)):
                self.counters[name] = self.counters.get(name, 0) + value
            else:
                self.counters[name] = value

    def as_dict(self) -> dict:
        return {
            "iterations": len(self.convergence),
            "convergence": list(self.convergence),
            **self.counters,
        }


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run.

    Attributes
    ----------
    allocation:
        The deployment plan found (callers must not mutate it).
    total_regret:
        ``R(S)`` of the plan.
    breakdown:
        The regret split into unsatisfied-penalty and excessive-influence
        components (the stacked bars of the paper's figures).
    runtime_s:
        Wall-clock seconds spent inside :meth:`Solver.solve`.
    stats:
        Solver-specific counters (iterations, accepted moves, …) plus the
        iteration telemetry under ``stats["telemetry"]``.  Deep-copied at
        construction so the frozen result can never alias a dict the solver
        (or a caller) keeps mutating.
    """

    allocation: Allocation
    total_regret: float
    breakdown: RegretBreakdown
    runtime_s: float
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "stats", copy.deepcopy(self.stats))

    @property
    def satisfied_count(self) -> int:
        """Number of advertisers whose demand is met."""
        instance = self.allocation.instance
        return sum(
            self.allocation.is_satisfied(i) for i in range(instance.num_advertisers)
        )


class Solver(abc.ABC):
    """Base class for MROAM solvers.

    Subclasses implement :meth:`_solve` returning an :class:`Allocation`;
    :meth:`solve` wraps it with timing, telemetry, and result packaging.
    During :meth:`_solve`, subclasses may call :meth:`record_iteration`
    once per iteration / restart / sampling window to populate the
    convergence curve and move counters that land in
    ``stats["telemetry"]`` (and, when observability is enabled, in the
    JSONL run log).
    """

    #: Paper name of the method (e.g. ``"G-Order"``); set by subclasses.
    name: str = "solver"

    _telemetry: SolverTelemetry | None = None

    def record_iteration(self, best_regret: float, **fields) -> None:
        """Record one telemetry point: best regret so far + numeric counters."""
        if self._telemetry is None:
            self._telemetry = SolverTelemetry()
        self._telemetry.record(best_regret, fields)

    def solve(self, instance: MROAMInstance) -> SolverResult:
        """Run the solver and package timing + regret + telemetry."""
        watch = Stopwatch()
        stats: dict = {}
        self._telemetry = SolverTelemetry()
        with obs.span(f"solver.{self.name}", method=self.name):
            with watch:
                allocation = self._solve(instance, stats)
        total_regret = allocation.total_regret()
        if not self._telemetry.convergence:
            # One-shot solvers (the greedies, exact baselines) still get a
            # one-point convergence curve: their final regret.
            self._telemetry.record(total_regret, {})
        stats["telemetry"] = self._telemetry.as_dict()
        obs.counter_add("solver.solves")
        obs.counter_add("solver.iterations", stats["telemetry"]["iterations"])
        obs.record_event(
            "solver",
            method=self.name,
            total_regret=float(total_regret),
            runtime_s=watch.elapsed,
            telemetry=stats["telemetry"],
        )
        return SolverResult(
            allocation=allocation,
            total_regret=total_regret,
            breakdown=allocation.breakdown(),
            runtime_s=watch.elapsed,
            stats=stats,
        )

    @abc.abstractmethod
    def _solve(self, instance: MROAMInstance, stats: dict) -> Allocation:
        """Produce a deployment plan for ``instance``.

        ``stats`` is an output parameter: solvers record counters into it.
        """
