"""MROAM solvers (paper Sections 5 and 6).

Four methods are evaluated in the paper:

* **G-Order** (:class:`BudgetEffectiveGreedy`) — Algorithm 1, serves
  advertisers in descending budget-effectiveness ``L_i/I_i``.
* **G-Global** (:class:`SynchronousGreedy`) — Algorithm 2, serves all
  unsatisfied advertisers round-robin, releasing the least budget-effective
  ones when the inventory runs dry.
* **ALS** (:class:`RandomizedLocalSearch` with the advertiser-driven
  neighbourhood) — Algorithms 3 + 4.
* **BLS** (:class:`RandomizedLocalSearch` with the billboard-driven
  neighbourhood) — Algorithms 3 + 5, with the `(1+r)`-approximate local
  maximum guarantee on the dual objective (Theorem 2).

:func:`make_solver` resolves the paper's method names (``"g-order"``,
``"g-global"``, ``"als"``, ``"bls"``).
"""

from repro.algorithms.als import advertiser_driven_local_search
from repro.algorithms.annealing import SimulatedAnnealingSolver
from repro.algorithms.base import Solver, SolverResult
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.branch_and_bound import BranchAndBoundSolver
from repro.algorithms.exhaustive import ExhaustiveSolver
from repro.algorithms.greedy_global import SynchronousGreedy
from repro.algorithms.greedy_order import BudgetEffectiveGreedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.algorithms.registry import PAPER_METHODS, make_solver

__all__ = [
    "BranchAndBoundSolver",
    "BudgetEffectiveGreedy",
    "ExhaustiveSolver",
    "SimulatedAnnealingSolver",
    "PAPER_METHODS",
    "RandomizedLocalSearch",
    "Solver",
    "SolverResult",
    "SynchronousGreedy",
    "advertiser_driven_local_search",
    "billboard_driven_local_search",
    "make_solver",
]
