"""Persistent pool lifecycle: spawn once, reuse forever, same answers.

The pool cache (`repro.parallel.pool.pool_for`) is the tentpole of the
parallel layer: the first driver call for an ``(owner, workers)`` pair pays
the fork+attach cost, every later call reuses the warm processes.  These
tests pin the reuse behavior (counters), the determinism contract (two
consecutive pool uses equal the serial loop), and the small API edges
(worker capping, closed-pool errors, explicit teardown).
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.parallel.pool import (
    PersistentPool,
    close_all_pools,
    effective_workers,
    instance_pool,
)
from tests.conftest import make_random_instance


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(
        31, num_billboards=24, num_trajectories=60, num_advertisers=3
    )


@pytest.fixture(autouse=True)
def fresh_pools():
    """Each test starts and ends with no live pools — reuse must come from
    uses *inside* the test, never from a neighbor's leftovers."""
    close_all_pools()
    yield
    close_all_pools()


class TestPoolCache:
    def test_second_call_reuses_the_pool(self, instance):
        obs.enable()
        try:
            obs.reset()
            first = instance_pool(instance, 2)
            second = instance_pool(instance, 2)
            assert second is first
            assert obs.counter_value("pool.spawn") == 1
            assert obs.counter_value("pool.reuse") == 1
        finally:
            obs.disable()
            obs.reset()

    def test_distinct_worker_counts_get_distinct_pools(self, instance):
        first = instance_pool(instance, 1)
        second = instance_pool(instance, 2)
        assert second is not first

    def test_closed_pool_is_respawned(self, instance):
        first = instance_pool(instance, 2)
        first.close()
        second = instance_pool(instance, 2)
        assert second is not first
        assert not second.closed

    def test_close_all_pools_closes(self, instance):
        pool = instance_pool(instance, 2)
        close_all_pools()
        assert pool.closed


class TestPoolReuseDeterminism:
    def test_two_consecutive_uses_match_serial(self, instance):
        """Satellite #4: the same solver run through a *warm* (second-use)
        pool returns the same best allocation and restart winner as serial.
        The first parallel call spawns the pool; the second reuses it — both
        must agree with the serial loop exactly."""
        serial = RandomizedLocalSearch("bls", restarts=3, seed=11).solve(instance)
        warm = RandomizedLocalSearch(
            "bls", restarts=3, seed=11, restart_workers=2
        )
        first = warm.solve(instance)
        second = warm.solve(instance)  # reuses the pool spawned by `first`
        for parallel in (first, second):
            assert (
                parallel.allocation.assignment_map()
                == serial.allocation.assignment_map()
            )
            assert parallel.total_regret == serial.total_regret
            assert parallel.stats.get("best_restart") == serial.stats.get(
                "best_restart"
            )

    def test_reuse_spans_solver_configurations(self, instance):
        """Different restart batches against the same instance share one
        pool — the cache keys on (instance, workers), not on solver params."""
        obs.enable()
        try:
            obs.reset()
            RandomizedLocalSearch(
                "bls", restarts=2, seed=3, restart_workers=2
            ).solve(instance)
            RandomizedLocalSearch(
                "als", restarts=3, seed=4, restart_workers=2
            ).solve(instance)
            assert obs.counter_value("pool.spawn") == 1
            assert obs.counter_value("pool.reuse") >= 1
        finally:
            obs.disable()
            obs.reset()


def _echo(task):
    return (task, None)


class TestPersistentPoolEdges:
    def test_effective_workers_bounds(self):
        available = len(os.sched_getaffinity(0))
        assert effective_workers(1) == 1
        assert effective_workers(0) == 1
        assert effective_workers(10_000) == available
        assert 1 <= effective_workers(2) <= 2

    def test_map_on_closed_pool_raises(self):
        pool = PersistentPool(1, initializer=None, initargs=())
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_echo, [1])

    def test_map_empty_tasks_is_noop(self):
        pool = PersistentPool(1, initializer=None, initargs=())
        try:
            assert pool.map(_echo, []) == []
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = PersistentPool(1, initializer=None, initargs=())
        pool.close()
        pool.close()
        assert pool.closed
