"""Parallel restarts over shared memory must equal the serial restarts.

Restart seed plans are pre-drawn in the parent from the same sequential RNG
stream the serial loop consumes, workers attach the parent's coverage index
read-only, and the parent reduces restart results in restart order with a
strict ``<`` — so the best allocation (and which restart produced it) is
identical by construction, not merely in distribution.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.algorithms.annealing import SimulatedAnnealingSolver
from repro.algorithms.local_search import RandomizedLocalSearch
from tests.conftest import make_random_instance


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(
        17, num_billboards=30, num_trajectories=80, num_advertisers=4
    )


class TestLocalSearchRestarts:
    @pytest.mark.parametrize("neighborhood", ["bls", "als"])
    def test_parallel_matches_serial(self, instance, neighborhood):
        serial = RandomizedLocalSearch(
            neighborhood, restarts=4, seed=42
        ).solve(instance)
        parallel = RandomizedLocalSearch(
            neighborhood, restarts=4, seed=42, restart_workers=2
        ).solve(instance)
        assert parallel.allocation.assignment_map() == serial.allocation.assignment_map()
        assert parallel.total_regret == serial.total_regret
        assert parallel.stats.get("best_restart") == serial.stats.get("best_restart")

    def test_parallel_merges_restart_stats(self, instance):
        serial = RandomizedLocalSearch("bls", restarts=3, seed=8).solve(instance)
        parallel = RandomizedLocalSearch(
            "bls", restarts=3, seed=8, restart_workers=2
        ).solve(instance)
        # Accepted-move tallies aggregate over the same restart executions.
        for key in ("bls_exchanges", "bls_releases", "bls_topups"):
            assert parallel.stats.get(key, 0) == serial.stats.get(key, 0), key

    def test_one_attach_per_worker(self, instance):
        """Workers attach the shared index exactly once (in the pool
        initializer), never per restart — the zero-copy claim.  Pools
        persist across calls, so close any live pool first: the attach is
        only observable on a pool spawned while obs is enabled."""
        from repro.parallel.pool import close_all_pools

        workers = 2  # the pool may cap this to the CPUs actually available
        restarts = 6
        close_all_pools()
        obs.enable()
        try:
            obs.reset()
            RandomizedLocalSearch(
                "bls", restarts=restarts, seed=42, restart_workers=workers
            ).solve(instance)
            attaches = obs.counter_value("shm.attach")
        finally:
            obs.disable()
            obs.reset()
            close_all_pools()
        # Snapshots ship with task results, so the merged total counts one
        # attach per worker that completed at least one restart — never one
        # per restart, which is what per-task pickling would look like.
        assert 1 <= attaches <= workers
        assert attaches < restarts

    def test_restart_workers_validated(self):
        with pytest.raises(ValueError, match="restart_workers"):
            RandomizedLocalSearch("bls", restart_workers=0)


class TestAnnealingRestarts:
    def test_restarts_parallel_matches_serial(self, instance):
        serial = SimulatedAnnealingSolver(
            steps=400, seed=5, restarts=3
        ).solve(instance)
        parallel = SimulatedAnnealingSolver(
            steps=400, seed=5, restarts=3, restart_workers=2
        ).solve(instance)
        assert parallel.allocation.assignment_map() == serial.allocation.assignment_map()
        assert parallel.total_regret == serial.total_regret
        assert parallel.stats["sa_best_restart"] == serial.stats["sa_best_restart"]
        assert parallel.stats["sa_accepted"] == serial.stats["sa_accepted"]

    def test_single_restart_keeps_legacy_stats(self, instance):
        result = SimulatedAnnealingSolver(steps=300, seed=2).solve(instance)
        assert result.stats["sa_steps"] == 300
        assert "sa_restarts" not in result.stats

    def test_restart_count_scales_steps(self, instance):
        result = SimulatedAnnealingSolver(steps=300, seed=2, restarts=2).solve(instance)
        assert result.stats["sa_steps"] == 600
        assert result.stats["sa_restarts"] == 2

    def test_rejects_zero_restarts(self):
        with pytest.raises(ValueError, match="restarts"):
            SimulatedAnnealingSolver(restarts=0)
