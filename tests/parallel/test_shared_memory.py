"""Shared-memory coverage export/attach: zero-copy, read-only, leak-free.

An attached ``CoverageIndex`` must answer every kernel query bit-identically
to the index it was exported from, and closing the ``SharedCoverage`` (or
exiting the creating process) must leave nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.billboard.influence import CoverageIndex
from repro.core.allocation import Allocation
from repro.parallel import SharedCoverage, attach_array
from tests.conftest import make_random_instance, random_allocation

REPO_ROOT = Path(__file__).resolve().parents[2]


def shm_entries(spec) -> list[str]:
    """The ``/dev/shm`` file names belonging to a spec's segments."""
    names = [spec.flat.name, spec.offsets.name]
    if spec.bitmap is not None:
        names.extend(shard.name for shard in spec.bitmap.shards)
    shm_dir = Path("/dev/shm")
    return [name for name in names if (shm_dir / name.lstrip("/")).exists()]


@pytest.fixture
def instance():
    return make_random_instance(
        11, num_billboards=24, num_trajectories=60, num_advertisers=4
    )


class TestRoundTrip:
    def test_attached_index_answers_identically(self, instance):
        index = instance.coverage
        allocation = random_allocation(instance, seed=3)
        counts = allocation.counts_row(0)
        masks = allocation.packed_masks(0)
        some_set = sorted(allocation.billboards_of(0))
        with index.to_shared() as shared:
            attached = CoverageIndex.attach_shared(shared.spec)
            assert attached.num_billboards == index.num_billboards
            assert attached.num_trajectories == index.num_trajectories
            assert attached.influence_of_set(some_set) == index.influence_of_set(
                some_set
            )
            assert np.array_equal(
                attached.batch_add_gains(counts),
                index.batch_add_gains(counts),
            )
            if masks is not None:
                assert np.array_equal(
                    attached.batch_add_gains(counts, free_bits=masks[0]),
                    index.batch_add_gains(counts, free_bits=masks[0]),
                )
            if some_set:
                removed = some_set[0]
                kwargs = {}
                if masks is not None:
                    kwargs = {"free_bits": masks[0], "ones_bits": masks[1]}
                assert np.array_equal(
                    attached.batch_add_gains_without(counts, removed, **kwargs),
                    index.batch_add_gains_without(counts, removed, **kwargs),
                )

    def test_attached_swap_delta_matches(self, instance):
        with instance.coverage.to_shared() as shared:
            attached = CoverageIndex.attach_shared(shared.spec)
            attached_instance = type(instance)(
                attached, instance.advertisers, instance.gamma
            )
            original = random_allocation(instance, seed=9)
            mirrored = Allocation(attached_instance)
            mirrored.assign_many(
                (billboard, owner)
                for billboard, owner in enumerate(original.owners)
                if owner >= 0
            )
            free = sorted(original.unassigned)
            owned = sorted(original.billboards_of(1))
            if free and owned:
                assert mirrored.influence_delta_add(
                    0, free[0]
                ) == original.influence_delta_add(0, free[0])
                assert mirrored.influence_delta_remove(
                    1, owned[0]
                ) == original.influence_delta_remove(1, owned[0])

    def test_attached_arrays_are_read_only_views(self, instance):
        with instance.coverage.to_shared() as shared:
            attached = CoverageIndex.attach_shared(shared.spec)
            flat, offsets = attached.to_arrays()
            with pytest.raises(ValueError, match="read-only"):
                offsets[0] = 99
            # Zero-copy: the view's buffer is the shared segment, not a copy.
            array, segment = attach_array(shared.spec.flat)
            assert np.array_equal(array, flat)
            segment.close()

    def test_bitmap_decision_is_exported(self, instance):
        """Attachers inherit the creator's kernel choice instead of
        re-deciding from their own environment."""
        index = instance.coverage
        with index.to_shared() as shared:
            attached = CoverageIndex.attach_shared(shared.spec)
            assert attached._bitmap_decided
            assert (shared.spec.bitmap is not None) == (
                index._ensure_bitmap() is not None
            )


class TestLifecycle:
    def test_close_unlinks_segments(self, instance):
        shared = instance.coverage.to_shared()
        spec = shared.spec
        assert shm_entries(spec)  # segments exist while open
        shared.close()
        assert shm_entries(spec) == []
        shared.close()  # idempotent

    def test_counters(self, instance):
        obs.enable()
        try:
            with instance.coverage.to_shared() as shared:
                before = obs.counter_value("shm.attach")
                CoverageIndex.attach_shared(shared.spec)
                assert obs.counter_value("shm.attach") == before + 1
                assert obs.counter_value("shm.create") >= 2
        finally:
            obs.disable()
            obs.reset()

    def test_process_exit_leaves_no_segments(self, tmp_path):
        """The atexit safety net: a creator that never calls ``close()``
        still unlinks its segments on interpreter exit."""
        script = tmp_path / "leaky.py"
        script.write_text(
            "from tests.conftest import make_random_instance\n"
            "instance = make_random_instance(5)\n"
            "shared = instance.coverage.to_shared()\n"
            "spec = shared.spec\n"
            "names = [spec.flat.name, spec.offsets.name]\n"
            "if spec.bitmap is not None:\n"
            "    names.extend(shard.name for shard in spec.bitmap.shards)\n"
            "print('\\n'.join(names))\n"
            # no shared.close(): atexit must clean up
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            check=True,
            capture_output=True,
            text=True,
            env={
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": f"{REPO_ROOT / 'src'}:{REPO_ROOT}",
            },
            timeout=120,
        )
        names = result.stdout.split()
        assert names
        leftovers = [
            name for name in names if (Path("/dev/shm") / name.lstrip("/")).exists()
        ]
        assert leftovers == []
