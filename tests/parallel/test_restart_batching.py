"""Batched restart grains must be invisible to results (DESIGN.md §13).

Packing several restarts into one pool task changes only the task shape:
the in-task reduction applies the same strict ``<`` in restart order the
caller applies across tasks, so batched, unbatched, and serial runs must
return bit-identical allocations, regrets, and move counters for every
batch size — including ``"auto"``, whose size depends on a timing estimate
and therefore must never leak into results.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.algorithms.annealing import SimulatedAnnealingSolver
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.parallel.pool import close_all_pools
from repro.parallel.restarts import (
    TARGET_TASK_SECONDS,
    estimated_restart_seconds,
    resolve_batch_size,
)
from tests.conftest import make_random_instance

MOVE_KEYS = ("bls_exchanges", "bls_releases", "bls_topups", "als_exchanges")


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(
        31, num_billboards=30, num_trajectories=80, num_advertisers=4
    )


class TestResolveBatchSize:
    def test_disabled_modes(self):
        assert resolve_batch_size(None, 8, 2) == 1
        assert resolve_batch_size(1, 8, 2) == 1
        assert resolve_batch_size("auto", 0, 2) == 1

    def test_explicit_int_capped_at_restarts(self):
        assert resolve_batch_size(3, 8, 2) == 3
        assert resolve_batch_size(16, 8, 2) == 8

    def test_auto_without_estimate_is_one_wave(self):
        # ceil(restarts / workers): the fattest grain using every worker.
        assert resolve_batch_size("auto", 8, 2) == 4
        assert resolve_batch_size("auto", 7, 2) == 4
        assert resolve_batch_size("auto", 8, 3) == 3

    def test_auto_targets_task_seconds(self):
        # 0.05 s per restart -> ceil(0.5 / 0.05) = 10, capped at one wave.
        estimate = TARGET_TASK_SECONDS / 10
        assert resolve_batch_size("auto", 40, 2, estimate) == 10
        assert resolve_batch_size("auto", 8, 2, estimate) == 4
        # Slow restarts already exceed the target: one restart per task.
        assert resolve_batch_size("auto", 8, 2, TARGET_TASK_SECONDS * 2) == 1

    def test_invalid_int_rejected(self):
        with pytest.raises(ValueError, match="restart_batch_size"):
            resolve_batch_size(0, 8, 2)


class TestLedgerCalibration:
    def test_grain_history_round_trip(self, instance, tmp_path, monkeypatch):
        """Driver runs write ``parallel.grain`` rows; ``"auto"`` sizing reads
        the mean per-restart seconds back for comparable instances."""
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_OBS_LEDGER", str(ledger))
        assert estimated_restart_seconds("local_search", instance) is None
        try:
            RandomizedLocalSearch(
                "bls", restarts=4, seed=3, restart_workers=2, restart_batch_size=2
            ).solve(instance)
        finally:
            close_all_pools()
        rows = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if line.strip()
        ]
        grains = [row for row in rows if row.get("kind") == "parallel.grain"]
        assert len(grains) == 1
        grain = grains[0]["grain"]
        assert grain["task_kind"] == "local_search"
        assert grain["restarts"] == 4
        assert grain["batch_size"] == 2
        assert grain["tasks"] == 2
        assert grain["mean_restart_seconds"] > 0
        estimate = estimated_restart_seconds("local_search", instance)
        assert estimate == pytest.approx(grain["mean_restart_seconds"])
        # Different task kind or instance size: no comparable history.
        assert estimated_restart_seconds("sa", instance) is None
        other = make_random_instance(
            5, num_billboards=12, num_trajectories=30, num_advertisers=3
        )
        assert estimated_restart_seconds("local_search", other) is None

    def test_no_ledger_no_estimate(self, instance, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_LEDGER", raising=False)
        assert estimated_restart_seconds("local_search", instance) is None


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("neighborhood", ["bls", "als"])
    def test_every_batch_size_matches_serial(self, instance, neighborhood):
        serial = RandomizedLocalSearch(neighborhood, restarts=4, seed=42).solve(
            instance
        )
        try:
            for batch_size in (None, 2, 3, "auto"):
                batched = RandomizedLocalSearch(
                    neighborhood,
                    restarts=4,
                    seed=42,
                    restart_workers=2,
                    restart_batch_size=batch_size,
                ).solve(instance)
                assert (
                    batched.allocation.assignment_map()
                    == serial.allocation.assignment_map()
                ), batch_size
                assert batched.total_regret == serial.total_regret, batch_size
                assert batched.stats.get("best_restart") == serial.stats.get(
                    "best_restart"
                ), batch_size
                for key in MOVE_KEYS:
                    assert batched.stats.get(key, 0) == serial.stats.get(key, 0), (
                        batch_size,
                        key,
                    )
        finally:
            close_all_pools()

    def test_annealing_batches_match_serial(self, instance):
        serial = SimulatedAnnealingSolver(steps=300, seed=9, restarts=4).solve(
            instance
        )
        try:
            for batch_size in (None, 2, "auto"):
                batched = SimulatedAnnealingSolver(
                    steps=300,
                    seed=9,
                    restarts=4,
                    restart_workers=2,
                    restart_batch_size=batch_size,
                ).solve(instance)
                assert (
                    batched.allocation.assignment_map()
                    == serial.allocation.assignment_map()
                ), batch_size
                assert batched.total_regret == serial.total_regret, batch_size
                assert batched.stats.get("sa_best_restart") == serial.stats.get(
                    "sa_best_restart"
                ), batch_size
                assert batched.stats.get("sa_accepted") == serial.stats.get(
                    "sa_accepted"
                ), batch_size
        finally:
            close_all_pools()


class TestBatchedPoolBehaviour:
    def test_batches_shrink_task_count_and_pool_persists(self, instance):
        """Two batched solver calls: the second reuses the warm pool, and
        each fans fewer tasks than restarts (the grain actually fattened)."""
        close_all_pools()
        obs.enable()
        try:
            obs.reset()
            solver = RandomizedLocalSearch(
                "bls", restarts=4, seed=7, restart_workers=2, restart_batch_size=2
            )
            solver.solve(instance)
            solver.solve(instance)
            batches = obs.get_registry().histogram("pool.task.batch")
            tasks = obs.get_registry().histogram("span.pool.task").count
            spawns = obs.counter_value("pool.spawn")
            reuses = obs.counter_value("pool.reuse")
        finally:
            obs.disable()
            obs.reset()
            close_all_pools()
        assert spawns == 1
        assert reuses >= 1
        assert batches.count == 4  # 2 tasks per call, 2 calls
        assert batches.mean == 2.0  # 2 restarts packed per task
        assert tasks == 4
        assert tasks < 2 * 4  # fewer tasks than restarts run
