"""The public API surface: everything in ``repro.__all__`` importable and usable."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


def test_quickstart_flow():
    """The README quickstart, end to end on a tiny city."""
    from repro import make_solver
    from repro.market import Scenario

    instance = Scenario(
        dataset="nyc", n_billboards=40, n_trajectories=200, alpha=0.6, p_avg=0.1, seed=1
    ).build_instance()
    result = make_solver("bls", seed=1, restarts=1).solve(instance)
    assert result.total_regret >= 0.0
    assert result.breakdown.total == result.total_regret
