"""End-to-end integration tests: city → instance → all solvers → shapes.

These assert the qualitative relationships the paper's evaluation reports,
at a reduced scale so the whole suite stays fast.
"""

import pytest

from repro.algorithms.registry import PAPER_METHODS, make_solver
from repro.core.validation import validate_allocation
from repro.market.scenario import Scenario


@pytest.fixture(scope="module")
def nyc_city():
    return Scenario(dataset="nyc", n_billboards=150, n_trajectories=1_200, seed=13).build_city()


@pytest.fixture(scope="module")
def sg_city():
    return Scenario(dataset="sg", n_billboards=220, n_trajectories=1_200, seed=13).build_city()


def solve_all(instance, seed=0, restarts=1):
    return {
        method: make_solver(method, seed=seed, restarts=restarts).solve(instance)
        for method in PAPER_METHODS
    }


class TestStructuralValidity:
    @pytest.mark.parametrize("alpha", [0.4, 1.0])
    def test_all_solvers_produce_valid_plans(self, nyc_city, alpha):
        instance = Scenario(
            dataset="nyc", alpha=alpha, p_avg=0.1, seed=13
        ).build_instance(nyc_city)
        for method, result in solve_all(instance).items():
            validate_allocation(result.allocation)
            assert result.total_regret == pytest.approx(
                result.allocation.total_regret()
            ), method


class TestPaperShapes:
    def test_local_search_beats_g_global(self, nyc_city):
        instance = Scenario(dataset="nyc", alpha=0.8, p_avg=0.05, seed=13).build_instance(
            nyc_city
        )
        results = solve_all(instance)
        assert results["bls"].total_regret <= results["g-global"].total_regret + 1e-6
        assert results["als"].total_regret <= results["g-global"].total_regret + 1e-6

    def test_low_alpha_regret_is_excess_dominated(self, nyc_city):
        instance = Scenario(dataset="nyc", alpha=0.4, p_avg=0.02, seed=13).build_instance(
            nyc_city
        )
        result = make_solver("g-global").solve(instance)
        assert result.satisfied_count == instance.num_advertisers
        assert result.breakdown.excessive_share == pytest.approx(1.0)

    def test_excessive_alpha_regret_is_unsat_dominated(self, nyc_city):
        instance = Scenario(dataset="nyc", alpha=1.2, p_avg=0.05, seed=13).build_instance(
            nyc_city
        )
        result = make_solver("g-global").solve(instance)
        assert result.satisfied_count < instance.num_advertisers
        assert result.breakdown.unsatisfied_share > 0.5

    def test_regret_grows_with_alpha(self, nyc_city):
        lows = Scenario(dataset="nyc", alpha=0.4, p_avg=0.05, seed=13).build_instance(nyc_city)
        highs = Scenario(dataset="nyc", alpha=1.2, p_avg=0.05, seed=13).build_instance(nyc_city)
        low = make_solver("g-global").solve(lows).total_regret
        high = make_solver("g-global").solve(highs).total_regret
        assert high > low

    def test_gamma_relief(self, nyc_city):
        tight = Scenario(dataset="nyc", alpha=1.2, p_avg=0.05, gamma=0.0, seed=13)
        loose = tight.with_params(gamma=1.0)
        regret_tight = make_solver("g-global").solve(tight.build_instance(nyc_city)).total_regret
        regret_loose = make_solver("g-global").solve(loose.build_instance(nyc_city)).total_regret
        assert regret_loose <= regret_tight + 1e-6

    def test_sg_runs_end_to_end(self, sg_city):
        instance = Scenario(dataset="sg", alpha=0.8, p_avg=0.1, seed=13).build_instance(
            sg_city
        )
        results = solve_all(instance)
        assert results["bls"].total_regret <= results["g-global"].total_regret + 1e-6
        for result in results.values():
            validate_allocation(result.allocation)


class TestRuntimeOrdering:
    def test_greedies_faster_than_local_search(self, nyc_city):
        instance = Scenario(dataset="nyc", alpha=1.0, p_avg=0.05, seed=13).build_instance(
            nyc_city
        )
        results = solve_all(instance, restarts=2)
        greedy_time = max(
            results["g-order"].runtime_s, results["g-global"].runtime_s
        )
        assert results["bls"].runtime_s > greedy_time
