"""Integration tests for the extension modules on generated cities."""

import pytest

from repro.algorithms.registry import make_solver
from repro.analysis import inventory_criticality, market_summary, plan_report
from repro.billboard.digital import expand_digital
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from repro.market.online import OnlineHost


class TestDigitalOnCity:
    def test_expansion_of_generated_city(self, small_nyc):
        physical = small_nyc.coverage(100.0)
        expansion = expand_digital(physical, small_nyc.trajectories, slots=4)
        assert expansion.num_virtual == 4 * physical.num_billboards
        # Per-panel slot unions recover the physical coverage.
        for panel in (0, 7, 42):
            virtual_ids = [expansion.virtual_id(panel, s) for s in range(4)]
            assert expansion.coverage.influence_of_set(virtual_ids) == (
                physical.influence_of(panel)
            )

    def test_solving_on_virtual_inventory(self, small_nyc):
        physical = small_nyc.coverage(100.0)
        expansion = expand_digital(physical, small_nyc.trajectories, slots=2)
        supply = expansion.coverage.supply
        instance = MROAMInstance(
            expansion.coverage,
            [
                Advertiser(0, max(1, int(0.1 * supply)), 100.0),
                Advertiser(1, max(1, int(0.05 * supply)), 50.0),
            ],
            gamma=0.5,
        )
        result = make_solver("g-global").solve(instance)
        validate_allocation(result.allocation)


class TestOnlineHostOnCity:
    def test_day_of_operations(self, small_nyc):
        coverage = small_nyc.coverage(100.0)
        host = OnlineHost(coverage, repair_sweeps=1, seed=4)
        supply = coverage.supply
        for fraction in (0.10, 0.15, 0.08):
            quote = host.accept(max(1, int(fraction * supply)), 100.0)
            assert quote.regret_after >= 0.0
        validate_allocation(host.allocation)
        before = host.total_regret()
        after = host.reoptimize(restarts=1)
        assert after <= before + 1e-9


class TestAnalysisOnCity:
    def test_report_and_criticality_consistency(self, small_nyc):
        coverage = small_nyc.coverage(100.0)
        supply = coverage.supply
        instance = MROAMInstance(
            coverage,
            [
                Advertiser(0, max(1, int(0.12 * supply)), 120.0, name="big"),
                Advertiser(1, max(1, int(0.04 * supply)), 40.0, name="small"),
            ],
            gamma=0.5,
        )
        result = make_solver("bls", seed=2, restarts=1).solve(instance)
        rows = plan_report(result.allocation)
        assert sum(row.regret for row in rows) == pytest.approx(result.total_regret)

        critical = inventory_criticality(result.allocation, top_k=5)
        assert len(critical) <= 5
        summary = market_summary(instance)
        assert summary.alpha == pytest.approx(0.16, abs=0.05)
