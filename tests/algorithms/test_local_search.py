"""Tests for the randomized local search framework (Algorithm 3)."""

import pytest

from repro.algorithms.greedy_global import SynchronousGreedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


class TestConfiguration:
    def test_rejects_unknown_neighborhood(self):
        with pytest.raises(ValueError, match="neighborhood"):
            RandomizedLocalSearch(neighborhood="nope")

    def test_rejects_negative_restarts(self):
        with pytest.raises(ValueError, match="restarts"):
            RandomizedLocalSearch(restarts=-1)

    def test_names_match_paper(self):
        assert RandomizedLocalSearch(neighborhood="als").name == "ALS"
        assert RandomizedLocalSearch(neighborhood="bls").name == "BLS"


class TestQualityGuarantees:
    @pytest.mark.parametrize("neighborhood", ["als", "bls"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_worse_than_g_global(self, neighborhood, seed):
        # The framework refines the G-Global incumbent, so it can only do
        # at least as well.
        instance = make_random_instance(seed, num_billboards=14, num_advertisers=4)
        baseline = SynchronousGreedy().solve(instance).total_regret
        solver = RandomizedLocalSearch(neighborhood=neighborhood, restarts=2, seed=seed)
        result = solver.solve(instance)
        assert result.total_regret <= baseline + 1e-9
        validate_allocation(result.allocation)

    def test_zero_restarts_still_refines_greedy(self):
        instance = make_random_instance(5, num_billboards=12, num_advertisers=3)
        baseline = SynchronousGreedy().solve(instance).total_regret
        result = RandomizedLocalSearch(neighborhood="bls", restarts=0, seed=0).solve(instance)
        assert result.total_regret <= baseline + 1e-9

    def test_example1_reaches_zero(self, example1):
        result = RandomizedLocalSearch(neighborhood="bls", restarts=3, seed=0).solve(example1)
        assert result.total_regret == pytest.approx(0.0)


class TestReproducibility:
    def test_same_seed_same_plan(self):
        instance = make_random_instance(7, num_billboards=12, num_advertisers=3)
        first = RandomizedLocalSearch(neighborhood="als", restarts=3, seed=42).solve(instance)
        second = RandomizedLocalSearch(neighborhood="als", restarts=3, seed=42).solve(instance)
        assert first.total_regret == pytest.approx(second.total_regret)
        assert first.allocation.assignment_map() == second.allocation.assignment_map()

    def test_stats_report_restarts(self):
        instance = make_random_instance(8, num_billboards=10, num_advertisers=3)
        result = RandomizedLocalSearch(neighborhood="als", restarts=4, seed=1).solve(instance)
        assert result.stats["restarts"] == 4
        assert result.stats["best_restart"] >= -1


class TestRandomSeedPlan:
    def test_one_billboard_per_advertiser(self):
        import numpy as np

        instance = make_random_instance(9, num_billboards=10, num_advertisers=4)
        solver = RandomizedLocalSearch(seed=0)
        plan = solver._random_seed_plan(instance, np.random.default_rng(0))
        for advertiser_id in range(instance.num_advertisers):
            assert len(plan.billboards_of(advertiser_id)) == 1
        validate_allocation(plan)

    def test_more_advertisers_than_billboards(self):
        import numpy as np

        instance = make_random_instance(10, num_billboards=2, num_advertisers=4)
        solver = RandomizedLocalSearch(seed=0)
        plan = solver._random_seed_plan(instance, np.random.default_rng(0))
        assigned = sum(len(plan.billboards_of(i)) for i in range(4))
        assert assigned == 2
