"""Tests for the exact branch-and-bound oracle."""

import pytest

from repro.algorithms.branch_and_bound import BranchAndBoundSolver
from repro.algorithms.exhaustive import ExhaustiveSolver
from repro.algorithms.registry import make_solver
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_matches_exhaustive_on_tiny_instances(seed):
    instance = make_random_instance(
        seed, num_billboards=7, num_trajectories=12, num_advertisers=2
    )
    exhaustive = ExhaustiveSolver().solve(instance)
    bnb = BranchAndBoundSolver().solve(instance)
    assert bnb.total_regret == pytest.approx(exhaustive.total_regret, abs=1e-9)
    validate_allocation(bnb.allocation)


def test_scales_past_exhaustive():
    # 14 billboards × 4 owners = 4^14 ≈ 268M plans — far past brute force;
    # branch and bound prunes its way through.
    instance = make_random_instance(
        11, num_billboards=14, num_trajectories=25, num_advertisers=3
    )
    result = BranchAndBoundSolver().solve(instance)
    validate_allocation(result.allocation)
    # The exact optimum lower-bounds every heuristic.
    for method in ("g-order", "g-global", "bls"):
        heuristic = make_solver(method, seed=1, restarts=2).solve(instance)
        assert heuristic.total_regret >= result.total_regret - 1e-9


def test_never_worse_than_greedy_warm_start():
    instance = make_random_instance(12, num_billboards=10, num_advertisers=3)
    greedy = make_solver("g-global").solve(instance)
    bnb = BranchAndBoundSolver().solve(instance)
    assert bnb.total_regret <= greedy.total_regret + 1e-9


def test_example1_optimum(example1):
    result = BranchAndBoundSolver().solve(example1)
    assert result.total_regret == pytest.approx(0.0)
    assert result.stats["nodes_visited"] > 0


def test_node_cap_raises():
    instance = make_random_instance(
        13, num_billboards=14, num_trajectories=25, num_advertisers=3
    )
    with pytest.raises(RuntimeError, match="exceeded"):
        BranchAndBoundSolver(max_nodes=0).solve(instance)


def test_registry_alias():
    from repro.algorithms.branch_and_bound import BranchAndBoundSolver as Cls

    assert isinstance(make_solver("bnb"), Cls)
