"""Tests for G-Global (Algorithm 2), standalone and as a subroutine."""

import pytest

from repro.algorithms.greedy_global import SynchronousGreedy, synchronous_greedy
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


def disjoint_instance(num_billboards=6, per_board=2, contracts=((4, 4.0), (4, 4.0))):
    """Billboards covering disjoint blocks of ``per_board`` trajectories."""
    lists = [
        range(i * per_board, (i + 1) * per_board) for i in range(num_billboards)
    ]
    coverage = CoverageIndex.from_coverage_lists(lists, num_billboards * per_board)
    advertisers = [Advertiser(i, d, p) for i, (d, p) in enumerate(contracts)]
    return MROAMInstance(coverage, advertisers, gamma=0.5)


class TestRoundRobin:
    def test_both_advertisers_served(self):
        instance = disjoint_instance()
        result = SynchronousGreedy().solve(instance)
        assert result.satisfied_count == 2
        assert result.total_regret == 0.0

    def test_no_advertiser_monopolizes(self):
        instance = disjoint_instance(
            num_billboards=4, per_board=2, contracts=((4, 8.0), (4, 4.0))
        )
        result = SynchronousGreedy().solve(instance)
        # Round-robin: each advertiser gets exactly the two billboards needed.
        assert len(result.allocation.billboards_of(0)) == 2
        assert len(result.allocation.billboards_of(1)) == 2


class TestReleaseRule:
    def test_releases_least_effective_when_pool_dry(self):
        # Three billboards cannot satisfy three advertisers needing two each;
        # the least budget-effective (a2, 0.5) is sacrificed and its billboard
        # tops up the most budget-effective one.
        instance = disjoint_instance(
            num_billboards=3,
            per_board=2,
            contracts=((4, 8.0), (4, 6.0), (4, 2.0)),
        )
        result = SynchronousGreedy().solve(instance)
        allocation = result.allocation
        assert allocation.billboards_of(2) == frozenset()
        assert allocation.is_satisfied(0)
        assert len(allocation.billboards_of(1)) == 1  # partial fill remains

    def test_stats_count_releases(self):
        instance = disjoint_instance(
            num_billboards=3,
            per_board=2,
            contracts=((4, 8.0), (4, 6.0), (4, 2.0)),
        )
        result = SynchronousGreedy().solve(instance)
        assert result.stats["releases"] >= 1

    def test_single_unsatisfied_is_not_released(self):
        instance = disjoint_instance(
            num_billboards=1, per_board=2, contracts=((4, 4.0),)
        )
        result = SynchronousGreedy().solve(instance)
        # One unsatisfied advertiser keeps its partial fill.
        assert result.allocation.billboards_of(0) == frozenset({0})


class TestAsSubroutine:
    def test_respects_initial_plan(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(4, 0)  # pre-seeded billboard stays unless released
        synchronous_greedy(allocation)
        assert 4 in allocation.billboards_of(0) or allocation.billboards_of(0) == frozenset()
        validate_allocation(allocation)

    def test_active_set_restricts_assignment(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        synchronous_greedy(allocation, active={0})
        assert allocation.billboards_of(1) == frozenset()

    def test_stats_accumulate(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        stats: dict = {}
        synchronous_greedy(allocation, stats=stats)
        assert stats["assignments"] > 0


class TestStructure:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_valid_on_random_instances(self, seed):
        instance = make_random_instance(seed, num_billboards=15, num_advertisers=4)
        result = SynchronousGreedy().solve(instance)
        validate_allocation(result.allocation)

    def test_deterministic(self):
        instance = make_random_instance(10)
        first = SynchronousGreedy().solve(instance)
        second = SynchronousGreedy().solve(instance)
        assert first.allocation.assignment_map() == second.allocation.assignment_map()

    def test_terminates_on_unreachable_demands(self):
        coverage = CoverageIndex.from_coverage_lists([[0], [0]], num_trajectories=1)
        instance = MROAMInstance(
            coverage, [Advertiser(0, 100, 1.0), Advertiser(1, 100, 2.0)], gamma=0.5
        )
        result = SynchronousGreedy().solve(instance)
        validate_allocation(result.allocation)
