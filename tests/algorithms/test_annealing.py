"""Tests for the simulated-annealing extension solver."""

import pytest

from repro.algorithms.annealing import SimulatedAnnealingSolver
from repro.algorithms.registry import make_solver
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


class TestConfiguration:
    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError, match="steps"):
            SimulatedAnnealingSolver(steps=0)

    def test_rejects_bad_cooling(self):
        with pytest.raises(ValueError, match="cooling"):
            SimulatedAnnealingSolver(cooling=1.5)

    def test_registry_alias(self):
        assert isinstance(make_solver("sa", seed=0), SimulatedAnnealingSolver)


class TestSearch:
    def test_valid_allocation_and_stats(self):
        instance = make_random_instance(3, num_billboards=12, num_advertisers=3)
        result = SimulatedAnnealingSolver(steps=2_000, seed=0).solve(instance)
        validate_allocation(result.allocation)
        assert result.stats["sa_steps"] == 2_000
        assert 0 <= result.stats["sa_accepted"] <= 2_000

    def test_never_worse_than_greedy_start(self):
        # SA returns the best state seen, which includes the greedy start.
        from repro.algorithms.greedy_global import SynchronousGreedy

        for seed in range(4):
            instance = make_random_instance(seed, num_billboards=12, num_advertisers=3)
            greedy = SynchronousGreedy().solve(instance).total_regret
            sa = SimulatedAnnealingSolver(steps=1_500, seed=seed).solve(instance)
            assert sa.total_regret <= greedy + 1e-9

    def test_deterministic_by_seed(self):
        instance = make_random_instance(5, num_billboards=10, num_advertisers=3)
        first = SimulatedAnnealingSolver(steps=1_000, seed=9).solve(instance)
        second = SimulatedAnnealingSolver(steps=1_000, seed=9).solve(instance)
        assert first.total_regret == pytest.approx(second.total_regret)
        assert first.allocation.assignment_map() == second.allocation.assignment_map()

    def test_explicit_temperature_accepted(self):
        instance = make_random_instance(6, num_billboards=8, num_advertisers=2)
        result = SimulatedAnnealingSolver(
            steps=500, initial_temperature=5.0, seed=1
        ).solve(instance)
        validate_allocation(result.allocation)

    def test_tracked_regret_matches_recompute(self):
        # The incremental current_regret bookkeeping must not drift: the best
        # plan's reported regret equals a from-scratch total.
        instance = make_random_instance(7, num_billboards=12, num_advertisers=3)
        result = SimulatedAnnealingSolver(steps=3_000, seed=2).solve(instance)
        assert result.total_regret == pytest.approx(
            result.allocation.total_regret(), abs=1e-6
        )
