"""Tests for the solver registry."""

import pytest

from repro.algorithms.greedy_global import SynchronousGreedy
from repro.algorithms.greedy_order import BudgetEffectiveGreedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.algorithms.registry import PAPER_METHODS, make_solver


def test_paper_methods_resolve():
    for name in PAPER_METHODS:
        solver = make_solver(name, seed=0)
        assert solver.name


def test_names_case_and_separator_insensitive():
    assert isinstance(make_solver("G-Order"), BudgetEffectiveGreedy)
    assert isinstance(make_solver("g_global"), SynchronousGreedy)


def test_local_search_configuration_forwarded():
    solver = make_solver("bls", seed=1, restarts=7)
    assert isinstance(solver, RandomizedLocalSearch)
    assert solver.neighborhood == "bls"
    assert solver.restarts == 7


def test_als_neighborhood():
    solver = make_solver("als", seed=1)
    assert isinstance(solver, RandomizedLocalSearch)
    assert solver.neighborhood == "als"


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown solver"):
        make_solver("simulated-annealing")
