"""Cross-solver fuzzing: every solver, random instances, full validation.

Property-based end-to-end check: for any random small instance, every
solver must return a structurally valid plan whose reported regret matches
a recomputation, and no heuristic may beat the exact oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.branch_and_bound import BranchAndBoundSolver
from repro.algorithms.registry import PAPER_METHODS, make_solver
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance

ALL_METHODS = PAPER_METHODS + ("sa",)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), gamma=st.sampled_from([0.0, 0.25, 0.5, 1.0]))
def test_all_solvers_valid_on_random_instances(seed, gamma):
    instance = make_random_instance(
        seed, num_billboards=10, num_trajectories=20, num_advertisers=3, gamma=gamma
    )
    for method in ALL_METHODS:
        kwargs = {"restarts": 1} if method in ("als", "bls") else {}
        if method == "sa":
            kwargs = {"steps": 300}
        result = make_solver(method, seed=seed, **kwargs).solve(instance)
        validate_allocation(result.allocation)
        assert result.total_regret == pytest.approx(
            result.allocation.total_regret(), abs=1e-9
        ), method
        assert result.total_regret >= -1e-9, method


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_oracle_dominates_all_heuristics(seed):
    instance = make_random_instance(
        seed, num_billboards=8, num_trajectories=14, num_advertisers=2
    )
    optimum = BranchAndBoundSolver().solve(instance).total_regret
    for method in ALL_METHODS:
        kwargs = {"restarts": 1} if method in ("als", "bls") else {}
        if method == "sa":
            kwargs = {"steps": 300}
        result = make_solver(method, seed=seed, **kwargs).solve(instance)
        assert result.total_regret >= optimum - 1e-9, method


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dual_never_exceeds_total_payment(seed):
    instance = make_random_instance(seed, num_billboards=10, num_advertisers=3)
    for method in ("g-global", "bls"):
        kwargs = {"restarts": 1} if method == "bls" else {}
        result = make_solver(method, seed=seed, **kwargs).solve(instance)
        assert result.allocation.total_dual() <= instance.total_payment() + 1e-9
