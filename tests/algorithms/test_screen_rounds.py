"""Round-fused exchange screens must equal the per-billboard screens.

The dirty engine consumes screen verdicts through
:class:`~repro.algorithms.screen.ScreenRoundPlanner`; these tests pin the
bit-identity claims of DESIGN.md §13 at every layer: candidate-set
construction (:func:`round_candidates` vs the scalar sweep-state helpers),
verdict arithmetic (:func:`round_flags` vs ``_exchange_screen`` /
``_exchange_screen_batch``), and the engine end to end with the screen
rounds fanned across the worker pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.algorithms.annealing import SimulatedAnnealingSolver
from repro.algorithms.bls import (
    _all_exchange_candidates,
    _exchange_screen,
    _exchange_screen_batch,
    billboard_driven_local_search,
)
from repro.algorithms.greedy_global import synchronous_greedy
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.algorithms.screen import (
    DEFAULT_PARALLEL_MIN_CELLS,
    PARALLEL_MIN_CELLS_ENV,
    parallel_min_cells,
    round_flags,
)
from repro.algorithms.sweep import BillboardSweepState, round_candidates
from repro.core.allocation import UNASSIGNED, Allocation
from repro.parallel.pool import OVERSUBSCRIBE_ENV, close_all_pools
from tests.conftest import make_random_instance


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(
        23, num_billboards=40, num_trajectories=120, num_advertisers=5
    )


def _greedy_allocation(instance) -> Allocation:
    allocation = Allocation(instance)
    synchronous_greedy(allocation)
    return allocation


def _mixed_state(instance, allocation) -> BillboardSweepState:
    """A sweep state with certified, stale, and never-scanned rows mixed."""
    state = BillboardSweepState(instance.num_advertisers, instance.num_billboards)
    owned = np.nonzero(allocation.owners != UNASSIGNED)[0]
    for billboard_id in owned[::2]:
        state.certify_scan(int(billboard_id))
    state.mark_move(advertisers=(0,), freed=(int(owned[0]),))
    for billboard_id in owned[1::3]:
        state.certify_scan(int(billboard_id))
    state.mark_move(advertisers=(1, 2))
    return state


def _assigned_rows(allocation) -> tuple[np.ndarray, np.ndarray]:
    """Every (advertiser, billboard) row in engine visit order."""
    advertisers, billboards = [], []
    for advertiser_id in range(allocation.instance.num_advertisers):
        for billboard_id in sorted(allocation.billboards_of(advertiser_id)):
            advertisers.append(advertiser_id)
            billboards.append(billboard_id)
    return (
        np.asarray(advertisers, dtype=np.int64),
        np.asarray(billboards, dtype=np.int64),
    )


class TestRoundCandidates:
    def test_matches_scalar_helpers_row_by_row(self, instance):
        allocation = _greedy_allocation(instance)
        state = _mixed_state(instance, allocation)
        advertiser_ids, billboard_ids = _assigned_rows(allocation)
        owners = allocation.owners
        certified = state.round_certificates(advertiser_ids, billboard_ids, False)
        flat, lengths = round_candidates(
            owners,
            advertiser_ids,
            billboard_ids,
            certified,
            state.advertiser_version,
            state.freed_version,
        )
        offset = 0
        for k in range(len(billboard_ids)):
            advertiser_id = int(advertiser_ids[k])
            billboard_id = int(billboard_ids[k])
            if state.own_side_stale(advertiser_id, billboard_id):
                expected = _all_exchange_candidates(owners, advertiser_id, billboard_id)
            else:
                expected = state.changed_candidates(billboard_id, owners, advertiser_id)
            got = flat[offset : offset + lengths[k]]
            assert np.array_equal(got, expected), (advertiser_id, billboard_id)
            offset += lengths[k]
        assert offset == len(flat)

    def test_verifying_certificates_take_the_full_mask(self, instance):
        allocation = _greedy_allocation(instance)
        state = _mixed_state(instance, allocation)
        advertiser_ids, billboard_ids = _assigned_rows(allocation)
        certified = state.round_certificates(advertiser_ids, billboard_ids, True)
        assert (certified == -1).all()
        flat, lengths = round_candidates(
            allocation.owners,
            advertiser_ids,
            billboard_ids,
            certified,
            state.advertiser_version,
            state.freed_version,
        )
        offset = 0
        for k in range(len(billboard_ids)):
            expected = _all_exchange_candidates(
                allocation.owners, int(advertiser_ids[k]), int(billboard_ids[k])
            )
            assert np.array_equal(flat[offset : offset + lengths[k]], expected)
            offset += lengths[k]


class TestRoundFlags:
    def test_matches_scalar_and_batch_screens(self, instance):
        allocation = _greedy_allocation(instance)
        state = _mixed_state(instance, allocation)
        advertiser_ids, billboard_ids = _assigned_rows(allocation)
        owners = allocation.owners
        certified = state.round_certificates(advertiser_ids, billboard_ids, False)
        flat, lengths = round_candidates(
            owners,
            advertiser_ids,
            billboard_ids,
            certified,
            state.advertiser_version,
            state.freed_version,
        )
        min_improvement = 1e-9
        flags = round_flags(
            instance,
            owners,
            allocation.influences,
            advertiser_ids,
            billboard_ids,
            flat,
            lengths,
            min_improvement,
        )
        offsets = np.zeros(len(billboard_ids), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        candidate_sets = [
            flat[offsets[k] : offsets[k] + lengths[k]]
            for k in range(len(billboard_ids))
        ]
        # Scalar screen, row by row.
        for k in range(len(billboard_ids)):
            expected = _exchange_screen(
                allocation,
                int(advertiser_ids[k]),
                int(billboard_ids[k]),
                candidate_sets[k],
                min_improvement,
            )
            assert bool(flags[k]) == expected, int(billboard_ids[k])
        # Per-advertiser batch screen (the PR-4 shape the round pass fuses).
        for advertiser_id in range(instance.num_advertisers):
            rows = np.nonzero(advertiser_ids == advertiser_id)[0]
            if len(rows) == 0:
                continue
            batch = _exchange_screen_batch(
                allocation,
                advertiser_id,
                [int(billboard_ids[k]) for k in rows],
                [candidate_sets[k] for k in rows],
                min_improvement,
            )
            assert np.array_equal(flags[rows], batch)

    def test_empty_candidate_sets_screen_out(self, instance):
        allocation = _greedy_allocation(instance)
        advertiser_ids, billboard_ids = _assigned_rows(allocation)
        flat = np.empty(0, dtype=np.int64)
        lengths = np.zeros(len(billboard_ids), dtype=np.int64)
        flags = round_flags(
            instance,
            allocation.owners,
            allocation.influences,
            advertiser_ids,
            billboard_ids,
            flat,
            lengths,
            1e-9,
        )
        assert not flags.any()


class TestParallelScreenEngine:
    def test_parallel_rounds_match_serial_engine(self, instance, monkeypatch):
        """End to end: screen_workers=2 with the pool threshold forced low
        must reproduce the serial dirty engine bit for bit, and must actually
        exercise the parallel path."""
        monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
        monkeypatch.setenv(PARALLEL_MIN_CELLS_ENV, "64")

        def run(**kwargs):
            allocation = _greedy_allocation(instance)
            stats: dict = {}
            allocation = billboard_driven_local_search(
                allocation, stats=stats, engine="dirty", **kwargs
            )
            return allocation, stats

        close_all_pools()
        obs.enable()
        try:
            obs.reset()
            parallel, parallel_stats = run(screen_workers=2)
            parallel_rounds = obs.counter_value("bls.screen.parallel")
        finally:
            obs.disable()
            obs.reset()
            close_all_pools()
        serial, serial_stats = run()
        assert np.array_equal(parallel.owners, serial.owners)
        assert parallel.total_regret() == serial.total_regret()
        assert parallel_stats == serial_stats
        assert parallel_rounds > 0

    def test_min_cells_env_override(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_CELLS_ENV, "1234")
        assert parallel_min_cells() == 1234
        monkeypatch.setenv(PARALLEL_MIN_CELLS_ENV, "not-a-number")
        assert parallel_min_cells() == DEFAULT_PARALLEL_MIN_CELLS
        monkeypatch.delenv(PARALLEL_MIN_CELLS_ENV)
        assert parallel_min_cells() == DEFAULT_PARALLEL_MIN_CELLS


class TestSolverParameterValidation:
    def test_screen_workers_validated(self):
        with pytest.raises(ValueError, match="screen_workers"):
            RandomizedLocalSearch("bls", screen_workers=0)

    @pytest.mark.parametrize("bad", [0, -1, "bogus", 1.5])
    def test_restart_batch_size_validated(self, bad):
        with pytest.raises(ValueError, match="restart_batch_size"):
            RandomizedLocalSearch("bls", restart_batch_size=bad)
        with pytest.raises(ValueError, match="restart_batch_size"):
            SimulatedAnnealingSolver(steps=10, restart_batch_size=bad)
