"""Tests for the shared vectorized marginal-selection helper."""

import numpy as np
import pytest

from repro.algorithms._marginal import best_marginal_billboard, regret_values
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.regret import regret


class TestRegretValues:
    def test_matches_scalar_regret_elementwise(self):
        achieved = np.array([0.0, 3.0, 5.0, 8.0])
        values = regret_values(10.0, 5.0, 0.5, achieved)
        expected = [regret(10.0, 5.0, float(v), 0.5) for v in achieved]
        assert np.allclose(values, expected)

    def test_broadcasts_over_contract_arrays(self):
        payments = np.array([10.0, 20.0])
        demands = np.array([5.0, 8.0])
        achieved = np.array([6.0, 7.0])
        values = regret_values(payments, demands, 0.5, achieved)
        assert values[0] == pytest.approx(regret(10.0, 5.0, 6.0, 0.5))
        assert values[1] == pytest.approx(regret(20.0, 8.0, 7.0, 0.5))


class TestBestMarginalBillboard:
    def make_instance(self):
        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1], [0, 1, 2, 3], [4, 5], [], [5]], num_trajectories=6
        )
        return MROAMInstance(coverage, [Advertiser(0, 6, 6.0)], gamma=0.5)

    def test_empty_candidates(self):
        instance = self.make_instance()
        allocation = Allocation(instance)
        assert best_marginal_billboard(allocation, 0, np.array([], dtype=np.int64)) is None

    def test_zero_influence_candidates_skipped(self):
        instance = self.make_instance()
        allocation = Allocation(instance)
        assert best_marginal_billboard(allocation, 0, np.array([3])) is None

    def test_maximizes_the_paper_ratio(self):
        instance = self.make_instance()
        allocation = Allocation(instance)
        allocation.assign(1, 0)  # holds {0,1,2,3}
        # Candidates: o0 (fully overlapped, gain 0), o2 (gain 2), o4 (gain 1,
        # size 1 -> ratio Lγ/I · 1/1 beats o2's 2/2? both ratios equal gain/size
        # scaled identically; gain/size: o2=1.0, o4=1.0, o0=0.0 — tie broken by id.
        pick = best_marginal_billboard(allocation, 0, np.array([0, 2, 4]))
        assert pick == 2

    def test_ratio_against_brute_force(self):
        # Cross-check the vectorized argmax against a literal evaluation.
        rng = np.random.default_rng(4)
        lists = [
            sorted(rng.choice(15, size=int(rng.integers(1, 8)), replace=False).tolist())
            for _ in range(8)
        ]
        coverage = CoverageIndex.from_coverage_lists(lists, 15)
        instance = MROAMInstance(coverage, [Advertiser(0, 10, 12.0)], gamma=0.5)
        allocation = Allocation(instance)
        allocation.assign(0, 0)

        candidates = np.array([b for b in range(1, 8)])
        pick = best_marginal_billboard(allocation, 0, candidates)

        def literal_ratio(billboard_id):
            before = instance.regret_of(0, allocation.influence(0))
            gain = allocation.influence_delta_add(0, billboard_id)
            after = instance.regret_of(0, allocation.influence(0) + gain)
            return (before - after) / coverage.influence_of(billboard_id)

        best_literal = max(
            (b for b in candidates if coverage.influence_of(b) > 0),
            key=lambda b: (literal_ratio(int(b)), -int(b)),
        )
        assert literal_ratio(pick) == pytest.approx(literal_ratio(int(best_literal)))
