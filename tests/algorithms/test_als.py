"""Tests for the advertiser-driven local search (Algorithm 4)."""

import pytest

from repro.algorithms.als import advertiser_driven_local_search
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance, random_allocation


def test_swaps_misassigned_sets():
    # a0 (demand 2) holds the big set, a1 (demand 4) the small one: swapping
    # whole sets fixes both.
    coverage = CoverageIndex.from_coverage_lists(
        [[0, 1, 2, 3], [4, 5]], num_trajectories=6
    )
    instance = MROAMInstance(
        coverage, [Advertiser(0, 2, 2.0), Advertiser(1, 4, 4.0)], gamma=0.5
    )
    allocation = Allocation(instance)
    allocation.assign(0, 0)  # big set to small advertiser
    allocation.assign(1, 1)
    before = allocation.total_regret()
    result = advertiser_driven_local_search(allocation)
    assert result.total_regret() < before
    assert result.total_regret() == 0.0
    assert result.billboards_of(0) == frozenset({1})
    assert result.billboards_of(1) == frozenset({0})


def test_never_worsens(tiny_instance):
    for seed in range(5):
        allocation = random_allocation(tiny_instance, seed)
        before = allocation.total_regret()
        result = advertiser_driven_local_search(allocation)
        assert result.total_regret() <= before + 1e-9
        validate_allocation(result)


def test_terminates_at_local_optimum():
    # After the search, no pairwise set exchange can improve.
    from repro.core.moves import delta_exchange_sets

    instance = make_random_instance(3, num_billboards=10, num_advertisers=4)
    allocation = random_allocation(instance, 4)
    result = advertiser_driven_local_search(allocation)
    for i in range(instance.num_advertisers):
        for j in range(i + 1, instance.num_advertisers):
            assert delta_exchange_sets(result, i, j) >= -1e-9


def test_stats_recorded(tiny_instance):
    allocation = random_allocation(tiny_instance, 7)
    stats: dict = {}
    advertiser_driven_local_search(allocation, stats=stats)
    assert stats["als_sweeps"] >= 1
    assert stats["als_exchanges"] >= 0


def test_single_advertiser_noop():
    coverage = CoverageIndex.from_coverage_lists([[0]], num_trajectories=1)
    instance = MROAMInstance(coverage, [Advertiser(0, 1, 1.0)])
    allocation = Allocation(instance)
    allocation.assign(0, 0)
    result = advertiser_driven_local_search(allocation)
    assert result.total_regret() == pytest.approx(0.0)
