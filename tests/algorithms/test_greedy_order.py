"""Tests for G-Order (Algorithm 1)."""

import pytest

from repro.algorithms.greedy_order import BudgetEffectiveGreedy
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


class TestOrdering:
    def test_most_budget_effective_served_first(self):
        # One great billboard; the high L/I advertiser must get it.
        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1, 2, 3], [4]], num_trajectories=5
        )
        advertisers = [
            Advertiser(0, demand=4, payment=4.0),  # effectiveness 1.0
            Advertiser(1, demand=4, payment=8.0),  # effectiveness 2.0 — first
        ]
        instance = MROAMInstance(coverage, advertisers, gamma=0.5)
        result = BudgetEffectiveGreedy().solve(instance)
        assert result.allocation.billboards_of(1) == frozenset({0})

    def test_tie_broken_by_id(self):
        coverage = CoverageIndex.from_coverage_lists([[0, 1]], num_trajectories=2)
        advertisers = [Advertiser(0, 2, 2.0), Advertiser(1, 2, 2.0)]
        instance = MROAMInstance(coverage, advertisers)
        result = BudgetEffectiveGreedy().solve(instance)
        assert result.allocation.billboards_of(0) == frozenset({0})


class TestSelectionRule:
    def test_prefers_low_overlap_billboard(self):
        # Holding o1 {0,1,2,3}, the marginal rule must prefer the disjoint
        # o2 {4,5} over the fully-overlapped o0 {0,1}.
        import numpy as np

        from repro.algorithms._marginal import best_marginal_billboard
        from repro.core.allocation import Allocation

        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1], [0, 1, 2, 3], [4, 5]], num_trajectories=6
        )
        instance = MROAMInstance(coverage, [Advertiser(0, 6, 6.0)], gamma=0.5)
        allocation = Allocation(instance)
        allocation.assign(1, 0)
        pick = best_marginal_billboard(allocation, 0, np.array([0, 2]))
        assert pick == 2

    def test_reaches_zero_regret_when_exact_cover_exists(self):
        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1], [0, 1, 2, 3], [4, 5]], num_trajectories=6
        )
        instance = MROAMInstance(coverage, [Advertiser(0, 6, 6.0)], gamma=0.5)
        result = BudgetEffectiveGreedy().solve(instance)
        assert result.total_regret == 0.0

    def test_stops_at_satisfaction(self):
        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1, 2], [3, 4, 5]], num_trajectories=6
        )
        instance = MROAMInstance(coverage, [Advertiser(0, 3, 3.0)], gamma=0.5)
        result = BudgetEffectiveGreedy().solve(instance)
        assert len(result.allocation.billboards_of(0)) == 1

    def test_zero_influence_billboards_not_consumed(self):
        coverage = CoverageIndex.from_coverage_lists([[0], [], []], num_trajectories=1)
        instance = MROAMInstance(coverage, [Advertiser(0, 5, 5.0)], gamma=0.5)
        result = BudgetEffectiveGreedy().solve(instance)
        # Demand is unreachable; the useless empty billboards must be skipped.
        assert result.allocation.billboards_of(0) == frozenset({0})

    def test_unsatisfiable_advertiser_consumes_useful_pool(self):
        # Literal Algorithm 1: while unsatisfied and billboards remain, keep
        # assigning — even at zero marginal gain.
        coverage = CoverageIndex.from_coverage_lists(
            [[0, 1], [0, 1], [0, 1]], num_trajectories=2
        )
        instance = MROAMInstance(
            coverage, [Advertiser(0, 10, 10.0), Advertiser(1, 2, 1.0)], gamma=0.5
        )
        result = BudgetEffectiveGreedy().solve(instance)
        # a0 (higher effectiveness) eats all three billboards; a1 starves.
        assert result.allocation.billboards_of(0) == frozenset({0, 1, 2})
        assert result.allocation.influence(1) == 0


class TestStructure:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_valid_allocation_on_random_instances(self, seed):
        instance = make_random_instance(seed, num_billboards=15, num_advertisers=4)
        result = BudgetEffectiveGreedy().solve(instance)
        validate_allocation(result.allocation)
        assert result.total_regret == pytest.approx(result.allocation.total_regret())
        assert result.runtime_s >= 0.0
        assert result.stats["assignments"] >= 0

    def test_deterministic(self):
        instance = make_random_instance(9)
        first = BudgetEffectiveGreedy().solve(instance)
        second = BudgetEffectiveGreedy().solve(instance)
        assert first.allocation.assignment_map() == second.allocation.assignment_map()
