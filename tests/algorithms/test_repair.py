"""Warm-vs-cold equivalence for the shared bounded-repair pass."""

import random

import numpy as np
import pytest

from repro.algorithms.repair import bounded_repair
from repro.algorithms.sweep import BillboardSweepState
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.journal import JournaledAllocation
from repro.core.problem import MROAMInstance


def build_world(seed, num_billboards=30, num_trajectories=200, booked=5):
    rng = random.Random(seed)
    lists = [
        rng.sample(range(num_trajectories), rng.randint(1, 10))
        for _ in range(num_billboards)
    ]
    coverage = CoverageIndex.from_coverage_lists(lists, num_trajectories)
    advertisers = [
        Advertiser(i, rng.randint(3, 15), round(rng.uniform(1, 8), 2))
        for i in range(booked)
    ]
    newcomers = [
        (rng.randint(2, 20), round(rng.uniform(0.5, 9), 2)) for _ in range(6)
    ]
    return coverage, advertisers, newcomers


def plan_fingerprint(allocation, num_advertisers):
    return tuple(
        allocation.billboards_of(advertiser_id)
        for advertiser_id in range(num_advertisers)
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("sweeps", [0, 2])
def test_warm_repairs_match_cold_repairs(seed, sweeps):
    """A warm journaled workspace repairs bit-identically to cold reruns.

    The warm side prices every newcomer against one live allocation +
    carried sweep state (rolling back in between); the cold side rebuilds a
    fresh allocation and state per newcomer — certificates can only skip
    work, never change the accepted moves.
    """
    coverage, advertisers, newcomers = build_world(seed)
    slot = len(advertisers)

    def extended_instance(demand, payment):
        return MROAMInstance(
            coverage, [*advertisers, Advertiser(slot, demand, payment)]
        )

    # Warm: one journaled allocation + one sweep state across all repairs.
    warm_instance = extended_instance(1, 0.0)
    warm = JournaledAllocation(warm_instance)
    warm.journal_enable()
    state = BillboardSweepState(slot + 1, coverage.num_billboards)
    # Give the book a standing plan first (repair an initial newcomer in and
    # keep it — the realistic warm starting point).
    for advertiser_id in range(slot):
        bounded_repair(warm, advertiser_id, sweeps, state=state)
    warm.journal_commit()
    baseline = plan_fingerprint(warm, slot + 1)

    for demand, payment in newcomers:
        warm_instance.advertisers[slot] = Advertiser(slot, demand, payment)
        warm_instance.demands[slot] = demand
        warm_instance.payments[slot] = payment
        warm.invalidate_regret(slot)
        pre = state.snapshot()
        mark = warm.journal_mark()
        repaired = bounded_repair(warm, slot, sweeps, state=state)
        assert repaired is warm
        warm_result = (
            plan_fingerprint(warm, slot + 1),
            warm.total_regret(),
        )
        warm.rollback_to(mark)
        state.restore(pre)
        assert plan_fingerprint(warm, slot + 1) == baseline

        # Cold: fresh allocation + fresh implicit state, same starting plan.
        cold_instance = extended_instance(demand, payment)
        cold = Allocation(cold_instance)
        cold.copy_assignments_from(warm)
        cold = bounded_repair(cold, slot, sweeps)
        assert warm_result == (
            plan_fingerprint(cold, slot + 1),
            cold.total_regret(),
        )


def test_carried_state_requires_dirty_engine():
    from repro.algorithms.bls import billboard_driven_local_search

    coverage, advertisers, _ = build_world(3)
    instance = MROAMInstance(coverage, advertisers)
    allocation = Allocation(instance)
    state = BillboardSweepState(len(advertisers), coverage.num_billboards)
    with pytest.raises(ValueError, match="dirty"):
        billboard_driven_local_search(allocation, engine="full", state=state)


def test_snapshot_restore_round_trips_after_mutation():
    state = BillboardSweepState(3, 5)
    snap = state.snapshot()
    state.mark_move(advertisers=(1,), freed=(2,))
    state.certify_scan(0)
    state.certify_topup()
    assert not state.topup_clean() or state.version == state.topup_version
    state.restore(snap)
    assert state.version == 1
    assert state.topup_version == 0
    assert list(state.advertiser_version) == [1, 1, 1]
    assert list(state.scan_version) == [0, 0, 0, 0, 0]
    # Restoring twice from the same snapshot must be safe (accept replays).
    state.mark_move(advertisers=(0,))
    state.restore(snap)
    assert list(state.advertiser_version) == [1, 1, 1]


def test_grow_advertisers_stamps_new_rows_current():
    state = BillboardSweepState(2, 4)
    state.mark_move(advertisers=(0,))
    state.grow_advertisers(4)
    assert len(state.advertiser_version) == 4
    assert list(state.advertiser_version[2:]) == [state.version, state.version]
    assert list(state.release_version[2:]) == [0, 0]
    with pytest.raises(ValueError, match="shrink"):
        state.grow_advertisers(1)
