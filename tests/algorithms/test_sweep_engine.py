"""Dirty-set sweep engine equivalence: ``engine="dirty"`` == ``engine="full"``.

The dirty engine skips provably-dead scans via version-counter certificates
but runs one final unrestricted verification sweep before declaring local
optimality, so both engines must land on bit-identical allocations — same
owners, same total regret, same accepted-move counts — on every instance,
under both coverage kernels (packed bitmap and id-list).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_random_instance, random_allocation
from repro.algorithms.als import advertiser_driven_local_search
from repro.algorithms.bls import billboard_driven_local_search
from repro.algorithms.sweep import BillboardSweepState, PairSweepState
from repro.billboard.influence import BITMAP_BUDGET_ENV
from repro.core.allocation import UNASSIGNED

SEEDS = (0, 1, 7, 23, 99)


def _run_bls(instance, start_seed: int, engine: str):
    allocation = random_allocation(instance, seed=start_seed)
    stats: dict = {}
    billboard_driven_local_search(allocation, stats=stats, engine=engine)
    return allocation, stats


def _run_als(instance, start_seed: int, engine: str):
    allocation = random_allocation(instance, seed=start_seed)
    stats: dict = {}
    advertiser_driven_local_search(allocation, stats=stats, engine=engine)
    return allocation, stats


@pytest.fixture(params=["bitmap", "id"])
def kernel_env(request, monkeypatch):
    """Force one coverage kernel; instances must be built inside the test
    because the bitmap budget is read at ``CoverageIndex`` construction."""
    if request.param == "id":
        monkeypatch.setenv(BITMAP_BUDGET_ENV, "0")
    else:
        monkeypatch.delenv(BITMAP_BUDGET_ENV, raising=False)
    return request.param


class TestDirtyMatchesFull:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bls_identical_allocation_and_regret(self, seed, kernel_env):
        instance = make_random_instance(
            seed, num_billboards=20, num_trajectories=40, num_advertisers=4
        )
        dirty, dirty_stats = _run_bls(instance, start_seed=seed + 1, engine="dirty")
        full, full_stats = _run_bls(instance, start_seed=seed + 1, engine="full")
        assert np.array_equal(dirty.owners, full.owners)
        assert dirty.total_regret() == full.total_regret()
        assert dirty.assignment_map() == full.assignment_map()
        # Identical move sequence, not just the same fixed point.
        for key in ("bls_exchanges", "bls_releases", "bls_topups"):
            assert dirty_stats[key] == full_stats[key], key

    @pytest.mark.parametrize("seed", SEEDS)
    def test_als_identical_allocation_and_regret(self, seed, kernel_env):
        instance = make_random_instance(
            seed, num_billboards=20, num_trajectories=40, num_advertisers=4
        )
        dirty, dirty_stats = _run_als(instance, start_seed=seed + 1, engine="dirty")
        full, full_stats = _run_als(instance, start_seed=seed + 1, engine="full")
        assert np.array_equal(dirty.owners, full.owners)
        assert dirty.total_regret() == full.total_regret()
        assert dirty_stats["als_exchanges"] == full_stats["als_exchanges"]

    def test_dirty_skips_work_on_the_bench_shape(self):
        """The certificates must actually prune: from a greedy start (the
        benchmark's shape) the dirty engine evaluates strictly fewer exchange
        candidates while landing on the same allocation."""
        from repro.algorithms.greedy_global import synchronous_greedy
        from repro.core.allocation import Allocation

        instance = make_random_instance(
            3, num_billboards=60, num_trajectories=150, num_advertisers=6
        )
        results = {}
        for engine in ("dirty", "full"):
            allocation = Allocation(instance)
            synchronous_greedy(allocation)
            stats: dict = {}
            billboard_driven_local_search(allocation, stats=stats, engine=engine)
            results[engine] = (allocation, stats)
        dirty, dirty_stats = results["dirty"]
        full, full_stats = results["full"]
        assert np.array_equal(dirty.owners, full.owners)
        assert dirty_stats["bls_exchange_evaluated"] < full_stats["bls_exchange_evaluated"]
        assert dirty_stats["bls_dirty_skipped"] > 0


class TestStatsKeys:
    def test_split_evaluated_counters(self):
        """Satellite: the old conflated ``moves_evaluated`` is split into
        exchange vs release tallies (dirty and full engines alike)."""
        instance = make_random_instance(2)
        for engine in ("dirty", "full"):
            _, stats = _run_bls(instance, start_seed=4, engine=engine)
            assert "bls_exchange_evaluated" in stats
            assert "bls_release_evaluated" in stats
            assert "bls_moves_evaluated" not in stats

    def test_dirty_engine_reports_scan_counters(self):
        instance = make_random_instance(2)
        _, stats = _run_bls(instance, start_seed=4, engine="dirty")
        assert stats["bls_dirty_scanned"] >= 0
        assert stats["bls_dirty_skipped"] >= 0
        _, full_stats = _run_bls(instance, start_seed=4, engine="full")
        assert "bls_dirty_scanned" not in full_stats

    def test_unknown_engine_rejected(self):
        instance = make_random_instance(2)
        allocation = random_allocation(instance, seed=4)
        with pytest.raises(ValueError, match="engine"):
            billboard_driven_local_search(allocation, engine="eager")
        with pytest.raises(ValueError, match="engine"):
            advertiser_driven_local_search(allocation, engine="eager")


class TestBillboardSweepState:
    def test_never_certified_is_stale(self):
        state = BillboardSweepState(num_advertisers=2, num_billboards=4)
        assert state.own_side_stale(0, 0)
        state.certify_scan(0)
        assert not state.own_side_stale(0, 0)

    def test_mark_move_staleness_propagates(self):
        state = BillboardSweepState(num_advertisers=2, num_billboards=4)
        state.certify_scan(0)
        state.mark_move(advertisers=(0,))
        assert state.own_side_stale(0, 0)
        assert not state.own_side_stale(1, 0)  # advertiser 1 untouched

    def test_changed_candidates_restricts_to_touched(self):
        state = BillboardSweepState(num_advertisers=3, num_billboards=5)
        owners = np.array([0, 1, 2, UNASSIGNED, UNASSIGNED], dtype=np.int64)
        state.certify_scan(0)
        state.mark_move(advertisers=(1,), freed=(3,))
        changed = state.changed_candidates(0, owners, advertiser_id=0)
        # Billboard 1 (owner moved) and billboard 3 (freshly freed) only:
        # billboard 2's owner and free billboard 4 predate the certificate.
        assert changed.tolist() == [1, 3]

    def test_changed_candidates_excludes_self_and_own_set(self):
        state = BillboardSweepState(num_advertisers=2, num_billboards=4)
        owners = np.array([0, 0, 1, UNASSIGNED], dtype=np.int64)
        changed = state.changed_candidates(0, owners, advertiser_id=0)
        assert 0 not in changed.tolist()
        assert 1 not in changed.tolist()  # same advertiser

    def test_release_pass_certificate(self):
        state = BillboardSweepState(num_advertisers=2, num_billboards=4)
        assert not state.release_pass_clean(0)
        state.certify_release_pass(0)
        assert state.release_pass_clean(0)
        state.mark_move(advertisers=(0,))
        assert not state.release_pass_clean(0)


class TestPairSweepState:
    def test_pair_lifecycle(self):
        state = PairSweepState(num_advertisers=3)
        assert not state.pair_clean(0, 1)
        state.certify_pair(0, 1)
        assert state.pair_clean(0, 1)
        assert not state.pair_clean(1, 0)  # direction-specific certificate
        state.mark_exchange(1, 2)
        assert not state.pair_clean(0, 1)
        assert state.pair_clean(0, 1) is False
