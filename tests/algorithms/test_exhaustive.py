"""Tests for the exhaustive oracle solver."""

import pytest

from repro.algorithms.exhaustive import ExhaustiveSolver
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


def test_finds_known_optimum():
    coverage = CoverageIndex.from_coverage_lists([[0, 1], [2, 3]], num_trajectories=4)
    instance = MROAMInstance(
        coverage, [Advertiser(0, 2, 5.0), Advertiser(1, 2, 5.0)], gamma=0.5
    )
    result = ExhaustiveSolver().solve(instance)
    assert result.total_regret == 0.0
    validate_allocation(result.allocation)


def test_example1_optimum_is_zero(example1):
    result = ExhaustiveSolver().solve(example1)
    assert result.total_regret == pytest.approx(0.0)


def test_leaving_billboards_unassigned_can_be_optimal():
    # One advertiser with demand 1 and two billboards: the optimum assigns
    # exactly one and leaves the other free (assigning both adds excess).
    coverage = CoverageIndex.from_coverage_lists([[0], [1]], num_trajectories=2)
    instance = MROAMInstance(coverage, [Advertiser(0, 1, 10.0)], gamma=0.5)
    result = ExhaustiveSolver().solve(instance)
    assert result.total_regret == 0.0
    assert len(result.allocation.billboards_of(0)) == 1


def test_refuses_large_search_space():
    instance = make_random_instance(0, num_billboards=30, num_advertisers=4)
    with pytest.raises(ValueError, match="search space"):
        ExhaustiveSolver(max_plans=1000).solve(instance)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_heuristics_never_beat_the_oracle(seed):
    from repro.algorithms.registry import make_solver

    instance = make_random_instance(
        seed, num_billboards=7, num_trajectories=12, num_advertisers=2
    )
    optimum = ExhaustiveSolver().solve(instance).total_regret
    for method in ("g-order", "g-global", "als", "bls"):
        result = make_solver(method, seed=seed, restarts=2).solve(instance)
        assert result.total_regret >= optimum - 1e-9
