"""Tests for the billboard-driven local search (Algorithm 5)."""

import pytest

from repro.algorithms.bls import (
    _all_exchange_candidates,
    _exchange_screen,
    _exchange_screen_batch,
    _find_improving_exchange,
    _optimistic_regret,
    billboard_driven_local_search,
)
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import delta_exchange_billboards, delta_release
from repro.core.problem import MROAMInstance
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance, random_allocation

import numpy as np


class TestOptimisticRegret:
    def test_zero_when_demand_reachable(self):
        values = _optimistic_regret(
            np.array([10.0]), np.array([5.0]), 0.5, np.array([3.0]), np.array([7.0])
        )
        assert values[0] == 0.0

    def test_unsatisfied_interval(self):
        values = _optimistic_regret(
            np.array([10.0]), np.array([5.0]), 0.5, np.array([1.0]), np.array([3.0])
        )
        # Best is at hi=3: 10(1 − 0.5·3/5) = 7.
        assert values[0] == pytest.approx(7.0)

    def test_excessive_interval(self):
        values = _optimistic_regret(
            np.array([10.0]), np.array([5.0]), 0.5, np.array([7.0]), np.array([9.0])
        )
        # Best is at lo=7: 10·(7−5)/5 = 4.
        assert values[0] == pytest.approx(4.0)

    def test_is_a_true_lower_bound_on_regret(self):
        from repro.core.regret import regret

        rng = np.random.default_rng(0)
        for _ in range(200):
            payment = float(rng.uniform(1, 50))
            demand = float(rng.integers(1, 30))
            gamma = float(rng.uniform(0, 1))
            lo = float(rng.uniform(0, 40))
            hi = lo + float(rng.uniform(0, 20))
            bound = _optimistic_regret(
                np.array([payment]), np.array([demand]), gamma, np.array([lo]), np.array([hi])
            )[0]
            for value in np.linspace(lo, hi, 7):
                assert bound <= regret(payment, demand, float(value), gamma) + 1e-9


class TestExampleFromPaper:
    def test_example3_billboard_swap(self):
        """Example 3 of the paper: whole-set exchange fails but swapping o1
        with o3 reaches zero regret."""
        x = 6
        coverage = CoverageIndex.from_coverage_lists(
            [
                list(range(x - 1)),  # o1: t1..t_{x-1}
                list(range(x - 2)) + [x - 1],  # o2: t1..t_{x-2}, t_x
                [x - 1, x],  # o3: t_x, t_{x+1}
            ],
            num_trajectories=x + 1,
        )
        instance = MROAMInstance(
            coverage,
            [Advertiser(0, x, float(x)), Advertiser(1, x - 1, float(x - 1))],
            gamma=0.5,
        )
        allocation = Allocation(instance)
        allocation.assign(0, 0)  # S1 = {o1, o2}
        allocation.assign(1, 0)
        allocation.assign(2, 1)  # S2 = {o3}
        assert allocation.influence(0) == x
        assert allocation.influence(1) == 2
        result = billboard_driven_local_search(allocation)
        assert result.total_regret() == pytest.approx(0.0)


class TestFindImprovingExchange:
    def test_returns_none_at_local_optimum(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)  # influence 3 < demand 4
        allocation.assign(1, 0)  # now 4 == demand: zero regret for a0
        allocation.assign(2, 1)  # influence 3 == demand: zero regret for a1
        for advertiser_id in (0, 1):
            for billboard in allocation.billboards_of(advertiser_id):
                assert (
                    _find_improving_exchange(allocation, advertiser_id, billboard, 1e-9)
                    is None
                )

    def test_found_partner_really_improves(self):
        for seed in range(8):
            instance = make_random_instance(seed, num_billboards=10, num_advertisers=3)
            allocation = random_allocation(instance, seed + 100)
            for advertiser_id in range(instance.num_advertisers):
                for billboard in sorted(allocation.billboards_of(advertiser_id)):
                    partner = _find_improving_exchange(
                        allocation, advertiser_id, billboard, 1e-9
                    )
                    if partner is not None:
                        delta = delta_exchange_billboards(allocation, billboard, partner)
                        assert delta < 0

    def test_exhaustive_cross_check(self):
        # If the scan says "no improving partner", brute force must agree.
        for seed in range(8):
            instance = make_random_instance(seed + 50, num_billboards=8, num_advertisers=2)
            allocation = random_allocation(instance, seed + 200)
            for advertiser_id in range(instance.num_advertisers):
                for billboard in sorted(allocation.billboards_of(advertiser_id)):
                    partner = _find_improving_exchange(
                        allocation, advertiser_id, billboard, 1e-9
                    )
                    if partner is None:
                        for other in range(instance.num_billboards):
                            if other == billboard:
                                continue
                            if allocation.owner_of(other) == advertiser_id:
                                continue
                            assert (
                                delta_exchange_billboards(allocation, billboard, other)
                                >= -1e-9
                            )

    def test_state_unchanged_by_scan(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(2, 1)
        snapshot = allocation.assignment_map()
        _find_improving_exchange(allocation, 0, 0, 1e-9)
        assert allocation.assignment_map() == snapshot
        validate_allocation(allocation)


class TestExchangeScreenBatch:
    def test_batch_verdicts_match_scalar_screen(self):
        """One batched pass over an advertiser's billboards must return the
        scalar screen's verdict for every one of them (the dirty engine's
        skip proofs rest on this)."""
        for seed in range(6):
            instance = make_random_instance(seed, num_billboards=14, num_advertisers=4)
            allocation = random_allocation(instance, seed + 300)
            rng = np.random.default_rng(seed)
            for advertiser_id in range(instance.num_advertisers):
                owned = sorted(allocation.billboards_of(advertiser_id))
                if not owned:
                    continue
                candidate_sets = []
                for billboard in owned:
                    full = _all_exchange_candidates(
                        allocation.owners, advertiser_id, billboard
                    )
                    # Mix of full, random-subset, and empty candidate sets.
                    choice = rng.integers(3)
                    if choice == 1 and len(full):
                        full = rng.choice(full, size=max(1, len(full) // 2), replace=False)
                        full = np.sort(full)
                    elif choice == 2:
                        full = full[:0]
                    candidate_sets.append(full)
                verdicts = _exchange_screen_batch(
                    allocation, advertiser_id, owned, candidate_sets, 1e-9
                )
                for billboard, ids, verdict in zip(owned, candidate_sets, verdicts):
                    assert verdict == _exchange_screen(
                        allocation, advertiser_id, billboard, ids, 1e-9
                    )

    def test_all_empty_candidate_sets(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        empty = np.empty(0, dtype=np.int64)
        verdicts = _exchange_screen_batch(allocation, 0, [0], [empty], 1e-9)
        assert not verdicts.any()


class TestSearch:
    def test_never_worsens(self, tiny_instance):
        for seed in range(5):
            allocation = random_allocation(tiny_instance, seed)
            before = allocation.total_regret()
            result = billboard_driven_local_search(allocation)
            assert result.total_regret() <= before + 1e-9
            validate_allocation(result)

    def test_local_optimality_no_release_improves(self):
        instance = make_random_instance(17, num_billboards=10, num_advertisers=3)
        allocation = random_allocation(instance, 18)
        result = billboard_driven_local_search(allocation)
        for advertiser_id in range(instance.num_advertisers):
            for billboard in result.billboards_of(advertiser_id):
                assert delta_release(result, billboard) >= -1e-9

    def test_local_optimality_no_exchange_improves(self):
        instance = make_random_instance(19, num_billboards=10, num_advertisers=3)
        allocation = random_allocation(instance, 20)
        result = billboard_driven_local_search(allocation)
        for billboard_a in range(instance.num_billboards):
            if result.owner_of(billboard_a) == UNASSIGNED:
                continue
            for billboard_b in range(instance.num_billboards):
                assert (
                    delta_exchange_billboards(result, billboard_a, billboard_b) >= -1e-9
                )

    def test_max_sweeps_caps_work(self, tiny_instance):
        allocation = random_allocation(tiny_instance, 3)
        stats: dict = {}
        billboard_driven_local_search(allocation, max_sweeps=1, stats=stats)
        assert stats["bls_sweeps"] == 1

    def test_stats_recorded(self, tiny_instance):
        allocation = random_allocation(tiny_instance, 4)
        stats: dict = {}
        billboard_driven_local_search(allocation, stats=stats)
        assert stats["bls_sweeps"] >= 1
