"""Tests for the journaled allocation (rollback, replay, caches)."""

import numpy as np
import pytest

from repro import obs
from repro.billboard.influence import CoverageIndex
from repro.core.allocation import Allocation
from repro.core.journal import JournaledAllocation
from repro.core.problem import MROAMInstance


def small_instance(num_advertisers=3):
    lists = [
        [0, 1, 2],
        [2, 3],
        [4, 5, 6],
        [0, 6],
        [7, 8],
        [1, 4, 9],
    ]
    coverage = CoverageIndex.from_coverage_lists(lists, 10)
    contracts = [(3, 2.0)] * num_advertisers
    return MROAMInstance.from_contracts(coverage, contracts)


def state_fingerprint(allocation):
    return (
        allocation._owner.tobytes(),
        tuple(frozenset(s) for s in allocation._sets),
        allocation._counts.tobytes(),
        allocation._influences.tobytes(),
        frozenset(allocation._unassigned),
    )


class TestRollback:
    def test_rollback_restores_state_byte_identically(self):
        allocation = JournaledAllocation(small_instance())
        allocation.assign(0, 0)
        allocation.assign(1, 1)
        allocation.journal_enable()
        before = state_fingerprint(allocation)
        mark = allocation.journal_mark()
        allocation.assign(2, 0)
        allocation.release(1)
        allocation.assign(3, 2)
        allocation.move(0, 1)
        assert state_fingerprint(allocation) != before
        undone = allocation.rollback_to(mark)
        assert undone == 5  # move decomposes into release + assign
        assert state_fingerprint(allocation) == before
        assert allocation.journal_mark() == mark

    def test_rollback_counter_fires(self):
        allocation = JournaledAllocation(small_instance())
        allocation.journal_enable()
        obs.enable()
        obs.reset()
        try:
            allocation.assign(0, 0)
            allocation.rollback_to(0)
            assert obs.counter_value("journal.rollback") == 1
        finally:
            obs.disable()
            obs.reset()

    def test_nested_marks_roll_back_independently(self):
        allocation = JournaledAllocation(small_instance())
        allocation.journal_enable()
        allocation.assign(0, 0)
        outer = allocation.journal_mark()
        allocation.assign(1, 1)
        inner = allocation.journal_mark()
        allocation.assign(2, 2)
        allocation.rollback_to(inner)
        assert allocation.owner_of(2) == -1
        assert allocation.owner_of(1) == 1
        allocation.rollback_to(outer)
        assert allocation.owner_of(1) == -1
        assert allocation.owner_of(0) == 0


class TestReplay:
    def test_replay_reproduces_recorded_state(self):
        allocation = JournaledAllocation(small_instance())
        allocation.journal_enable()
        mark = allocation.journal_mark()
        allocation.assign(0, 0)
        allocation.assign(4, 1)
        allocation.move(0, 2)
        entries = allocation.journal_entries(mark)
        repaired = state_fingerprint(allocation)
        allocation.rollback_to(mark)
        allocation.replay(entries)
        assert state_fingerprint(allocation) == repaired

    def test_replay_does_not_record(self):
        allocation = JournaledAllocation(small_instance())
        allocation.journal_enable()
        allocation.assign(0, 0)
        entries = allocation.journal_entries()
        allocation.rollback_to(0)
        allocation.replay(entries)
        assert allocation.journal_mark() == 0


class TestRegretCache:
    def test_cached_value_matches_uncached(self):
        instance = small_instance()
        journaled = JournaledAllocation(instance)
        plain = Allocation(instance)
        for billboard_id, advertiser_id in [(0, 0), (1, 1), (5, 2)]:
            journaled.assign(billboard_id, advertiser_id)
            plain.assign(billboard_id, advertiser_id)
        assert journaled.total_regret() == plain.total_regret()
        # Second read comes from the cache and must be the identical float.
        assert journaled.total_regret() == plain.total_regret()

    def test_cache_hits_and_misses_are_counted(self):
        allocation = JournaledAllocation(small_instance())
        obs.enable()
        obs.reset()
        try:
            allocation.total_regret()
            misses = obs.counter_value("quote.cache.miss")
            assert misses == allocation.instance.num_advertisers
            allocation.total_regret()
            assert obs.counter_value("quote.cache.hit") == misses
            allocation.assign(0, 0)
            allocation.total_regret()
            assert obs.counter_value("quote.cache.miss") == misses + 1
        finally:
            obs.disable()
            obs.reset()

    def test_invalidate_regret_drops_entries(self):
        allocation = JournaledAllocation(small_instance())
        allocation.total_regret()
        allocation.invalidate_regret(1)
        assert not allocation._regret_valid[1]
        assert allocation._regret_valid[0]
        allocation.invalidate_regret()
        assert not allocation._regret_valid.any()


class TestGuards:
    def test_exchange_sets_raises_while_recording(self):
        allocation = JournaledAllocation(small_instance())
        allocation.journal_enable()
        with pytest.raises(RuntimeError, match="exchange_sets"):
            allocation.exchange_sets(0, 1)

    def test_copy_assignments_raises_over_uncommitted_entries(self):
        instance = small_instance()
        allocation = JournaledAllocation(instance)
        allocation.journal_enable()
        allocation.assign(0, 0)
        with pytest.raises(RuntimeError, match="uncommitted"):
            allocation.copy_assignments_from(Allocation(instance))


class TestBulkCopy:
    def test_copy_matches_loop_assignment(self):
        instance = small_instance()
        source = Allocation(instance)
        source.assign(0, 0)
        source.assign(2, 1)
        source.assign(4, 2)
        bulk = Allocation(instance)
        bulk.copy_assignments_from(source)
        loop = Allocation(instance)
        for advertiser_id in range(instance.num_advertisers):
            for billboard_id in source.billboards_of(advertiser_id):
                loop.assign(billboard_id, advertiser_id)
        assert state_fingerprint(bulk) == state_fingerprint(loop)

    def test_copy_into_wider_instance_clears_extra_rows(self):
        narrow = small_instance(num_advertisers=2)
        wide = MROAMInstance.from_contracts(narrow.coverage, [(3, 2.0)] * 4)
        source = Allocation(narrow)
        source.assign(1, 0)
        source.assign(3, 1)
        dest = Allocation(wide)
        dest.assign(5, 3)  # must be wiped: the source owns the plan
        dest.copy_assignments_from(source)
        assert dest.billboards_of(0) == frozenset({1})
        assert dest.billboards_of(1) == frozenset({3})
        assert dest.billboards_of(3) == frozenset()
        assert dest.influence(3) == 0
        assert 5 in dest.unassigned

    def test_copy_rejects_foreign_coverage(self):
        instance = small_instance()
        other = small_instance()
        with pytest.raises(ValueError, match="coverage"):
            Allocation(instance).copy_assignments_from(Allocation(other))

    def test_copy_rejects_narrower_destination(self):
        narrow = small_instance(num_advertisers=2)
        wide = MROAMInstance.from_contracts(narrow.coverage, [(3, 2.0)] * 4)
        with pytest.raises(ValueError, match="more advertisers"):
            Allocation(narrow).copy_assignments_from(Allocation(wide))


class TestGrow:
    def test_grow_appends_empty_rows(self):
        narrow = small_instance(num_advertisers=2)
        allocation = JournaledAllocation(narrow)
        allocation.journal_enable()
        allocation.assign(0, 0)
        allocation.assign(2, 1)
        regret_before = allocation.total_regret()
        wide = MROAMInstance.from_contracts(narrow.coverage, [(3, 2.0)] * 4)
        allocation.grow(wide)
        assert allocation.instance is wide
        assert allocation.billboards_of(0) == frozenset({0})
        assert allocation.billboards_of(3) == frozenset()
        assert allocation.influence(2) == 0
        # Two fresh (3, 2.0) contracts at influence 0 add their unsatisfied
        # regret on top of the carried-over rows.
        expected_extra = sum(wide.regret_of(i, 0) for i in (2, 3))
        assert allocation.total_regret() == pytest.approx(
            regret_before + expected_extra
        )

    def test_grow_rejects_shrink_and_foreign_coverage(self):
        wide = small_instance(num_advertisers=3)
        allocation = JournaledAllocation(wide)
        narrow = MROAMInstance.from_contracts(wide.coverage, [(3, 2.0)] * 2)
        with pytest.raises(ValueError):
            allocation.grow(narrow)
        foreign = small_instance(num_advertisers=4)
        with pytest.raises(ValueError):
            allocation.grow(foreign)
