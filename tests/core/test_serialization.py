"""Tests for deployment-plan persistence."""

import pytest

from repro.core.serialization import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    save_allocation,
)
from repro.core.validation import validate_allocation
from repro.datasets import example1_instance, example1_strategy2
from tests.conftest import make_random_instance, random_allocation


def test_round_trip_in_memory(example1):
    plan = example1_strategy2(example1)
    document = allocation_to_dict(plan)
    restored = allocation_from_dict(document, example1)
    assert restored.assignment_map() == plan.assignment_map()
    assert restored.total_regret() == pytest.approx(plan.total_regret())
    validate_allocation(restored)


def test_round_trip_on_disk(tmp_path, example1):
    plan = example1_strategy2(example1)
    path = save_allocation(plan, tmp_path / "plans" / "strategy2.json")
    restored = load_allocation(path, example1)
    assert restored.assignment_map() == plan.assignment_map()


def test_random_plans_round_trip(tmp_path):
    for seed in range(4):
        instance = make_random_instance(seed)
        plan = random_allocation(instance, seed + 1)
        path = save_allocation(plan, tmp_path / f"plan{seed}.json")
        restored = load_allocation(path, instance)
        assert restored.assignment_map() == plan.assignment_map()


def test_fingerprint_mismatch_rejected(example1):
    plan = example1_strategy2(example1)
    document = allocation_to_dict(plan)
    other = example1_instance(gamma=0.25)  # different γ
    with pytest.raises(ValueError, match="different instance"):
        allocation_from_dict(document, other)


def test_unknown_version_rejected(example1):
    document = allocation_to_dict(example1_strategy2(example1))
    document["format_version"] = 99
    with pytest.raises(ValueError, match="format version"):
        allocation_from_dict(document, example1)


def test_tampered_assignment_rejected(example1):
    document = allocation_to_dict(example1_strategy2(example1))
    document["assignment"]["0"] = [0]  # drops o3 from a1's set
    with pytest.raises(ValueError, match="regret"):
        allocation_from_dict(document, example1)


def test_out_of_range_advertiser_rejected(example1):
    document = allocation_to_dict(example1_strategy2(example1))
    document["assignment"]["7"] = [0]
    with pytest.raises(ValueError, match="out of range"):
        allocation_from_dict(document, example1)
