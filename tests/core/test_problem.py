"""Tests for the MROAM problem instance."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance


def simple_coverage() -> CoverageIndex:
    return CoverageIndex.from_coverage_lists([[0, 1], [1, 2], [3]], num_trajectories=4)


class TestConstruction:
    def test_rejects_zero_demand_advertiser_like(self):
        """Eq. 1 divides by demand, so a zero must fail loudly at the
        boundary — even from advertiser-like objects that bypass
        ``Advertiser``'s own validation."""
        stub = SimpleNamespace(advertiser_id=0, demand=0.0, payment=5.0)
        with pytest.raises(ValueError, match="demands must be positive"):
            MROAMInstance(simple_coverage(), [stub])

    def test_rejects_negative_demand_and_names_the_id(self):
        good = Advertiser(0, 2, 4.0)
        bad = SimpleNamespace(advertiser_id=1, demand=-3.0, payment=5.0)
        with pytest.raises(ValueError, match=r"ids \[1\]"):
            MROAMInstance(simple_coverage(), [good, bad])

    def test_regret_values_guard(self):
        from repro.algorithms._marginal import regret_values

        with pytest.raises(ValueError, match="demand must be positive"):
            regret_values(5.0, 0.0, 0.5, np.array([1.0, 2.0]))

    def test_hot_path_variants_skip_the_guard(self):
        """The per-move internals (`_regret_values_unchecked`,
        `_optimistic_regret`) intentionally carry no demand validation — it
        lives at instance construction and in the public ``regret_values``
        only.  Both must agree with the checked entry point on valid input."""
        from repro.algorithms._marginal import _regret_values_unchecked, regret_values
        from repro.algorithms.bls import _optimistic_regret

        achieved = np.array([0.0, 1.0, 2.0, 5.0])
        assert np.array_equal(
            _regret_values_unchecked(5.0, 2.0, 0.5, achieved),
            regret_values(5.0, 2.0, 0.5, achieved),
        )
        # No raise on a degenerate demand: the guard is the caller's job.
        with np.errstate(divide="ignore", invalid="ignore"):
            _optimistic_regret(
                np.array([5.0]), np.array([0.0]), 0.5, np.array([1.0]), np.array([2.0])
            )

    def test_requires_advertisers(self):
        with pytest.raises(ValueError, match="advertiser"):
            MROAMInstance(simple_coverage(), [])

    def test_requires_dense_ids(self):
        with pytest.raises(ValueError, match="dense"):
            MROAMInstance(simple_coverage(), [Advertiser(1, 2, 1.0)])

    def test_requires_valid_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            MROAMInstance(simple_coverage(), [Advertiser(0, 2, 1.0)], gamma=1.5)

    def test_from_contracts(self):
        instance = MROAMInstance.from_contracts(simple_coverage(), [(2, 4.0), (3, 6.0)])
        assert instance.num_advertisers == 2
        assert instance.advertisers[1].demand == 3
        assert instance.payments.tolist() == [4.0, 6.0]


class TestDerivedQuantities:
    def make(self) -> MROAMInstance:
        return MROAMInstance.from_contracts(
            simple_coverage(), [(2, 4.0), (3, 6.0)], gamma=0.5
        )

    def test_counts(self):
        instance = self.make()
        assert instance.num_billboards == 3
        assert instance.num_advertisers == 2

    def test_global_demand_and_alpha(self):
        instance = self.make()
        assert instance.global_demand == 5.0
        # supply = 2 + 2 + 1 = 5
        assert instance.demand_supply_ratio == pytest.approx(1.0)

    def test_total_payment(self):
        assert self.make().total_payment() == 10.0

    def test_regret_of_delegates_to_eq1(self):
        instance = self.make()
        assert instance.regret_of(0, 2) == 0.0
        assert instance.regret_of(0, 1) == pytest.approx(4.0 * (1 - 0.5 * 0.5))
        assert instance.regret_of(0, 4) == pytest.approx(4.0)

    def test_breakdown_of(self):
        instance = self.make()
        breakdown = instance.breakdown_of(1, 2)
        assert breakdown.unsatisfied_penalty > 0
        assert breakdown.excessive_influence == 0.0

    def test_dual_of(self):
        instance = self.make()
        assert instance.dual_of(0, 2) == pytest.approx(4.0)

    def test_describe_mentions_sizes(self):
        text = self.make().describe()
        assert "|U|=3" in text
        assert "|A|=2" in text
