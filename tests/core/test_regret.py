"""Tests for the Eq. 1 regret model and its Eq. 2 dual."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.regret import RegretBreakdown, dual_objective, regret, regret_breakdown

payments = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
demands = st.floats(min_value=0.5, max_value=1e6, allow_nan=False)
achieveds = st.floats(min_value=0.0, max_value=2e6, allow_nan=False)
gammas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestRegret:
    def test_exact_satisfaction_is_zero(self):
        assert regret(payment=10.0, demand=5, achieved=5, gamma=0.5) == 0.0

    def test_unsatisfied_branch(self):
        # L(1 − γ v / I) = 20 (1 − 0.5·7/8) = 11.25 — the a3 value of Table 3.
        assert regret(20.0, 8, 7, 0.5) == pytest.approx(11.25)

    def test_excessive_branch(self):
        # L (v − I)/I = 10 · 1/5 = 2 — the a1 value of Table 3.
        assert regret(10.0, 5, 6, 0.5) == pytest.approx(2.0)

    def test_gamma_zero_all_or_nothing(self):
        assert regret(10.0, 5, 4, gamma=0.0) == pytest.approx(10.0)

    def test_gamma_one_pro_rata(self):
        assert regret(10.0, 5, 4, gamma=1.0) == pytest.approx(10.0 * (1 - 4 / 5))

    def test_zero_achieved(self):
        assert regret(10.0, 5, 0, gamma=0.5) == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(payment=1.0, demand=0, achieved=0, gamma=0.5), "demand"),
            (dict(payment=-1.0, demand=5, achieved=0, gamma=0.5), "payment"),
            (dict(payment=1.0, demand=5, achieved=0, gamma=2.0), "gamma"),
            (dict(payment=1.0, demand=5, achieved=-1, gamma=0.5), "achieved"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            regret(**kwargs)

    @given(payments, demands, achieveds, gammas)
    def test_regret_nonnegative_when_gamma_le_one(self, payment, demand, achieved, gamma):
        assert regret(payment, demand, achieved, gamma) >= -1e-9

    @given(payments, demands, gammas, st.floats(min_value=0.0, max_value=0.999))
    def test_unsatisfied_regret_decreases_with_achievement(self, payment, demand, gamma, frac):
        low = regret(payment, demand, frac * demand * 0.5, gamma)
        high = regret(payment, demand, frac * demand, gamma)
        assert high <= low + 1e-9

    @given(payments, demands, st.floats(min_value=1.0, max_value=3.0))
    def test_excessive_regret_increases_with_overshoot(self, payment, demand, factor):
        smaller = regret(payment, demand, demand * factor, 0.5)
        larger = regret(payment, demand, demand * (factor + 0.5), 0.5)
        assert larger >= smaller - 1e-9


class TestDual:
    def test_dual_full_payment_at_exact_satisfaction(self):
        assert dual_objective(10.0, 5, 5) == pytest.approx(10.0)

    def test_dual_zero_with_no_influence(self):
        assert dual_objective(10.0, 5, 0) == 0.0

    @given(payments, demands, achieveds)
    def test_regret_dual_identity_with_gamma_one(self, payment, demand, achieved):
        # R(S) + R'(S) = L for any achieved influence when γ = 1.
        total = regret(payment, demand, achieved, gamma=1.0) + dual_objective(
            payment, demand, achieved
        )
        assert total == pytest.approx(payment, rel=1e-9, abs=1e-6)

    @given(payments, demands, achieveds)
    def test_zero_regret_iff_full_dual(self, payment, demand, achieved):
        r = regret(payment, demand, achieved, gamma=1.0)
        r_dual = dual_objective(payment, demand, achieved)
        if payment > 0:
            tolerance = 1e-9 * max(payment, 1.0)
            assert (abs(r) < tolerance) == (abs(r_dual - payment) < tolerance)


class TestBreakdown:
    def test_unsatisfied_component(self):
        breakdown = regret_breakdown(20.0, 8, 7, 0.5)
        assert breakdown.unsatisfied_penalty == pytest.approx(11.25)
        assert breakdown.excessive_influence == 0.0
        assert breakdown.unsatisfied_share == pytest.approx(1.0)

    def test_excessive_component(self):
        breakdown = regret_breakdown(10.0, 5, 6, 0.5)
        assert breakdown.excessive_influence == pytest.approx(2.0)
        assert breakdown.unsatisfied_penalty == 0.0
        assert breakdown.excessive_share == pytest.approx(1.0)

    def test_addition(self):
        total = regret_breakdown(20.0, 8, 7, 0.5) + regret_breakdown(10.0, 5, 6, 0.5)
        assert total.total == pytest.approx(13.25)
        assert total.unsatisfied_penalty == pytest.approx(11.25)
        assert total.excessive_influence == pytest.approx(2.0)

    def test_zero(self):
        zero = RegretBreakdown.zero()
        assert zero.total == 0.0
        assert zero.unsatisfied_share == 0.0
        assert zero.excessive_share == 0.0

    @given(payments, demands, achieveds, gammas)
    def test_components_sum_to_total(self, payment, demand, achieved, gamma):
        breakdown = regret_breakdown(payment, demand, achieved, gamma)
        assert breakdown.total == pytest.approx(
            breakdown.unsatisfied_penalty + breakdown.excessive_influence
        )
