"""Tests that the invariant checker actually catches corruption."""

import pytest

from repro.core.allocation import Allocation
from repro.core.validation import AllocationInvariantError, validate_allocation


def test_valid_allocation_passes(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation.assign(2, 1)
    validate_allocation(allocation)


def test_detects_corrupted_influence(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation._influences[0] += 1  # simulate drift
    with pytest.raises(AllocationInvariantError, match="influence"):
        validate_allocation(allocation)


def test_detects_corrupted_counts(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation._counts[0][6] += 1
    with pytest.raises(AllocationInvariantError, match="counters"):
        validate_allocation(allocation)


def test_detects_owner_set_mismatch(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation._owner[0] = 1
    with pytest.raises(AllocationInvariantError):
        validate_allocation(allocation)


def test_detects_duplicate_membership(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation._sets[1].add(0)
    with pytest.raises(AllocationInvariantError, match="multiple"):
        validate_allocation(allocation)


def test_detects_unassigned_pool_drift(tiny_instance):
    allocation = Allocation(tiny_instance)
    allocation.assign(0, 0)
    allocation._unassigned.add(0)
    with pytest.raises(AllocationInvariantError, match="unassigned"):
        validate_allocation(allocation)
