"""Tests for side-effect-free move pricing.

Every delta function is checked against the ground truth: apply the move on a
clone, recompute total regret, compare.  The hypothesis case randomizes the
instance and the starting allocation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.moves import (
    delta_assign,
    delta_exchange_billboards,
    delta_exchange_sets,
    delta_move,
    delta_release,
)
from repro.utils.rng import as_generator
from tests.conftest import make_random_instance, random_allocation


def applied_regret_change(allocation: Allocation, apply) -> float:
    before = allocation.total_regret()
    clone = allocation.clone()
    apply(clone)
    return clone.total_regret() - before


class TestDeltaAssign:
    def test_matches_apply(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        predicted = delta_assign(allocation, 2, 1)
        actual = applied_regret_change(allocation, lambda a: a.assign(2, 1))
        assert predicted == pytest.approx(actual)

    def test_rejects_assigned_billboard(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        with pytest.raises(ValueError, match="not unassigned"):
            delta_assign(allocation, 0, 1)

    def test_no_mutation(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        delta_assign(allocation, 0, 0)
        assert allocation.owner_of(0) == UNASSIGNED


class TestDeltaRelease:
    def test_matches_apply(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        predicted = delta_release(allocation, 1)
        actual = applied_regret_change(allocation, lambda a: a.release(1))
        assert predicted == pytest.approx(actual)

    def test_rejects_unassigned(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        with pytest.raises(ValueError, match="not assigned"):
            delta_release(allocation, 0)


class TestDeltaExchangeBillboards:
    def test_two_owners(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(2, 1)
        predicted = delta_exchange_billboards(allocation, 0, 2)
        actual = applied_regret_change(allocation, lambda a: a.exchange_billboards(0, 2))
        assert predicted == pytest.approx(actual)

    def test_owner_and_free(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        predicted = delta_exchange_billboards(allocation, 0, 3)
        actual = applied_regret_change(allocation, lambda a: a.exchange_billboards(0, 3))
        assert predicted == pytest.approx(actual)

    def test_same_owner_zero(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        assert delta_exchange_billboards(allocation, 0, 1) == 0.0

    def test_both_free_zero(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        assert delta_exchange_billboards(allocation, 0, 1) == 0.0

    def test_overlapping_coverage_swap_is_exact(self, tiny_instance):
        # o0 {0,1,2} and o1 {2,3} overlap on trajectory 2; the swap delta must
        # account for the shared trajectory exactly.
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 1)
        predicted = delta_exchange_billboards(allocation, 0, 1)
        actual = applied_regret_change(allocation, lambda a: a.exchange_billboards(0, 1))
        assert predicted == pytest.approx(actual)


class TestDeltaExchangeSets:
    def test_matches_apply(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        allocation.assign(2, 1)
        predicted = delta_exchange_sets(allocation, 0, 1)
        actual = applied_regret_change(allocation, lambda a: a.exchange_sets(0, 1))
        assert predicted == pytest.approx(actual)

    def test_self_exchange_zero(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        assert delta_exchange_sets(allocation, 0, 0) == 0.0


class TestDeltaMove:
    def test_from_owner_to_other(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        predicted = delta_move(allocation, 0, 1)
        actual = applied_regret_change(allocation, lambda a: a.move(0, 1))
        assert predicted == pytest.approx(actual)

    def test_from_free(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        predicted = delta_move(allocation, 0, 1)
        actual = applied_regret_change(allocation, lambda a: a.assign(0, 1))
        assert predicted == pytest.approx(actual)

    def test_move_to_current_owner_zero(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        assert delta_move(allocation, 0, 0) == 0.0


class TestDeltaProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_all_deltas_match_apply_on_random_states(self, seed):
        instance = make_random_instance(seed, num_billboards=10, num_advertisers=3)
        allocation = random_allocation(instance, seed + 1)
        rng = as_generator(seed + 2)

        # Exchange of two random billboards.
        a, b = rng.integers(0, instance.num_billboards, size=2)
        predicted = delta_exchange_billboards(allocation, int(a), int(b))
        actual = applied_regret_change(
            allocation, lambda al: al.exchange_billboards(int(a), int(b))
        )
        assert predicted == pytest.approx(actual, abs=1e-9)

        # Exchange of two advertiser sets.
        i, j = rng.integers(0, instance.num_advertisers, size=2)
        predicted = delta_exchange_sets(allocation, int(i), int(j))
        actual = applied_regret_change(allocation, lambda al: al.exchange_sets(int(i), int(j)))
        assert predicted == pytest.approx(actual, abs=1e-9)

        # Release of a random assigned billboard, if any.
        assigned = [
            o for o in range(instance.num_billboards) if allocation.owner_of(o) != UNASSIGNED
        ]
        if assigned:
            billboard = int(rng.choice(assigned))
            predicted = delta_release(allocation, billboard)
            actual = applied_regret_change(allocation, lambda al: al.release(billboard))
            assert predicted == pytest.approx(actual, abs=1e-9)
