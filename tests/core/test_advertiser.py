"""Tests for advertiser campaign proposals."""

import pytest

from repro.core.advertiser import Advertiser


def test_budget_effectiveness():
    advertiser = Advertiser(0, demand=5, payment=10.0)
    assert advertiser.budget_effectiveness == pytest.approx(2.0)


def test_rejects_nonpositive_demand():
    with pytest.raises(ValueError, match="demand"):
        Advertiser(0, demand=0, payment=1.0)


def test_rejects_negative_payment():
    with pytest.raises(ValueError, match="payment"):
        Advertiser(0, demand=1, payment=-1.0)


def test_zero_payment_allowed():
    advertiser = Advertiser(0, demand=1, payment=0.0)
    assert advertiser.budget_effectiveness == 0.0


def test_frozen():
    advertiser = Advertiser(0, demand=1, payment=1.0)
    with pytest.raises(AttributeError):
        advertiser.demand = 2
