"""Tests for the incremental allocation state.

The hypothesis property test drives random move sequences and checks, after
every step, that the incremental counters and influence scalars agree with a
from-scratch recomputation (via :func:`validate_allocation`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import UNASSIGNED, Allocation
from repro.core.validation import validate_allocation
from tests.conftest import make_random_instance


class TestBasicMoves:
    def test_initial_state(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        assert allocation.influence(0) == 0
        assert allocation.influence(1) == 0
        assert len(allocation.unassigned) == 5
        assert allocation.owner_of(0) == UNASSIGNED

    def test_assign_updates_influence(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)  # o0 covers {0,1,2}
        assert allocation.influence(0) == 3
        allocation.assign(1, 0)  # o1 covers {2,3}: only 3 is new
        assert allocation.influence(0) == 4

    def test_assign_twice_rejected(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        with pytest.raises(ValueError, match="already owned"):
            allocation.assign(0, 1)

    def test_release(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        owner = allocation.release(0)
        assert owner == 0
        assert allocation.influence(0) == 2  # {2, 3}
        assert 0 in allocation.unassigned

    def test_release_unassigned_rejected(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        with pytest.raises(ValueError, match="not assigned"):
            allocation.release(0)

    def test_release_all(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(2, 0)
        released = allocation.release_all(0)
        assert released == [0, 2]
        assert allocation.influence(0) == 0
        assert allocation.billboards_of(0) == frozenset()

    def test_move(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.move(0, 1)
        assert allocation.owner_of(0) == 1
        assert allocation.influence(0) == 0
        assert allocation.influence(1) == 3

    def test_satisfaction(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        assert allocation.unsatisfied_advertisers() == [0, 1]
        allocation.assign(0, 1)  # influence 3 == demand 3
        assert allocation.is_satisfied(1)
        assert allocation.unsatisfied_advertisers() == [0]


class TestExchanges:
    def test_exchange_billboards_between_advertisers(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(2, 1)
        allocation.exchange_billboards(0, 2)
        assert allocation.owner_of(0) == 1
        assert allocation.owner_of(2) == 0
        assert allocation.influence(0) == 3  # o2 covers {3,4,5}
        assert allocation.influence(1) == 3  # o0 covers {0,1,2}
        validate_allocation(allocation)

    def test_exchange_with_unassigned(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.exchange_billboards(0, 3)
        assert allocation.owner_of(0) == UNASSIGNED
        assert allocation.owner_of(3) == 0
        assert allocation.influence(0) == 2  # o3 covers {0,5}
        validate_allocation(allocation)

    def test_exchange_same_owner_is_noop(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        before = allocation.influence(0)
        allocation.exchange_billboards(0, 1)
        assert allocation.influence(0) == before
        assert allocation.owner_of(0) == 0

    def test_exchange_sets(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        allocation.assign(2, 1)
        influence_0, influence_1 = allocation.influence(0), allocation.influence(1)
        allocation.exchange_sets(0, 1)
        assert allocation.influence(0) == influence_1
        assert allocation.influence(1) == influence_0
        assert allocation.billboards_of(0) == frozenset({2})
        assert allocation.billboards_of(1) == frozenset({0, 1})
        validate_allocation(allocation)

    def test_exchange_sets_self_noop(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.exchange_sets(0, 0)
        assert allocation.owner_of(0) == 0


class TestRegretAccounting:
    def test_total_regret_matches_manual(self, example1):
        from repro.datasets import example1_strategy1

        allocation = example1_strategy1(example1)
        assert allocation.total_regret() == pytest.approx(13.25)

    def test_breakdown_components(self, example1):
        from repro.datasets import example1_strategy1

        breakdown = example1_strategy1(example1).breakdown()
        assert breakdown.unsatisfied_penalty == pytest.approx(11.25)
        assert breakdown.excessive_influence == pytest.approx(2.0)

    def test_total_dual(self, example1):
        from repro.datasets import example1_strategy2

        allocation = example1_strategy2(example1)
        # Zero regret ⇒ every advertiser pays in full under the dual.
        assert allocation.total_dual() == pytest.approx(example1.total_payment())


class TestDeltas:
    def test_delta_add_matches_apply(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        predicted = allocation.influence_delta_add(0, 1)
        before = allocation.influence(0)
        allocation.assign(1, 0)
        assert allocation.influence(0) == before + predicted

    def test_delta_remove_matches_apply(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        predicted = allocation.influence_delta_remove(0, 1)
        before = allocation.influence(0)
        allocation.release(1)
        assert allocation.influence(0) == before - predicted


class TestCloneAndViews:
    def test_clone_is_independent(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 0)
        copy = allocation.clone()
        copy.assign(1, 1)
        assert allocation.owner_of(1) == UNASSIGNED
        assert copy.owner_of(1) == 1
        validate_allocation(allocation)
        validate_allocation(copy)

    def test_read_only_views(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        with pytest.raises(ValueError):
            allocation.influences[0] = 5
        with pytest.raises(ValueError):
            allocation.owners[0] = 1
        with pytest.raises(ValueError):
            allocation.counts_row(0)[0] = 1

    def test_assignment_map(self, tiny_instance):
        allocation = Allocation(tiny_instance)
        allocation.assign(0, 1)
        assert allocation.assignment_map() == {0: frozenset(), 1: frozenset({0})}

    def test_repr_mentions_regret(self, tiny_instance):
        assert "regret" in repr(Allocation(tiny_instance))


class TestRandomMoveSequences:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        moves=st.lists(st.integers(0, 3), min_size=1, max_size=40),
    )
    def test_invariants_hold_under_random_moves(self, seed, moves):
        instance = make_random_instance(seed)
        rng = np.random.default_rng(seed)
        allocation = Allocation(instance)
        for move in moves:
            if move == 0 and allocation.unassigned:  # assign
                billboard = int(rng.choice(sorted(allocation.unassigned)))
                allocation.assign(billboard, int(rng.integers(instance.num_advertisers)))
            elif move == 1:  # release
                assigned = [
                    b
                    for b in range(instance.num_billboards)
                    if allocation.owner_of(b) != UNASSIGNED
                ]
                if assigned:
                    allocation.release(int(rng.choice(assigned)))
            elif move == 2:  # exchange two billboards
                a, b = rng.integers(0, instance.num_billboards, size=2)
                allocation.exchange_billboards(int(a), int(b))
            else:  # exchange two advertiser sets
                i, j = rng.integers(0, instance.num_advertisers, size=2)
                allocation.exchange_sets(int(i), int(j))
        validate_allocation(allocation)
