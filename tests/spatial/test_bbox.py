"""Tests for axis-aligned bounding boxes."""

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point


class TestConstruction:
    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError, match="degenerate"):
            BoundingBox(10.0, 0.0, 0.0, 5.0)

    def test_zero_area_box_is_allowed(self):
        box = BoundingBox(1.0, 2.0, 1.0, 2.0)
        assert box.width == 0.0
        assert box.height == 0.0

    def test_from_points(self):
        points = np.array([[0.0, 5.0], [2.0, -1.0], [1.0, 3.0]])
        box = BoundingBox.from_points(points)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, -1.0, 2.0, 5.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError, match="zero points"):
            BoundingBox.from_points(np.zeros((0, 2)))


class TestQueries:
    box = BoundingBox(0.0, 0.0, 10.0, 20.0)

    def test_dimensions(self):
        assert self.box.width == 10.0
        assert self.box.height == 20.0

    def test_center(self):
        assert self.box.center == Point(5.0, 10.0)

    def test_contains_interior_and_boundary(self):
        assert self.box.contains(Point(5.0, 5.0))
        assert self.box.contains(Point(0.0, 0.0))
        assert self.box.contains(Point(10.0, 20.0))

    def test_does_not_contain_exterior(self):
        assert not self.box.contains(Point(-0.1, 5.0))
        assert not self.box.contains(Point(5.0, 20.1))

    def test_expanded(self):
        grown = self.box.expanded(5.0)
        assert grown.min_x == -5.0
        assert grown.max_y == 25.0
        assert grown.contains(Point(-3.0, 22.0))

    def test_clamp_inside_is_identity(self):
        point = Point(3.0, 4.0)
        assert self.box.clamp(point) == point

    def test_clamp_outside_projects_onto_boundary(self):
        assert self.box.clamp(Point(-5.0, 30.0)) == Point(0.0, 20.0)
        assert self.box.clamp(Point(15.0, -3.0)) == Point(10.0, 0.0)
