"""Unit and property tests for the geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import (
    Point,
    distance,
    interpolate_path,
    pairwise_distances,
    path_length,
)

finite_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance_to_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_function_matches_method(self):
        a, b = Point(1.0, 2.0), Point(-3.0, 7.0)
        assert distance(a, b) == pytest.approx(a.distance_to(b))

    def test_as_array_round_trip(self):
        point = Point(1.5, -2.5)
        assert np.allclose(point.as_array(), [1.5, -2.5])

    def test_translated(self):
        assert Point(1.0, 1.0).translated(2.0, -3.0) == Point(3.0, -2.0)

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0.0, 0.0).x = 1.0

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite_coord, finite_coord)
    def test_distance_to_self_is_zero(self, x, y):
        assert Point(x, y).distance_to(Point(x, y)) == 0.0


class TestPairwiseDistances:
    def test_matches_scalar_distance(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = np.array([[3.0, 4.0]])
        matrix = pairwise_distances(points, centers)
        assert matrix.shape == (2, 1)
        assert matrix[0, 0] == pytest.approx(5.0)
        assert matrix[1, 0] == pytest.approx(math.hypot(2.0, 3.0))

    def test_empty_centers(self):
        matrix = pairwise_distances(np.zeros((3, 2)), np.zeros((0, 2)))
        assert matrix.shape == (3, 0)


class TestPathLength:
    def test_single_point_has_zero_length(self):
        assert path_length(np.array([[1.0, 2.0]])) == 0.0

    def test_straight_segment(self):
        assert path_length(np.array([[0.0, 0.0], [3.0, 4.0]])) == pytest.approx(5.0)

    def test_l_shape(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 5.0]])
        assert path_length(points) == pytest.approx(7.0)

    def test_empty(self):
        assert path_length(np.zeros((0, 2))) == 0.0


class TestInterpolatePath:
    def test_endpoints_preserved(self):
        waypoints = np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 50.0]])
        dense = interpolate_path(waypoints, spacing=10.0)
        assert np.allclose(dense[0], waypoints[0])
        assert np.allclose(dense[-1], waypoints[-1])

    def test_spacing_roughly_respected(self):
        waypoints = np.array([[0.0, 0.0], [1000.0, 0.0]])
        dense = interpolate_path(waypoints, spacing=100.0)
        gaps = np.sqrt(np.sum(np.diff(dense, axis=0) ** 2, axis=1))
        assert gaps.max() <= 100.0 + 1e-9

    def test_length_preserved_for_straight_line(self):
        waypoints = np.array([[0.0, 0.0], [777.0, 0.0]])
        dense = interpolate_path(waypoints, spacing=50.0)
        assert path_length(dense) == pytest.approx(777.0)

    def test_degenerate_zero_length_path(self):
        waypoints = np.array([[5.0, 5.0], [5.0, 5.0]])
        dense = interpolate_path(waypoints, spacing=10.0)
        assert len(dense) == 1

    def test_single_waypoint(self):
        waypoints = np.array([[1.0, 2.0]])
        assert np.allclose(interpolate_path(waypoints, 10.0), waypoints)

    def test_empty_input(self):
        assert interpolate_path(np.zeros((0, 2)), 10.0).shape == (0, 2)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            interpolate_path(np.array([[0.0, 0.0], [1.0, 1.0]]), 0.0)

    @given(st.integers(min_value=2, max_value=8), st.floats(min_value=5.0, max_value=500.0))
    def test_samples_lie_on_polyline_for_monotone_x(self, n, spacing):
        # A polyline that is monotone in x: every resampled point must have a
        # y value interpolable from the segment containing its x.
        xs = np.cumsum(np.full(n, 100.0))
        ys = np.zeros(n)
        waypoints = np.column_stack([xs, ys])
        dense = interpolate_path(waypoints, spacing)
        assert np.allclose(dense[:, 1], 0.0)
        assert dense[:, 0].min() >= xs[0] - 1e-9
        assert dense[:, 0].max() <= xs[-1] + 1e-9
