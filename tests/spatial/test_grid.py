"""Tests for the uniform grid index, including a brute-force property check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import pairwise_distances
from repro.spatial.grid import GridIndex
from repro.utils.rng import as_generator


def brute_force_radius(points: np.ndarray, x: float, y: float, radius: float) -> np.ndarray:
    distances = pairwise_distances(points, np.array([[x, y]]))[:, 0]
    return np.nonzero(distances <= radius)[0]


class TestGridIndexBasics:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(np.zeros((1, 2)), cell_size=0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            GridIndex(np.zeros((3, 3)), cell_size=1.0)

    def test_empty_index(self):
        grid = GridIndex(np.zeros((0, 2)), cell_size=1.0)
        assert len(grid) == 0
        assert len(grid.query_radius(0.0, 0.0, 10.0)) == 0
        assert len(grid.query_radius_bulk(np.array([[0.0, 0.0]]), 10.0)) == 0

    def test_single_point_hit_and_miss(self):
        grid = GridIndex(np.array([[5.0, 5.0]]), cell_size=2.0)
        assert grid.query_radius(5.0, 5.0, 1.0).tolist() == [0]
        assert grid.query_radius(9.0, 9.0, 1.0).tolist() == []

    def test_boundary_point_included(self):
        grid = GridIndex(np.array([[0.0, 0.0]]), cell_size=1.0)
        assert grid.query_radius(3.0, 4.0, 5.0).tolist() == [0]

    def test_query_reaches_beyond_one_cell(self):
        # Radius larger than the cell size must still find far points.
        grid = GridIndex(np.array([[0.0, 0.0], [9.0, 0.0]]), cell_size=1.0)
        assert grid.query_radius(0.0, 0.0, 10.0).tolist() == [0, 1]

    def test_bulk_deduplicates(self):
        grid = GridIndex(np.array([[0.0, 0.0]]), cell_size=1.0)
        queries = np.array([[0.1, 0.0], [0.0, 0.1], [-0.1, 0.0]])
        assert grid.query_radius_bulk(queries, 1.0).tolist() == [0]


class TestAgainstBruteForce:
    def test_random_points_match_brute_force(self):
        rng = as_generator(42)
        points = rng.uniform(0.0, 1000.0, size=(300, 2))
        grid = GridIndex(points, cell_size=50.0)
        for _ in range(50):
            x, y = rng.uniform(0.0, 1000.0, size=2)
            radius = float(rng.uniform(1.0, 200.0))
            expected = brute_force_radius(points, x, y, radius)
            actual = grid.query_radius(x, y, radius)
            assert actual.tolist() == expected.tolist()

    def test_bulk_matches_union_of_single_queries(self):
        rng = as_generator(7)
        points = rng.uniform(0.0, 500.0, size=(100, 2))
        grid = GridIndex(points, cell_size=30.0)
        queries = rng.uniform(0.0, 500.0, size=(20, 2))
        singles = set()
        for x, y in queries:
            singles.update(grid.query_radius(float(x), float(y), 60.0).tolist())
        bulk = grid.query_radius_bulk(queries, 60.0)
        assert set(bulk.tolist()) == singles
        assert np.all(np.diff(bulk) > 0)  # sorted, unique

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cell=st.floats(min_value=5.0, max_value=200.0),
        radius=st.floats(min_value=0.5, max_value=300.0),
    )
    def test_property_grid_equals_brute_force(self, seed, cell, radius):
        rng = as_generator(seed)
        points = rng.uniform(-200.0, 200.0, size=(60, 2))
        grid = GridIndex(points, cell_size=cell)
        x, y = rng.uniform(-250.0, 250.0, size=2)
        expected = brute_force_radius(points, float(x), float(y), radius)
        actual = grid.query_radius(float(x), float(y), radius)
        assert actual.tolist() == expected.tolist()


class TestJoinRadius:
    """The batched cell-bucket join behind ``query_radius_bulk`` and coverage."""

    def brute_force_pairs(self, points, queries, radius):
        distances = pairwise_distances(queries, points)
        return set(zip(*np.nonzero(distances <= radius)))

    def test_empty_inputs(self):
        grid = GridIndex(np.zeros((0, 2)), cell_size=1.0)
        query_ids, point_ids = grid.join_radius(np.array([[0.0, 0.0]]), 5.0)
        assert len(query_ids) == len(point_ids) == 0
        grid = GridIndex(np.array([[0.0, 0.0]]), cell_size=1.0)
        query_ids, point_ids = grid.join_radius(np.empty((0, 2)), 5.0)
        assert len(query_ids) == len(point_ids) == 0

    def test_rejects_bad_query_shape(self):
        grid = GridIndex(np.array([[0.0, 0.0]]), cell_size=1.0)
        with pytest.raises(ValueError, match="shape"):
            grid.join_radius(np.zeros(3), 1.0)

    def test_pairs_unique(self):
        rng = as_generator(3)
        points = rng.uniform(0.0, 100.0, size=(80, 2))
        grid = GridIndex(points, cell_size=10.0)
        queries = rng.uniform(0.0, 100.0, size=(25, 2))
        query_ids, point_ids = grid.join_radius(queries, 25.0)
        pairs = list(zip(query_ids.tolist(), point_ids.tolist()))
        assert len(pairs) == len(set(pairs))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cell=st.floats(min_value=5.0, max_value=150.0),
        radius=st.floats(min_value=0.5, max_value=250.0),
    )
    def test_property_join_equals_brute_force(self, seed, cell, radius):
        rng = as_generator(seed)
        points = rng.uniform(-200.0, 200.0, size=(50, 2))
        queries = rng.uniform(-250.0, 250.0, size=(15, 2))
        grid = GridIndex(points, cell_size=cell)
        query_ids, point_ids = grid.join_radius(queries, radius)
        actual = set(zip(query_ids.tolist(), point_ids.tolist()))
        assert actual == self.brute_force_pairs(points, queries, radius)

    def test_bulk_microbenchmark_matches_per_query_unions(self):
        """The vectorized bulk path returns exactly the per-query union —
        timed on a workload large enough to exercise the batched join."""
        import time

        rng = as_generator(17)
        points = rng.uniform(0.0, 2_000.0, size=(3_000, 2))
        queries = rng.uniform(0.0, 2_000.0, size=(400, 2))
        radius = 80.0
        grid = GridIndex(points, cell_size=radius)

        started = time.perf_counter()
        singles = set()
        for x, y in queries:
            singles.update(grid.query_radius(float(x), float(y), radius).tolist())
        loop_s = time.perf_counter() - started

        started = time.perf_counter()
        bulk = grid.query_radius_bulk(queries, radius)
        bulk_s = time.perf_counter() - started

        assert set(bulk.tolist()) == singles
        assert np.all(np.diff(bulk) > 0)  # sorted, unique
        # Timing is informational (CI boxes vary); correctness is the assert.
        print(f"\nquery_radius loop: {loop_s * 1e3:.1f} ms, bulk: {bulk_s * 1e3:.1f} ms")
