"""Tests for segment/polyline distance primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import min_distance_to_polyline, point_to_segment_distance

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestPointToSegment:
    def test_projection_inside_segment(self):
        assert point_to_segment_distance(
            np.array([5.0, 3.0]), np.array([0.0, 0.0]), np.array([10.0, 0.0])
        ) == pytest.approx(3.0)

    def test_projection_clamped_to_endpoint(self):
        assert point_to_segment_distance(
            np.array([-4.0, 3.0]), np.array([0.0, 0.0]), np.array([10.0, 0.0])
        ) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_to_segment_distance(
            np.array([3.0, 4.0]), np.array([0.0, 0.0]), np.array([0.0, 0.0])
        ) == pytest.approx(5.0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_never_exceeds_endpoint_distances(self, px, py, ax, ay, bx, by):
        point = np.array([px, py])
        a, b = np.array([ax, ay]), np.array([bx, by])
        dist = point_to_segment_distance(point, a, b)
        assert dist <= np.linalg.norm(point - a) + 1e-6
        assert dist <= np.linalg.norm(point - b) + 1e-6
        assert dist >= -1e-12


class TestMinDistanceToPolyline:
    def test_single_point_polyline(self):
        assert min_distance_to_polyline(
            np.array([3.0, 4.0]), np.array([[0.0, 0.0]])
        ) == pytest.approx(5.0)

    def test_empty_polyline_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            min_distance_to_polyline(np.array([0.0, 0.0]), np.zeros((0, 2)))

    def test_closest_segment_wins(self):
        polyline = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0]])
        assert min_distance_to_polyline(
            np.array([12.0, 5.0]), polyline
        ) == pytest.approx(2.0)

    def test_interior_closest_point(self):
        # Point beside the middle of the first segment: distance is
        # perpendicular, smaller than to any vertex.
        polyline = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert min_distance_to_polyline(
            np.array([50.0, 7.0]), polyline
        ) == pytest.approx(7.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_pairwise_segment_minimum(self, seed):
        rng = np.random.default_rng(seed)
        polyline = rng.uniform(-100.0, 100.0, size=(6, 2))
        point = rng.uniform(-150.0, 150.0, size=2)
        expected = min(
            point_to_segment_distance(point, polyline[i], polyline[i + 1])
            for i in range(len(polyline) - 1)
        )
        assert min_distance_to_polyline(point, polyline) == pytest.approx(expected)
