"""Tests for the road-network routing substrate."""

import numpy as np
import pytest

from repro.spatial.geometry import path_length
from repro.spatial.roadnet import RoadNetwork


class TestGridConstruction:
    def test_node_and_edge_counts(self):
        network = RoadNetwork.grid(4, 3, spacing=100.0)
        assert network.graph.number_of_nodes() == 12
        # Horizontal: 3 per row × 3 rows; vertical: 4 per column... = 3*3 + 2*4
        assert network.graph.number_of_edges() == 3 * 3 + 2 * 4

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="2x2"):
            RoadNetwork.grid(1, 5)

    def test_drop_fraction_keeps_connectivity(self):
        import networkx as nx

        network = RoadNetwork.grid(6, 6, spacing=100.0, drop_fraction=0.2, seed=3)
        assert nx.is_connected(network.graph)
        full = RoadNetwork.grid(6, 6, spacing=100.0)
        assert network.graph.number_of_edges() <= full.graph.number_of_edges()

    def test_rejects_bad_drop_fraction(self):
        with pytest.raises(ValueError, match="drop_fraction"):
            RoadNetwork.grid(3, 3, drop_fraction=1.0)

    def test_total_street_length(self):
        network = RoadNetwork.grid(2, 2, spacing=100.0)
        assert network.total_street_length() == pytest.approx(400.0)


class TestSnapping:
    def test_nearest_node(self):
        network = RoadNetwork.grid(3, 3, spacing=100.0)
        assert network.nearest_node(np.array([5.0, -3.0])) == 0
        assert network.nearest_node(np.array([195.0, 210.0])) == 8

    def test_far_point_still_snaps(self):
        network = RoadNetwork.grid(3, 3, spacing=100.0)
        node = network.nearest_node(np.array([10_000.0, 10_000.0]))
        assert node == 8  # the far corner


class TestRouting:
    def test_route_endpoints_are_raw_points(self):
        network = RoadNetwork.grid(5, 5, spacing=100.0)
        origin = np.array([12.0, 7.0])
        destination = np.array([388.0, 402.0])
        route = network.route(origin, destination)
        assert np.allclose(route[0], origin)
        assert np.allclose(route[-1], destination)

    def test_route_length_at_least_euclidean(self):
        network = RoadNetwork.grid(5, 5, spacing=100.0)
        origin = np.array([0.0, 0.0])
        destination = np.array([400.0, 400.0])
        route = network.route(origin, destination)
        assert path_length(route) >= np.linalg.norm(destination - origin) - 1e-9

    def test_route_follows_streets(self):
        # Every interior waypoint must be an intersection position.
        network = RoadNetwork.grid(4, 4, spacing=100.0)
        route = network.route(np.array([0.0, 0.0]), np.array([300.0, 300.0]))
        for waypoint in route[1:-1]:
            distances = np.linalg.norm(network.positions - waypoint, axis=1)
            assert distances.min() < 1e-9

    def test_trips_between_integration(self):
        from repro.trajectory.generators import trips_between

        network = RoadNetwork.grid(5, 5, spacing=100.0)
        origins = np.array([[0.0, 0.0], [10.0, 390.0]])
        destinations = np.array([[400.0, 0.0], [390.0, 10.0]])
        db = trips_between(
            origins, destinations, network.router(), sample_spacing=25.0, speed_mps=5.0
        )
        assert len(db) == 2
        assert db[0].length >= 400.0 - 1e-6


class TestValidation:
    def test_rejects_disconnected_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(ValueError, match="connected"):
            RoadNetwork(graph, np.zeros((2, 2)))

    def test_rejects_position_mismatch(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1, length=1.0)
        with pytest.raises(ValueError, match="positions"):
            RoadNetwork(graph, np.zeros((3, 2)))
