"""The append-only bench history and its regression gate.

``scripts/_bench_history.py`` turns the BENCH_*.json files into commit-keyed
time series; the gate compares a new run's timings against the best recorded
run of the same scenario.  These tests pin the schema, the legacy-file
migration, the scenario keying (smoke never gates against full), and the
pass/fail arithmetic.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import _bench_history  # noqa: E402


def report(benchmark="bench", smoke=False, scenario=None, commit=None, **timings):
    entry = {
        "benchmark": benchmark,
        "smoke": smoke,
        "scenario": scenario or {"n": 100, "seed": 7},
        "results": dict(timings),
    }
    if commit is not None:
        entry["commit"] = commit
    return entry


class TestHistoryFile:
    def test_append_creates_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        history = _bench_history.append_run(path, report(build_s=1.0))
        assert history["schema"] == _bench_history.SCHEMA
        assert len(history["runs"]) == 1
        assert "recorded_at" in history["runs"][0]

        history = _bench_history.append_run(path, report(build_s=0.9))
        assert len(history["runs"]) == 2
        assert json.loads(path.read_text())["schema"] == _bench_history.SCHEMA

    def test_migrates_legacy_single_report(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = report(build_s=2.0)
        path.write_text(json.dumps(legacy))
        history = _bench_history.load_history(path)
        assert len(history["runs"]) == 1
        assert history["runs"][0]["results"]["build_s"] == 2.0
        # Appending keeps the migrated run as the baseline.
        history = _bench_history.append_run(path, report(build_s=1.5))
        assert [run["results"]["build_s"] for run in history["runs"]] == [2.0, 1.5]

    def test_missing_and_corrupt_files_start_empty(self, tmp_path):
        assert _bench_history.load_history(tmp_path / "absent.json")["runs"] == []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert _bench_history.load_history(bad)["runs"] == []


class TestScenarioKey:
    def test_smoke_and_full_differ(self):
        full = report(smoke=False)
        smoke = report(smoke=True)
        assert _bench_history.scenario_key(full) != _bench_history.scenario_key(smoke)

    def test_resized_scenario_differs(self):
        a = report(scenario={"n": 100})
        b = report(scenario={"n": 200})
        assert _bench_history.scenario_key(a) != _bench_history.scenario_key(b)

    def test_key_order_independent(self):
        a = report(scenario={"n": 100, "seed": 7})
        b = report(scenario={"seed": 7, "n": 100})
        assert _bench_history.scenario_key(a) == _bench_history.scenario_key(b)


class TestTimingMetrics:
    def test_flattens_nested_timings_only(self):
        run = {
            "benchmark": "bench",
            "build": {"join_s": 1.5, "speedup": 3.0, "note": "x"},
            "smoke": True,  # bool ending in nothing; also bools are excluded
            "deep": {"inner": {"solve_s": 0.25}},
        }
        assert _bench_history.timing_metrics(run) == {
            "build.join_s": 1.5,
            "deep.inner.solve_s": 0.25,
        }


class TestGate:
    def history_with(self, *values):
        history = {"schema": _bench_history.SCHEMA, "runs": []}
        for value in values:
            history["runs"].append(report(build_s=value))
        return history

    def test_no_baseline_passes_trivially(self):
        assert _bench_history.gate_regression({"runs": []}, report(build_s=9.9)) == []

    def test_within_threshold_passes(self):
        history = self.history_with(1.0, 1.4)
        assert _bench_history.gate_regression(history, report(build_s=1.1)) == []

    def test_gates_against_best_not_latest(self):
        history = self.history_with(1.0, 2.0)  # best is 1.0
        failures = _bench_history.gate_regression(history, report(build_s=1.5))
        assert len(failures) == 1
        assert "build_s" in failures[0]

    def test_failure_names_best_run_commit_and_percentage(self):
        history = {
            "schema": _bench_history.SCHEMA,
            "runs": [
                report(build_s=1.0, commit="abc1234"),
                report(build_s=2.0, commit="def5678"),
            ],
        }
        failures = _bench_history.gate_regression(history, report(build_s=1.5))
        assert len(failures) == 1
        # Names the commit of the *best* run, not the latest.
        assert "abc1234" in failures[0]
        assert "def5678" not in failures[0]
        assert "+50.0%" in failures[0]

    def test_failure_without_commit_says_unknown(self):
        history = self.history_with(1.0)  # report() stamps no commit
        failures = _bench_history.gate_regression(history, report(build_s=5.0))
        assert len(failures) == 1
        assert "commit unknown" in failures[0]

    def test_best_baselines_track_value_and_commit(self):
        history = {
            "runs": [
                report(build_s=2.0, commit="older"),
                report(build_s=1.0, commit="best"),
                report(build_s=3.0, commit="newer"),
            ]
        }
        key = _bench_history.scenario_key(history["runs"][0])
        best = _bench_history.best_baselines(history, key)
        assert best["results.build_s"] == (1.0, "best")

    def test_other_scenario_never_gates(self):
        history = {"runs": [report(smoke=True, build_s=0.001)]}
        assert (
            _bench_history.gate_regression(history, report(smoke=False, build_s=5.0))
            == []
        )

    def test_custom_threshold(self):
        history = self.history_with(1.0)
        assert (
            _bench_history.gate_regression(history, report(build_s=1.9), 2.0) == []
        )
        assert _bench_history.gate_regression(history, report(build_s=2.1), 2.0)
