"""Tests for the shared utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_children
from repro.utils.timing import Stopwatch


class TestRng:
    def test_seed_reproducibility(self):
        assert as_generator(5).integers(0, 1000) == as_generator(5).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_none_gives_fresh_entropy(self):
        a = as_generator(None).integers(0, 2**62)
        b = as_generator(None).integers(0, 2**62)
        # Astronomically unlikely to collide.
        assert a != b

    def test_spawn_children_independent_and_reproducible(self):
        first = [g.integers(0, 10**9) for g in spawn_children(7, 3)]
        second = [g.integers(0, 10**9) for g in spawn_children(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_children_from_generator(self):
        children = spawn_children(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_children_rejects_negative(self):
        with pytest.raises(ValueError, match="count"):
            spawn_children(0, -1)


class TestStopwatch:
    def test_measures_elapsed(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009

    def test_accumulates_across_laps(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        first = watch.elapsed
        with watch:
            time.sleep(0.005)
        assert watch.elapsed > first

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError, match="already running"):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_stop_returns_lap(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.002)
        lap = watch.stop()
        assert lap == pytest.approx(watch.elapsed)

    def test_exception_stops_watch_without_masking(self):
        # Regression: __exit__ used to call stop() unconditionally, so an
        # exception inside the block could be masked by a "not running"
        # RuntimeError (and a propagating exception left the watch running).
        watch = Stopwatch()
        with pytest.raises(ValueError, match="boom"):
            with watch:
                time.sleep(0.002)
                raise ValueError("boom")
        assert watch.elapsed >= 0.001  # stopped, lap recorded
        watch.start()  # not left running
        watch.stop()

    def test_block_that_stops_itself_does_not_mask(self):
        watch = Stopwatch()
        with pytest.raises(ValueError, match="boom"):
            with watch:
                watch.stop()
                raise ValueError("boom")
