"""The bottleneck reports: format sniffing and trace aggregation.

``repro obs report`` / ``scripts/obs_report.py`` turn the three artifact
kinds (Chrome trace, run ledger, obs run log) into fixed-width reports.
These tests feed synthetic artifacts with known arithmetic through the
aggregators so every reported number is pinned, not just smoke-checked.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import ledger, report


def complete(name, ts_us, dur_us, pid=100, args=None):
    event = {"name": name, "ph": "X", "cat": "span", "ts": ts_us, "dur": dur_us,
             "pid": pid, "tid": pid}
    if args:
        event["args"] = args
    return event


@pytest.fixture()
def trace_data():
    """A restart-bench-shaped trace: one parent (pid 100), two workers.

    First ``pool.map`` spans [1000, 11000]us with 4000us of worker task time
    across 2 lanes → warm-up = 10000 - 4000/2 = 8000us = 0.008s.
    """
    events = [
        complete("pool.spawn", 0, 500, pid=100),
        complete("pool.export", 500, 300, pid=100),
        complete("pool.map", 1000, 10_000, pid=100, args={"first": True}),
        complete("pool.attach", 2000, 1000, pid=201),
        complete("pool.attach", 2500, 1000, pid=202),
        complete("pool.task", 4000, 1000, pid=201),
        complete("pool.task", 4500, 1000, pid=202),
        complete("restart.reduce", 11_200, 400, pid=100),
        # A later, already-warm map: outside the first window.
        complete("pool.map", 20_000, 2_000, pid=100),
        complete("pool.task", 20_100, 900, pid=201),
        complete(
            "bls.sweep", 30_000, 4_000, pid=100,
            args={"engine": "dirty", "screen_s": 0.001, "exchange_s": 0.002,
                  "release_s": 0.0005, "topup_s": 0.0005, "verify": False},
        ),
        complete(
            "bls.sweep", 35_000, 2_000, pid=100,
            args={"engine": "dirty", "screen_s": 0.001, "exchange_s": 0.0005,
                  "release_s": 0.0003, "topup_s": 0.0002, "verify": True},
        ),
        {"name": "kernel.dispatch", "ph": "i", "s": "p", "ts": 40_000, "pid": 100,
         "tid": 100, "args": {"engine": "dirty", "influence.dispatch.batch": 7}},
        {"name": "rss_mb", "ph": "C", "ts": 1000, "pid": 100, "tid": 100,
         "args": {"rss_mb": 50.0}},
        {"name": "rss_mb", "ph": "C", "ts": 9000, "pid": 100, "tid": 100,
         "args": {"rss_mb": 80.0}},
        {"name": "rss_mb", "ph": "C", "ts": 5000, "pid": 201, "tid": 201,
         "args": {"rss_mb": 30.0}},
    ]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"commit": "cafef00d", "counters": {"influence.dispatch.batch": 7}},
    }


class TestDetectFormat:
    def test_trace_ledger_runlog(self, tmp_path):
        trace_path = tmp_path / "t.json"
        trace_path.write_text(json.dumps({"traceEvents": []}))
        assert report.detect_format(trace_path) == "trace"

        ledger_path = tmp_path / "l.jsonl"
        ledger.record_run("bench.sweep", path=ledger_path, engine="dirty")
        assert report.detect_format(ledger_path) == "ledger"

        runlog_path = tmp_path / "r.jsonl"
        runlog_path.write_text('{"event": "counters", "counters": {"a": 1}}\n')
        assert report.detect_format(runlog_path) == "runlog"


class TestRestartAttribution:
    def test_totals_and_warmup(self, trace_data):
        attribution = report.restart_attribution(trace_data)
        totals = attribution["totals_s"]
        assert totals["spawn"] == pytest.approx(0.0005)
        assert totals["export"] == pytest.approx(0.0003)
        assert totals["attach"] == pytest.approx(0.002)
        assert totals["compute"] == pytest.approx(0.0029)  # 3 tasks
        assert totals["reduce"] == pytest.approx(0.0004)
        assert attribution["map_count"] == 2
        assert attribution["map_wall_s"] == pytest.approx(0.012)
        assert attribution["worker_pids"] == [201, 202]
        assert attribution["parent_pids"] == [100]
        # First map: 10000us wall - 4000us tasks+attach? tasks(2000)+attach(2000)
        # in window = 4000us over 2 lanes → 10000 - 2000 = 8000us.
        assert attribution["warmup_s"] == pytest.approx(0.008)

    def test_empty_trace(self):
        attribution = report.restart_attribution({"traceEvents": []})
        assert attribution["map_count"] == 0
        assert attribution["warmup_s"] == 0.0
        assert attribution["worker_pids"] == []


class TestBlsPhases:
    def test_per_engine_sums(self, trace_data):
        engines = report.bls_phase_breakdown(trace_data)
        row = engines["dirty"]
        assert row["sweeps"] == 2
        assert row["wall_s"] == pytest.approx(0.006)
        assert row["screen_s"] == pytest.approx(0.002)
        assert row["exchange_s"] == pytest.approx(0.0025)
        assert row["release_s"] == pytest.approx(0.0008)
        assert row["topup_s"] == pytest.approx(0.0007)
        assert row["verify"] == 1


class TestKernelsAndRss:
    def test_kernel_dispatch_table(self, trace_data):
        kernels = report.kernel_dispatch_table(trace_data)
        assert kernels["totals"] == {"influence.dispatch.batch": 7}
        assert kernels["per_engine"]["dirty"]["influence.dispatch.batch"] == 7.0

    def test_rss_ranges(self, trace_data):
        ranges = report.rss_by_pid(trace_data)
        assert ranges[100] == (50.0, 80.0)
        assert ranges[201] == (30.0, 30.0)


class TestRendering:
    def test_trace_report_mentions_every_section(self, trace_data, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(trace_data))
        text = report.render_report(path)
        assert "commit: cafef00d" in text
        assert "restart bench time attribution" in text
        assert "BLS sweep phases per engine" in text
        assert "kernel dispatch per engine pass" in text
        assert "RSS by pid" in text
        assert "warm-up" in text

    def test_ledger_report(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger.record_run("bench.sweep", path=path, engine="dirty", wall_s=1.0,
                          regret=4.0)
        ledger.record_run("bench.sweep", path=path, engine="dirty", wall_s=3.0,
                          regret=6.0)
        text = report.render_report(path)
        assert "bench.sweep/dirty" in text
        assert "5.0000" in text  # mean regret
        assert "2.0000" in text  # mean wall

    def test_runlog_report(self, tmp_path):
        path = tmp_path / "r.jsonl"
        lines = [
            {"event": "histograms",
             "histograms": {"span.quote.price": {"count": 3, "total": 0.3,
                                                 "p50": 0.1, "p95": 0.12,
                                                 "p99": 0.12, "max": 0.12}}},
            {"event": "counters", "counters": {"sweep.moves": 5}},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        text = report.render_report(path)
        assert "quote.price" in text
        assert "p99_s" in text
        assert "sweep.moves" in text
