"""The trace module: lifecycle, event shapes, schema validation, spill.

Tracing is the tentpole of the observability PR: spans become clock-aligned
Chrome complete events, counters/instants layer kernel and memory context
onto the timeline, and worker spill files carry events that never rode a
task snapshot home.  These tests pin the single-process behaviour; the
cross-process pieces live in ``test_trace_pool.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.obs import trace


class TestLifecycle:
    def test_disabled_by_default_and_span_is_free(self):
        assert not obs.trace_enabled()
        with obs.span("anything"):
            pass
        assert trace.take_trace() == []

    def test_enable_implies_metric_collection(self):
        obs.trace_enable(out="unused.json")
        assert obs.trace_enabled()
        assert obs.enabled()
        assert trace.configured_trace_out() == "unused.json"

    def test_disable_drops_buffer_and_out(self):
        obs.trace_enable(out="unused.json")
        with obs.span("work"):
            pass
        assert trace.take_trace()
        obs.trace_disable()
        assert trace.take_trace() == []
        assert trace.configured_trace_out() is None

    def test_buffer_survives_obs_reset_and_disable(self):
        # The bench flips obs.enable()/disable() around its timed sections;
        # the trace must keep accumulating across those flips.
        obs.trace_enable(out="unused.json")
        with obs.span("before"):
            pass
        obs.reset()
        obs.disable()
        obs.enable()
        with obs.span("after"):
            pass
        names = [event["name"] for event in trace.take_trace() if event["ph"] == "X"]
        assert "before" in names and "after" in names

    def test_set_trace_collection_keeps_buffer(self):
        obs.trace_enable(out="unused.json")
        with obs.span("kept"):
            pass
        obs.set_trace_collection(False)
        assert not obs.trace_enabled()
        with obs.span("dropped"):
            pass
        obs.set_trace_collection(True)
        names = [event["name"] for event in trace.take_trace()]
        assert "kept" in names and "dropped" not in names


class TestEvents:
    def test_span_becomes_complete_event(self):
        obs.trace_enable(out="unused.json")
        with obs.span("outer", engine="dirty"):
            with obs.span("inner"):
                time.sleep(0.001)
        events = {event["name"]: event for event in trace.take_trace()}
        outer, inner = events["outer"], events["inner"]
        for event in (outer, inner):
            assert event["ph"] == "X"
            assert event["pid"] == os.getpid()
            assert event["dur"] >= 0
        assert outer["args"]["engine"] == "dirty"
        assert inner["args"]["path"] == "outer.inner"
        # The child's window nests inside the parent's.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_timestamps_are_epoch_aligned(self):
        obs.trace_enable(out="unused.json")
        before_us = time.time() * 1e6
        with obs.span("aligned"):
            pass
        after_us = time.time() * 1e6
        (event,) = [e for e in trace.take_trace() if e["name"] == "aligned"]
        assert before_us - 1e6 <= event["ts"] <= after_us + 1e6

    def test_emit_counter_and_instant(self):
        obs.trace_enable(out="unused.json")
        obs.emit_counter("rss_mb", {"rss_mb": 12.5})
        obs.emit_instant("kernel.dispatch", {"engine": "dirty"})
        counter, instant = trace.take_trace()
        assert counter["ph"] == "C" and counter["args"] == {"rss_mb": 12.5}
        assert instant["ph"] == "i" and instant["s"] == "p"
        assert instant["args"]["engine"] == "dirty"

    def test_read_rss_positive_on_linux(self):
        rss = trace.read_rss_mb()
        if rss is not None:
            assert rss > 0


class TestWriteAndValidate:
    def test_write_trace_roundtrip_validates(self, tmp_path):
        out = tmp_path / "trace.json"
        obs.trace_enable(out=str(out))
        with obs.span("one"):
            pass
        obs.counter_add("influence.dispatch.batch", 3)
        written = obs.write_trace()
        assert written == out
        data = json.loads(out.read_text())
        assert obs.validate_chrome_trace(data) == []
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["counters"]["influence.dispatch.batch"] == 3
        names = {event["name"] for event in data["traceEvents"]}
        assert "one" in names and "process_name" in names

    def test_write_trace_without_path_raises(self):
        obs.trace_enable()
        with pytest.raises(ValueError, match="no trace output path"):
            obs.write_trace()

    def test_validate_flags_problems(self):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "ts": 10, "dur": -1},
                {"name": "y", "ph": "X", "pid": 1, "ts": 5, "dur": 1},
                {"name": "z", "ph": "?", "pid": 1, "ts": 0},
            ]
        }
        problems = obs.validate_chrome_trace(bad)
        assert any("non-negative dur" in p for p in problems)
        assert any("moved backwards" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert obs.validate_chrome_trace({"nope": 1}) == [
            "top level must be an object with a traceEvents list"
        ]


class TestSpill:
    def test_flush_and_collect_roundtrip(self, tmp_path, monkeypatch):
        out = tmp_path / "trace.json"
        spill_dir = f"{out}.spill"
        obs.trace_enable(out=str(out))
        assert os.environ.get(obs.SPILL_DIR_ENV) == spill_dir
        with obs.span("worker.side"):
            pass
        obs.counter_add("spilled.counter", 2)
        path = obs.flush_worker_spill()
        assert path is not None and path.parent == tmp_path / "trace.json.spill"
        # The flush drained the buffer: a second flush is a no-op.
        assert obs.flush_worker_spill() is None
        assert trace.take_trace() == []
        assert obs.counter_value("spilled.counter") == 0

        consumed = obs.collect_spills()
        assert consumed == 1
        assert obs.counter_value("spilled.counter") == 2
        assert "worker.side" in [e["name"] for e in trace.take_trace()]
        # Spill files are deleted after merge — no double counting.
        assert obs.collect_spills() == 0

    def test_flush_without_spill_dir_is_noop(self, monkeypatch):
        monkeypatch.delenv(obs.SPILL_DIR_ENV, raising=False)
        obs.set_trace_collection(True)
        with obs.span("unspillable"):
            pass
        assert obs.flush_worker_spill() is None
