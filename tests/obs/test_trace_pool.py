"""Cross-process tracing and snapshot merge under ``pool.reuse``.

The acceptance bar for the tracing tentpole: a parallel-restart run against
a *reused* warm pool must (a) merge worker metric snapshots so totals equal
the serial run, and (b) yield trace events attributed to at least two
distinct worker pids whose clock-aligned timestamps are monotone per
process and land inside the parent's ``pool.map`` window.

``REPRO_POOL_OVERSUBSCRIBE=1`` lifts the affinity cap so the two worker
processes exist even on 1-CPU CI runners.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.algorithms.local_search import RandomizedLocalSearch
from repro.market.scenario import Scenario
from repro.obs import trace
from repro.parallel.pool import OVERSUBSCRIBE_ENV, close_all_pools, effective_workers

COMPARED_PREFIXES = ("solver.", "influence.dispatch.")
RESTARTS = 4
WORKERS = 2


def compared_counters() -> dict:
    return {
        name: value
        for name, value in obs.get_registry().counters.items()
        if name.startswith(COMPARED_PREFIXES)
    }


@pytest.fixture(autouse=True)
def _oversubscribe(monkeypatch):
    monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
    close_all_pools()
    yield
    close_all_pools()


@pytest.fixture(scope="module")
def instance():
    return Scenario(
        dataset="nyc", n_billboards=40, n_trajectories=250, alpha=0.8, p_avg=0.1, seed=3
    ).build_instance()


def solve(instance, workers):
    return RandomizedLocalSearch(
        "bls", restarts=RESTARTS, seed=11, restart_workers=workers
    ).solve(instance)


class TestOversubscribe:
    def test_env_lifts_affinity_cap(self, monkeypatch):
        monkeypatch.delenv(OVERSUBSCRIBE_ENV, raising=False)
        capped = effective_workers(64)
        monkeypatch.setenv(OVERSUBSCRIBE_ENV, "1")
        assert effective_workers(64) == 64
        assert capped <= 64


class TestSnapshotMergeUnderReuse:
    def test_parallel_totals_equal_serial_across_reused_pool(self, instance):
        obs.enable()
        serial_result = solve(instance, None)
        serial = compared_counters()
        assert serial and serial["solver.solves"] >= 1
        obs.reset()

        first = solve(instance, WORKERS)  # spawns the pool
        obs.reset()  # drop the spawn-run totals; the pool stays warm
        second = solve(instance, WORKERS)  # must reuse it
        assert obs.counter_value("pool.reuse") >= 1
        assert obs.counter_value("pool.spawn") == 0
        parallel = compared_counters()

        assert parallel == serial
        for result in (first, second):
            assert result.total_regret == serial_result.total_regret
            assert (
                result.allocation.assignment_map()
                == serial_result.allocation.assignment_map()
            )


class TestTraceAcrossProcesses:
    def test_worker_events_are_pid_attributed_and_clock_aligned(
        self, instance, tmp_path
    ):
        out = tmp_path / "trace.json"
        obs.trace_enable(out=str(out))
        solve(instance, WORKERS)  # spawn
        solve(instance, WORKERS)  # reuse — tasks on already-warm workers
        close_all_pools()  # ship teardown spills
        obs.collect_spills()
        events = trace.take_trace()
        complete = [e for e in events if e["ph"] == "X"]

        parent_pid = os.getpid()
        task_pids = {e["pid"] for e in complete if e["name"] == "pool.task"}
        assert len(task_pids) >= 2, "expected tasks from >=2 worker processes"
        assert parent_pid not in task_pids
        assert any(e["name"] == "pool.spawn" and e["pid"] == parent_pid
                   for e in complete)

        # Clock alignment: every worker task lands inside some parent
        # pool.map window (same epoch mapping in parent and children).
        windows = [
            (e["ts"], e["ts"] + e["dur"])
            for e in complete
            if e["name"] == "pool.map" and e["pid"] == parent_pid
        ]
        assert windows
        slack_us = 50_000
        for task in (e for e in complete if e["name"] == "pool.task"):
            assert any(
                start - slack_us <= task["ts"] <= end + slack_us
                for start, end in windows
            ), "worker task timestamp outside every parent map window"

        # Per-pid monotonicity — the property validate_chrome_trace pins.
        data = trace.to_chrome(events)
        assert obs.validate_chrome_trace(data) == []

    def test_write_trace_includes_worker_pids(self, instance, tmp_path):
        import json

        out = tmp_path / "trace.json"
        obs.trace_enable(out=str(out))
        solve(instance, WORKERS)
        close_all_pools()
        written = obs.write_trace()
        data = json.loads(written.read_text())
        assert obs.validate_chrome_trace(data) == []
        pids = {
            e["pid"]
            for e in data["traceEvents"]
            if e.get("ph") == "X" and e.get("name") == "pool.task"
        }
        assert len(pids) >= 2
