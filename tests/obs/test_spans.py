"""Span tests: no-op path, nesting, attributes, errors, JSONL round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.spans import _NULL_SPAN


class TestDisabledSpans:
    def test_returns_shared_null_span(self):
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", attr=1) is _NULL_SPAN

    def test_null_span_records_nothing(self):
        with obs.span("region") as active:
            active.set(ignored=True)
        obs.enable()
        assert obs.get_registry().events == []
        assert obs.get_registry().histograms == {}


class TestEnabledSpans:
    def test_records_histogram_and_event(self):
        obs.enable()
        with obs.span("region", parameter="alpha"):
            pass
        histogram = obs.get_registry().histograms["span.region"]
        assert histogram.count == 1
        assert histogram.total >= 0.0
        (event,) = obs.get_registry().events
        assert event["event"] == "span"
        assert event["name"] == "region"
        assert event["path"] == "region"
        assert event["duration_s"] >= 0.0
        assert event["attrs"] == {"parameter": "alpha"}

    def test_nesting_paths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.get_registry().events
        assert inner["path"] == "outer.inner"
        assert outer["path"] == "outer"
        # Histograms key on the span's own name, not the nesting path, so
        # serial and parallel runs aggregate identically.
        assert set(obs.get_registry().histograms) == {"span.outer", "span.inner"}

    def test_set_attaches_attributes_mid_span(self):
        obs.enable()
        with obs.span("region") as active:
            active.set(rows=12)
        (event,) = obs.get_registry().events
        assert event["attrs"] == {"rows": 12}

    def test_exception_propagates_and_is_recorded(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("failing"):
                raise ValueError("boom")
        (event,) = obs.get_registry().events
        assert event["error"] == "ValueError"
        # The stack unwound — a following span is not nested under "failing".
        with obs.span("after"):
            pass
        assert obs.get_registry().events[-1]["path"] == "after"


class TestJsonlRoundTrip:
    def test_events_and_snapshots_round_trip(self, tmp_path):
        obs.enable()
        with obs.span("coverage.build", lambda_m=100.0):
            pass
        obs.counter_add("influence.dispatch.idarray", np.int64(3))
        obs.gauge_set("bitmap.bytes", np.float64(1024.0))
        obs.histogram_observe("rows", 7)
        obs.record_event("solver", method="BLS", telemetry={"iterations": 2})

        path = obs.write_jsonl(tmp_path / "run.jsonl")
        lines = obs.read_jsonl(path)

        span_line = lines[0]
        assert span_line["event"] == "span"
        assert span_line["name"] == "coverage.build"
        solver_line = lines[1]
        assert solver_line["telemetry"] == {"iterations": 2}

        by_kind = {line["event"]: line for line in lines}
        assert by_kind["counters"]["counters"]["influence.dispatch.idarray"] == 3
        assert by_kind["gauges"]["gauges"]["bitmap.bytes"] == 1024.0
        assert by_kind["histograms"]["histograms"]["rows"]["count"] == 1

    def test_creates_parent_directories(self, tmp_path):
        obs.enable()
        path = obs.write_jsonl(tmp_path / "deep" / "nested" / "run.jsonl")
        assert path.is_file()


class TestSummaryTable:
    def test_sections_and_names(self):
        obs.enable()
        obs.counter_add("coverage_cache.hit", 2)
        obs.gauge_set("bitmap.bytes", 64.0)
        with obs.span("harness.cell"):
            pass
        obs.histogram_observe("rows", 5)
        table = obs.summary_table()
        assert "-- counters --" in table
        assert "coverage_cache.hit" in table
        assert "-- gauges --" in table
        assert "-- spans --" in table
        assert "harness.cell" in table
        assert "-- histograms --" in table

    def test_empty_registry(self):
        obs.enable()
        assert "(nothing recorded)" in obs.summary_table()
