"""Observability test fixtures.

Every test starts and ends with collection disabled and an empty registry,
so tests can enable/instrument freely without leaking state into each other
(or into the rest of the suite, which runs with obs off — the default).
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.trace_disable()
    obs.disable()
    yield
    obs.trace_disable()
    obs.disable()
