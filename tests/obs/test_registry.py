"""Registry tests: counters, gauges, histograms, snapshots, disabled no-ops."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.registry import Histogram


class TestCounters:
    def test_accumulates(self):
        obs.enable()
        obs.counter_add("x")
        obs.counter_add("x", 4)
        assert obs.counter_value("x") == 5

    def test_unknown_counter_reads_zero(self):
        obs.enable()
        assert obs.counter_value("never") == 0

    def test_disabled_records_nothing(self):
        obs.counter_add("x", 10)
        obs.enable()
        assert obs.counter_value("x") == 0


class TestGauges:
    def test_last_write_wins(self):
        obs.enable()
        obs.gauge_set("g", 1.0)
        obs.gauge_set("g", 7.0)
        assert obs.get_registry().gauges["g"] == 7.0

    def test_disabled_records_nothing(self):
        obs.gauge_set("g", 1.0)
        obs.enable()
        assert "g" not in obs.get_registry().gauges


class TestHistograms:
    def test_summary_statistics(self):
        obs.enable()
        for value in (2.0, 4.0, 9.0):
            obs.histogram_observe("h", value)
        histogram = obs.get_registry().histograms["h"]
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 9.0
        assert histogram.mean == 5.0

    def test_empty_histogram_as_dict(self):
        histogram = Histogram()
        assert histogram.as_dict() == {
            "count": 0,
            "total": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "buckets": {},
        }
        assert histogram.mean == 0.0

    def test_quantiles_within_bucket_tolerance(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        # One log bucket is a 2^(1/8) ≈ 1.09 ratio: estimates land within
        # ~9% of the true order statistic, and the extremes are exact.
        assert abs(histogram.p50 - 50.0) <= 50.0 * 0.10
        assert abs(histogram.p95 - 95.0) <= 95.0 * 0.10
        assert histogram.quantile(0.0) >= histogram.min
        assert histogram.quantile(1.0) == histogram.max

    def test_quantiles_handle_zero_and_single_value(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(0.0)
        assert histogram.p50 == 0.0
        single = Histogram()
        single.observe(3.0)
        assert single.p50 == 3.0
        assert single.p99 == 3.0

    def test_merge_dict(self):
        target = Histogram()
        target.observe(5.0)
        target.merge_dict({"count": 2, "total": 3.0, "min": 1.0, "max": 2.0})
        assert target.count == 3
        assert target.total == 8.0
        assert target.min == 1.0
        assert target.max == 5.0

    def test_merge_preserves_quantile_buckets(self):
        left, right, serial = Histogram(), Histogram(), Histogram()
        for value in range(1, 51):
            left.observe(float(value))
            serial.observe(float(value))
        for value in range(51, 101):
            right.observe(float(value))
            serial.observe(float(value))
        left.merge_dict(right.as_dict())
        assert left.buckets == serial.buckets
        assert left.p50 == serial.p50
        assert left.p95 == serial.p95
        assert left.p99 == serial.p99

    def test_merge_empty_is_noop(self):
        target = Histogram()
        target.merge_dict(Histogram().as_dict())
        assert target.count == 0


class TestEvents:
    def test_event_recorded_with_kind_and_payload(self):
        obs.enable()
        obs.record_event("custom", answer=42)
        (event,) = obs.get_registry().events
        assert event["event"] == "custom"
        assert event["answer"] == 42
        assert "ts" in event

    def test_disabled_records_nothing(self):
        obs.record_event("custom")
        obs.enable()
        assert obs.get_registry().events == []


class TestLifecycle:
    def test_enable_sets_out_path(self):
        obs.enable(out="/tmp/run.jsonl")
        assert obs.enabled()
        assert obs.configured_out() == "/tmp/run.jsonl"

    def test_disable_drops_everything(self):
        obs.enable(out="/tmp/run.jsonl")
        obs.counter_add("x")
        obs.disable()
        assert not obs.enabled()
        assert obs.configured_out() is None
        assert obs.get_registry().counters == {}

    def test_reset_keeps_enabled_state(self):
        obs.enable()
        obs.counter_add("x")
        obs.reset()
        assert obs.enabled()
        assert obs.counter_value("x") == 0


class TestSnapshotMerge:
    def test_round_trip_totals(self):
        obs.enable()
        obs.counter_add("c", 3)
        obs.gauge_set("g", 1.5)
        obs.histogram_observe("h", 2.0)
        obs.record_event("e")
        snapshot = obs.take_snapshot(reset_after=True)
        assert obs.counter_value("c") == 0  # reset happened

        obs.counter_add("c", 1)
        obs.merge_snapshot(snapshot)
        obs.merge_snapshot(snapshot)
        registry = obs.get_registry()
        assert registry.counters["c"] == 7
        assert registry.gauges["g"] == 1.5
        assert registry.histograms["h"].count == 2
        assert len(registry.events) == 2

    def test_merge_none_is_noop(self):
        obs.enable()
        obs.merge_snapshot(None)
        assert obs.get_registry().counters == {}

    def test_merge_while_disabled_is_noop(self):
        obs.enable()
        obs.counter_add("c")
        snapshot = obs.take_snapshot()
        obs.disable()
        obs.merge_snapshot(snapshot)
        obs.enable()
        assert obs.counter_value("c") == 0


def _workload_loop(instrument: bool, iterations: int = 100) -> float:
    """Min-of-runs time for a tight loop, optionally with disabled-obs calls."""
    best = float("inf")
    for _ in range(9):
        started = time.perf_counter()
        total = 0
        for i in range(iterations):
            total += sum(range(5000))  # the real per-iteration work
            if instrument:
                obs.counter_add("overhead.test")
                with obs.span("overhead.test"):
                    pass
        best = min(best, time.perf_counter() - started)
    assert total > 0
    return best


class TestDisabledOverhead:
    def test_disabled_instrumentation_under_5_percent(self):
        """The no-op path must cost <5% on a tight instrumented loop.

        Min-of-7 runs on both sides (plus a tiny absolute epsilon) so
        scheduler noise cannot flake the comparison; the per-iteration
        workload is sized so the two boolean checks are genuinely amortized,
        as they are at the real instrumentation sites.
        """
        assert not obs.enabled()
        _workload_loop(True)  # warm up both paths
        baseline = _workload_loop(False)
        instrumented = _workload_loop(True)
        assert instrumented <= baseline * 1.05 + 1e-4, (
            f"disabled-mode overhead too high: {instrumented:.6f}s vs "
            f"baseline {baseline:.6f}s"
        )
        assert obs.get_registry().counters == {}  # truly a no-op
