"""Registry tests: counters, gauges, histograms, snapshots, disabled no-ops."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.registry import Histogram


class TestCounters:
    def test_accumulates(self):
        obs.enable()
        obs.counter_add("x")
        obs.counter_add("x", 4)
        assert obs.counter_value("x") == 5

    def test_unknown_counter_reads_zero(self):
        obs.enable()
        assert obs.counter_value("never") == 0

    def test_disabled_records_nothing(self):
        obs.counter_add("x", 10)
        obs.enable()
        assert obs.counter_value("x") == 0


class TestGauges:
    def test_last_write_wins(self):
        obs.enable()
        obs.gauge_set("g", 1.0)
        obs.gauge_set("g", 7.0)
        assert obs.get_registry().gauges["g"] == 7.0

    def test_disabled_records_nothing(self):
        obs.gauge_set("g", 1.0)
        obs.enable()
        assert "g" not in obs.get_registry().gauges


class TestHistograms:
    def test_summary_statistics(self):
        obs.enable()
        for value in (2.0, 4.0, 9.0):
            obs.histogram_observe("h", value)
        histogram = obs.get_registry().histograms["h"]
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 9.0
        assert histogram.mean == 5.0

    def test_empty_histogram_as_dict(self):
        histogram = Histogram()
        assert histogram.as_dict() == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        assert histogram.mean == 0.0

    def test_merge_dict(self):
        target = Histogram()
        target.observe(5.0)
        target.merge_dict({"count": 2, "total": 3.0, "min": 1.0, "max": 2.0})
        assert target.count == 3
        assert target.total == 8.0
        assert target.min == 1.0
        assert target.max == 5.0

    def test_merge_empty_is_noop(self):
        target = Histogram()
        target.merge_dict(Histogram().as_dict())
        assert target.count == 0


class TestEvents:
    def test_event_recorded_with_kind_and_payload(self):
        obs.enable()
        obs.record_event("custom", answer=42)
        (event,) = obs.get_registry().events
        assert event["event"] == "custom"
        assert event["answer"] == 42
        assert "ts" in event

    def test_disabled_records_nothing(self):
        obs.record_event("custom")
        obs.enable()
        assert obs.get_registry().events == []


class TestLifecycle:
    def test_enable_sets_out_path(self):
        obs.enable(out="/tmp/run.jsonl")
        assert obs.enabled()
        assert obs.configured_out() == "/tmp/run.jsonl"

    def test_disable_drops_everything(self):
        obs.enable(out="/tmp/run.jsonl")
        obs.counter_add("x")
        obs.disable()
        assert not obs.enabled()
        assert obs.configured_out() is None
        assert obs.get_registry().counters == {}

    def test_reset_keeps_enabled_state(self):
        obs.enable()
        obs.counter_add("x")
        obs.reset()
        assert obs.enabled()
        assert obs.counter_value("x") == 0


class TestSnapshotMerge:
    def test_round_trip_totals(self):
        obs.enable()
        obs.counter_add("c", 3)
        obs.gauge_set("g", 1.5)
        obs.histogram_observe("h", 2.0)
        obs.record_event("e")
        snapshot = obs.take_snapshot(reset_after=True)
        assert obs.counter_value("c") == 0  # reset happened

        obs.counter_add("c", 1)
        obs.merge_snapshot(snapshot)
        obs.merge_snapshot(snapshot)
        registry = obs.get_registry()
        assert registry.counters["c"] == 7
        assert registry.gauges["g"] == 1.5
        assert registry.histograms["h"].count == 2
        assert len(registry.events) == 2

    def test_merge_none_is_noop(self):
        obs.enable()
        obs.merge_snapshot(None)
        assert obs.get_registry().counters == {}

    def test_merge_while_disabled_is_noop(self):
        obs.enable()
        obs.counter_add("c")
        snapshot = obs.take_snapshot()
        obs.disable()
        obs.merge_snapshot(snapshot)
        obs.enable()
        assert obs.counter_value("c") == 0


def _workload_loop(instrument: bool, iterations: int = 200) -> float:
    """Min-of-runs time for a tight loop, optionally with disabled-obs calls."""
    best = float("inf")
    for _ in range(7):
        started = time.perf_counter()
        total = 0
        for i in range(iterations):
            total += sum(range(1000))  # the real per-iteration work
            if instrument:
                obs.counter_add("overhead.test")
                with obs.span("overhead.test"):
                    pass
        best = min(best, time.perf_counter() - started)
    assert total > 0
    return best


class TestDisabledOverhead:
    def test_disabled_instrumentation_under_5_percent(self):
        """The no-op path must cost <5% on a tight instrumented loop.

        Min-of-7 runs on both sides (plus a tiny absolute epsilon) so
        scheduler noise cannot flake the comparison; the per-iteration
        workload is sized so the two boolean checks are genuinely amortized,
        as they are at the real instrumentation sites.
        """
        assert not obs.enabled()
        _workload_loop(True)  # warm up both paths
        baseline = _workload_loop(False)
        instrumented = _workload_loop(True)
        assert instrumented <= baseline * 1.05 + 1e-4, (
            f"disabled-mode overhead too high: {instrumented:.6f}s vs "
            f"baseline {baseline:.6f}s"
        )
        assert obs.get_registry().counters == {}  # truly a no-op
