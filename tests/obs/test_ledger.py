"""The run ledger: append-only JSONL records keyed by commit + instance shape.

The ledger is the calibration dataset for the ROADMAP's adaptive solver
portfolio: one line per (harness cell / bench section) with the instance
features that drive solver behaviour and the outcome.  These tests pin the
record schema, the environment gating, the append-only write path, and the
tolerant reader.
"""

from __future__ import annotations

import json

import pytest

from repro.market.scenario import Scenario
from repro.obs import ledger


@pytest.fixture()
def instance():
    return Scenario(
        dataset="nyc", n_billboards=30, n_trajectories=200, seed=5
    ).build_instance()


class TestConfiguration:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(ledger.LEDGER_ENV, raising=False)
        assert not ledger.enabled()
        assert ledger.ledger_path() is None
        assert ledger.record_run("bench.sweep") is None

    def test_enabled_via_env(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(ledger.LEDGER_ENV, str(path))
        assert ledger.enabled()
        assert ledger.ledger_path() == path

    def test_git_commit_is_cached_and_real(self):
        commit = ledger.git_commit()
        assert commit == ledger.git_commit()
        # The test tree is a git checkout, so the hash is a real one.
        assert commit == "unknown" or len(commit) == 40


class TestRecordRun:
    def test_record_schema_and_append(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.record_run("bench.sweep", path=path, engine="dirty", wall_s=0.5)
        ledger.record_run("bench.sweep", path=path, engine="full", wall_s=1.5)
        records = ledger.read_ledger(path)
        assert [r["engine"] for r in records] == ["dirty", "full"]
        first = records[0]
        assert first["schema"] == ledger.SCHEMA
        assert first["kind"] == "bench.sweep"
        assert first["commit"] == ledger.git_commit()
        assert first["wall_s"] == 0.5
        assert isinstance(first["ts"], float) and isinstance(first["pid"], int)

    def test_env_configured_path(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(ledger.LEDGER_ENV, str(path))
        assert ledger.record_run("harness.cell", method="bls") == path
        (record,) = ledger.read_ledger(path)
        assert record["method"] == "bls"

    def test_instance_features_ride_along(self, tmp_path, instance):
        path = tmp_path / "ledger.jsonl"
        ledger.record_run("bench.sweep", instance=instance, path=path)
        (record,) = ledger.read_ledger(path)
        features = record["instance"]
        assert features["billboards"] == instance.num_billboards
        assert features["advertisers"] == instance.num_advertisers
        assert features["gamma"] == instance.gamma
        # Coverage overlaps, so the summed influences exceed the union.
        assert features["overlap"] >= 1.0
        assert features["influence_cv"] >= 0.0

    def test_numpy_payload_is_jsonable(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "ledger.jsonl"
        ledger.record_run("bench.sweep", path=path, regret=np.float64(2.5))
        (record,) = ledger.read_ledger(path)
        assert record["regret"] == 2.5


class TestReadLedger:
    def test_skips_corrupt_and_blank_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.record_run("bench.sweep", path=path, engine="dirty")
        with path.open("a") as stream:
            stream.write("{truncated\n\n")
        ledger.record_run("bench.sweep", path=path, engine="full")
        records = ledger.read_ledger(path)
        assert [r["engine"] for r in records] == ["dirty", "full"]
        # The raw file really holds the bad line — the reader skipped it.
        assert "{truncated" in path.read_text()

    def test_records_are_valid_jsonl(self, tmp_path, instance):
        path = tmp_path / "ledger.jsonl"
        ledger.record_run("harness.cell", instance=instance, path=path, regret=1.0)
        for line in path.read_text().splitlines():
            json.loads(line)
