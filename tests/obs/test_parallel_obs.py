"""Parallel metric merge: ``workers=2`` totals equal the serial totals.

Worker processes record into their own registries and ship per-task
snapshots back to the parent.  For work that is deterministic per task —
the solver counters and the influence-kernel dispatches — merged totals
must equal a serial run exactly.  (Per-build counters like
``coverage.builds`` legitimately differ: each worker rebuilds coverage.)
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.harness import sweep
from repro.market.scenario import Scenario

COMPARED_PREFIXES = ("solver.", "influence.dispatch.")


def compared_counters() -> dict:
    return {
        name: value
        for name, value in obs.get_registry().counters.items()
        if name.startswith(COMPARED_PREFIXES)
    }


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        dataset="nyc", n_billboards=40, n_trajectories=250, alpha=0.8, p_avg=0.1, seed=3
    )


class TestParallelMergeEqualsSerial:
    def test_sweep_workers_2_matches_serial_counters(self, scenario):
        kwargs = dict(
            parameter="gamma",
            values=(0.25, 0.75),
            methods=["g-global", "bls"],
            restarts=1,
        )
        obs.enable()
        serial_result = sweep(scenario, **kwargs)
        serial = compared_counters()
        serial_cells = len(
            [e for e in obs.get_registry().events if e["event"] == "solver"]
        )
        obs.reset()

        parallel_result = sweep(scenario, workers=2, **kwargs)
        parallel = compared_counters()
        parallel_cells = len(
            [e for e in obs.get_registry().events if e["event"] == "solver"]
        )

        assert serial  # the comparison is not vacuous
        assert serial["solver.solves"] == 4
        assert parallel == serial
        assert parallel_cells == serial_cells == 4
        for value in serial_result.values:
            for method in ("g-global", "bls"):
                assert (
                    parallel_result.cells[value][method].total_regret
                    == serial_result.cells[value][method].total_regret
                )

    def test_harness_cell_span_counts_match(self, scenario):
        kwargs = dict(parameter="gamma", values=(0.5,), methods=["g-global"], restarts=0)
        obs.enable()
        sweep(scenario, **kwargs)
        serial = obs.get_registry().histograms["span.harness.cell"].count
        obs.reset()
        sweep(scenario, workers=2, **kwargs)
        # One value × one method does fan out (grid size 1); the span name
        # keys the histogram in both paths, so counts line up.
        parallel = obs.get_registry().histograms["span.harness.cell"].count
        assert parallel == serial == 1
