"""Solver telemetry tests: stats["telemetry"], convergence curves, deep copy."""

from __future__ import annotations

import pytest

from repro import obs
from repro.algorithms.base import SolverResult, SolverTelemetry
from repro.algorithms.registry import PAPER_METHODS, make_solver


class TestSolverTelemetryObject:
    def test_sums_numeric_fields(self):
        telemetry = SolverTelemetry()
        telemetry.record(10.0, {"moves_evaluated": 5, "moves_accepted": 1})
        telemetry.record(7.0, {"moves_evaluated": 3, "moves_accepted": 0})
        snapshot = telemetry.as_dict()
        assert snapshot["iterations"] == 2
        assert snapshot["convergence"] == [10.0, 7.0]
        assert snapshot["moves_evaluated"] == 8
        assert snapshot["moves_accepted"] == 1


class TestTelemetryInStats:
    @pytest.mark.parametrize("method", PAPER_METHODS)
    def test_every_method_reports_telemetry(self, method, tiny_instance):
        result = make_solver(method, seed=0, **({"restarts": 1} if method in ("als", "bls") else {})).solve(
            tiny_instance
        )
        telemetry = result.stats["telemetry"]
        assert telemetry["iterations"] == len(telemetry["convergence"]) >= 1
        assert all(isinstance(v, float) for v in telemetry["convergence"])

    @pytest.mark.parametrize("method", ("als", "bls"))
    def test_local_search_curve_non_increasing(self, method, tiny_instance):
        result = make_solver(method, seed=3, restarts=3).solve(tiny_instance)
        curve = result.stats["telemetry"]["convergence"]
        assert len(curve) >= 2  # greedy-start refinement + restarts
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == result.total_regret
        assert result.stats["telemetry"]["moves_evaluated"] >= 0

    @pytest.mark.parametrize("method", ("g-order", "g-global"))
    def test_greedies_report_marginal_gain_evals(self, method, tiny_instance):
        result = make_solver(method).solve(tiny_instance)
        assert result.stats["marginal_gain_evals"] > 0
        # One-shot solvers get the one-point fallback curve: final regret.
        assert result.stats["telemetry"]["convergence"] == [result.total_regret]

    def test_solver_counters_and_event_when_enabled(self, tiny_instance):
        obs.enable()
        make_solver("g-global").solve(tiny_instance)
        assert obs.counter_value("solver.solves") == 1
        assert obs.counter_value("solver.iterations") >= 1
        solver_events = [
            e for e in obs.get_registry().events if e["event"] == "solver"
        ]
        assert len(solver_events) == 1
        assert solver_events[0]["method"] == "G-Global"
        assert solver_events[0]["telemetry"]["convergence"]


class TestSolverResultStats:
    def test_stats_deep_copied_at_construction(self, tiny_instance):
        first = make_solver("g-global").solve(tiny_instance)
        shared = {"telemetry": {"convergence": [1.0]}, "note": "original"}
        result = SolverResult(
            allocation=first.allocation,
            total_regret=first.total_regret,
            breakdown=first.breakdown,
            runtime_s=0.0,
            stats=shared,
        )
        shared["note"] = "mutated"
        shared["telemetry"]["convergence"].append(99.0)
        assert result.stats["note"] == "original"
        assert result.stats["telemetry"]["convergence"] == [1.0]
