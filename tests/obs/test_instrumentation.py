"""Instrumentation-site tests: influence dispatch, cache, grid, bitmap skip."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro import obs
from repro.billboard import coverage_cache
from repro.billboard.influence import CoverageIndex
from repro.datasets import generate_nyc

COVERAGE = [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5], [6]]


def make_index(**kwargs) -> CoverageIndex:
    return CoverageIndex.from_coverage_lists(COVERAGE, num_trajectories=7, **kwargs)


class TestInfluenceDispatch:
    def test_union_query_dispatches_bitmap(self):
        obs.enable()
        index = make_index()
        assert index.influence_of_set([0, 1, 2]) == 6
        assert obs.counter_value("influence.dispatch.bitmap") == 1
        assert obs.counter_value("influence.bitmap.builds") == 1
        rows = obs.get_registry().histograms["influence.popcount.rows"]
        assert rows.count == 1 and rows.max == 3

    def test_id_kernel_dispatches_idarray(self):
        obs.enable()
        index = make_index()
        assert index.influence_of_set_ids([0, 1, 2]) == 6
        assert obs.counter_value("influence.dispatch.idarray") == 1
        assert obs.counter_value("influence.dispatch.bitmap") == 0

    def test_batch_pass_counts_one_dispatch(self):
        obs.enable()
        index = make_index()
        index.batch_add_gains(np.zeros(index.num_trajectories, dtype=np.int64))
        total = obs.counter_value("influence.dispatch.bitmap") + obs.counter_value(
            "influence.dispatch.idarray"
        )
        assert total == 1

    def test_no_bitmap_falls_back_to_idarray(self):
        obs.enable()
        index = make_index(bitmap_budget_mb=0.0)
        assert index.influence_of_set([0, 1, 2]) == 6
        assert obs.counter_value("influence.dispatch.idarray") == 1
        assert obs.counter_value("influence.dispatch.bitmap") == 0


class TestBitmapSkipWarning:
    def test_warns_exactly_once_per_index(self, caplog):
        obs.enable()
        index = make_index(bitmap_budget_mb=1e-9)  # positive but too small
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            assert index.influence_of_set([0]) == 3  # decides + skips
            assert index.influence_of_set([1]) == 2  # already decided
            assert not index.has_bitmap
        warnings = [
            record
            for record in caplog.records
            if "bitmap kernel skipped" in record.getMessage()
        ]
        assert len(warnings) == 1
        assert obs.counter_value("influence.bitmap.skipped") == 1

    def test_silent_when_budget_disables_bitmap(self, caplog):
        obs.enable()
        index = make_index(bitmap_budget_mb=0.0)  # deliberate disable
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            index.influence_of_set([0])
        assert caplog.records == []
        assert obs.counter_value("influence.bitmap.skipped") == 0

    def test_silent_when_bitmap_fits(self, caplog):
        obs.enable()
        index = make_index()
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            assert index.has_bitmap
        assert caplog.records == []


class TestCoverageCacheCounters:
    @pytest.fixture(scope="class")
    def city(self):
        return generate_nyc(n_billboards=20, n_trajectories=120, seed=5)

    def test_miss_then_hit(self, city, tmp_path):
        obs.enable()
        kwargs = dict(lambda_m=100.0, cache_dir=tmp_path)
        cold = coverage_cache.get_or_build(city.billboards, city.trajectories, **kwargs)
        warm = coverage_cache.get_or_build(city.billboards, city.trajectories, **kwargs)
        assert obs.counter_value("coverage_cache.miss") == 1
        assert obs.counter_value("coverage_cache.hit") == 1
        assert warm.to_arrays()[0].tolist() == cold.to_arrays()[0].tolist()
        spans = obs.get_registry().histograms["span.coverage_cache.get_or_build"]
        assert spans.count == 2

    def test_corrupt_entry_counts_and_rebuilds(self, city, tmp_path):
        obs.enable()
        fingerprint = coverage_cache.coverage_fingerprint(
            city.billboards, city.trajectories, 100.0
        )
        path = coverage_cache.cache_path(tmp_path, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        index = coverage_cache.get_or_build(
            city.billboards, city.trajectories, lambda_m=100.0, cache_dir=tmp_path
        )
        assert index.num_billboards == 20
        assert obs.counter_value("coverage_cache.corrupt") == 1
        assert obs.counter_value("coverage_cache.miss") == 1
        # The rebuild replaced the garbage entry: the next lookup hits.
        coverage_cache.get_or_build(
            city.billboards, city.trajectories, lambda_m=100.0, cache_dir=tmp_path
        )
        assert obs.counter_value("coverage_cache.hit") == 1


class TestGridJoinCounters:
    def test_candidate_and_matched_pairs(self):
        obs.enable()
        city = generate_nyc(n_billboards=20, n_trajectories=120, seed=5)
        CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        candidates = obs.counter_value("grid.join.candidate_pairs")
        matched = obs.counter_value("grid.join.matched_pairs")
        assert candidates >= matched > 0
        assert obs.counter_value("coverage.builds") == 1
        assert obs.get_registry().histograms["span.coverage.build"].count == 1
