"""Tests for the generic trajectory generators."""

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.trajectory.generators import (
    random_walk_trajectories,
    trips_between,
    waypoint_trajectories,
)

BOX = BoundingBox(0.0, 0.0, 1_000.0, 1_000.0)


class TestWaypointTrajectories:
    def test_densifies_and_sets_travel_time(self):
        db = waypoint_trajectories(
            [np.array([[0.0, 0.0], [800.0, 0.0]])], sample_spacing=100.0, speed_mps=8.0
        )
        assert len(db) == 1
        trajectory = db[0]
        assert len(trajectory) >= 8
        assert trajectory.travel_time == pytest.approx(100.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError, match="speed"):
            waypoint_trajectories([np.array([[0.0, 0.0], [1.0, 1.0]])], speed_mps=0.0)

    def test_multiple_trips_get_dense_ids(self):
        db = waypoint_trajectories(
            [np.array([[0.0, 0.0], [10.0, 0.0]]), np.array([[5.0, 5.0], [5.0, 50.0]])]
        )
        assert [t.trajectory_id for t in db] == [0, 1]


class TestRandomWalks:
    def test_count_and_bounds(self):
        db = random_walk_trajectories(5, BOX, steps=10, step_length=50.0, seed=3)
        assert len(db) == 5
        points = db.all_points
        assert points[:, 0].min() >= BOX.min_x
        assert points[:, 0].max() <= BOX.max_x
        assert points[:, 1].min() >= BOX.min_y
        assert points[:, 1].max() <= BOX.max_y

    def test_reproducible_by_seed(self):
        a = random_walk_trajectories(3, BOX, seed=9)
        b = random_walk_trajectories(3, BOX, seed=9)
        assert np.array_equal(a.all_points, b.all_points)

    def test_different_seeds_differ(self):
        a = random_walk_trajectories(3, BOX, seed=1)
        b = random_walk_trajectories(3, BOX, seed=2)
        assert not np.array_equal(a.all_points, b.all_points)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="count"):
            random_walk_trajectories(0, BOX)
        with pytest.raises(ValueError, match="steps"):
            random_walk_trajectories(1, BOX, steps=0)

    def test_step_count(self):
        db = random_walk_trajectories(1, BOX, steps=7, seed=5)
        assert len(db[0]) == 8  # start + 7 steps


class TestTripsBetween:
    def test_router_is_applied(self):
        def straight(origin, destination):
            return np.vstack([origin, destination])

        origins = np.array([[0.0, 0.0]])
        destinations = np.array([[300.0, 400.0]])
        db = trips_between(origins, destinations, straight, sample_spacing=50.0, speed_mps=10.0)
        assert db[0].length == pytest.approx(500.0)
        assert db[0].travel_time == pytest.approx(50.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="must match"):
            trips_between(np.zeros((2, 2)), np.zeros((3, 2)), lambda o, d: np.vstack([o, d]))
