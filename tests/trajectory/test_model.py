"""Tests for the trajectory data model (CSR storage, id discipline)."""

import numpy as np
import pytest

from repro.trajectory.model import Trajectory, TrajectoryDB


def make_db() -> TrajectoryDB:
    return TrajectoryDB(
        [
            Trajectory(0, np.array([[0.0, 0.0], [100.0, 0.0]]), travel_time=20.0),
            Trajectory(1, np.array([[5.0, 5.0]]), travel_time=0.0),
            Trajectory(2, np.array([[0.0, 0.0], [0.0, 50.0], [50.0, 50.0]]), travel_time=30.0),
        ]
    )


class TestTrajectory:
    def test_rejects_empty_points(self):
        with pytest.raises(ValueError, match="at least one point"):
            Trajectory(0, np.zeros((0, 2)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            Trajectory(0, np.zeros((3, 3)))

    def test_len_and_length(self):
        trajectory = Trajectory(0, np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert len(trajectory) == 2
        assert trajectory.length == pytest.approx(5.0)

    def test_points_coerced_to_float(self):
        trajectory = Trajectory(0, np.array([[1, 2], [3, 4]]))
        assert trajectory.points.dtype == np.float64


class TestTrajectoryDB:
    def test_rejects_empty_db(self):
        with pytest.raises(ValueError, match="at least one trajectory"):
            TrajectoryDB([])

    def test_rejects_non_dense_ids(self):
        with pytest.raises(ValueError, match="dense"):
            TrajectoryDB([Trajectory(1, np.array([[0.0, 0.0]]))])

    def test_len_and_getitem(self):
        db = make_db()
        assert len(db) == 3
        assert db[1].trajectory_id == 1
        assert len(db[2]) == 3
        assert db[0].travel_time == 20.0

    def test_getitem_out_of_range(self):
        db = make_db()
        with pytest.raises(IndexError):
            db[3]
        with pytest.raises(IndexError):
            db[-1]

    def test_iteration_order(self):
        db = make_db()
        assert [t.trajectory_id for t in db] == [0, 1, 2]

    def test_points_of_is_view(self):
        db = make_db()
        view = db.points_of(2)
        assert view.shape == (3, 2)
        assert view.base is db.all_points or view.base is db.all_points.base

    def test_all_points_concatenation(self):
        db = make_db()
        assert db.all_points.shape == (6, 2)
        assert np.array_equal(db.point_counts, [2, 1, 3])

    def test_travel_times_vector(self):
        db = make_db()
        assert np.allclose(db.travel_times, [20.0, 0.0, 30.0])

    def test_from_point_lists(self):
        db = TrajectoryDB.from_point_lists(
            [np.array([[0.0, 0.0]]), np.array([[1.0, 1.0], [2.0, 2.0]])],
            travel_times=[1.0, 2.0],
        )
        assert len(db) == 2
        assert db[1].travel_time == 2.0

    def test_from_point_lists_default_travel_times(self):
        db = TrajectoryDB.from_point_lists([np.array([[0.0, 0.0]])])
        assert db[0].travel_time == 0.0

    def test_from_point_lists_length_mismatch(self):
        with pytest.raises(ValueError, match="travel times"):
            TrajectoryDB.from_point_lists([np.array([[0.0, 0.0]])], travel_times=[1.0, 2.0])

    def test_bounding_box_covers_all_points(self):
        db = make_db()
        box = db.bounding_box()
        for point in db.all_points:
            assert box.min_x <= point[0] <= box.max_x
            assert box.min_y <= point[1] <= box.max_y
