"""Tests for the Table 5 trajectory statistics."""

import numpy as np
import pytest

from repro.trajectory.model import Trajectory, TrajectoryDB
from repro.trajectory.stats import summarize


def test_summarize_simple_corpus():
    db = TrajectoryDB(
        [
            Trajectory(0, np.array([[0.0, 0.0], [1_000.0, 0.0]]), travel_time=100.0),
            Trajectory(1, np.array([[0.0, 0.0], [3_000.0, 0.0]]), travel_time=300.0),
        ]
    )
    stats = summarize(db)
    assert stats.count == 2
    assert stats.avg_distance_m == pytest.approx(2_000.0)
    assert stats.avg_travel_time_s == pytest.approx(200.0)
    assert stats.avg_points == pytest.approx(2.0)


def test_table5_row_formatting():
    db = TrajectoryDB(
        [Trajectory(0, np.array([[0.0, 0.0], [2_900.0, 0.0]]), travel_time=569.0)]
    )
    row = summarize(db).as_table5_row("NYC", 1462)
    assert "NYC" in row
    assert "|U|=1,462" in row
    assert "2.9km" in row
    assert "569s" in row
