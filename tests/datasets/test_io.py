"""Round-trip tests for city persistence."""

import numpy as np
import pytest

from repro.billboard.influence import CoverageIndex
from repro.datasets.io import iter_trajectory_chunks, load_city, save_city
from repro.datasets.nyc import generate_nyc


def test_round_trip(tmp_path):
    city = generate_nyc(n_billboards=15, n_trajectories=30, seed=2)
    directory = save_city(city, tmp_path / "nyc_small")
    loaded = load_city(directory, name="NYC")

    assert len(loaded.billboards) == len(city.billboards)
    assert len(loaded.trajectories) == len(city.trajectories)
    assert np.allclose(
        loaded.billboards.locations, city.billboards.locations, atol=1e-3
    )
    for trajectory_id in range(len(city.trajectories)):
        assert np.allclose(
            loaded.trajectories.points_of(trajectory_id),
            city.trajectories.points_of(trajectory_id),
            atol=1e-3,
        )
    assert np.allclose(
        loaded.trajectories.travel_times, city.trajectories.travel_times, atol=1e-3
    )


def test_round_trip_preserves_coverage(tmp_path):
    city = generate_nyc(n_billboards=15, n_trajectories=30, seed=4)
    loaded = load_city(save_city(city, tmp_path / "city"))
    original = city.coverage(100.0)
    restored = loaded.coverage(100.0)
    for billboard_id in range(len(city.billboards)):
        assert np.array_equal(
            original.covered_by(billboard_id), restored.covered_by(billboard_id)
        )


def test_default_name_is_directory(tmp_path):
    city = generate_nyc(n_billboards=5, n_trajectories=5, seed=0)
    loaded = load_city(save_city(city, tmp_path / "mytown"))
    assert loaded.name == "mytown"


def test_labels_round_trip(tmp_path):
    from repro.datasets.sg import generate_sg

    city = generate_sg(n_billboards=40, n_trajectories=10, seed=1)
    loaded = load_city(save_city(city, tmp_path / "sg"))
    assert loaded.billboards[0].label == city.billboards[0].label


@pytest.mark.parametrize("chunk_size", [1, 7, 30, 40])
def test_iter_trajectory_chunks_round_trip(tmp_path, chunk_size):
    """Streamed chunks reassemble the saved corpus exactly, and feed the
    streaming coverage build bit-identically to the in-memory load."""
    city = generate_nyc(n_billboards=10, n_trajectories=30, seed=6)
    directory = save_city(city, tmp_path / "streamed")
    loaded = load_city(directory)

    chunks = list(iter_trajectory_chunks(directory, chunk_size))
    assert all(len(counts) <= chunk_size for _, counts in chunks)
    assert np.array_equal(
        np.concatenate([counts for _, counts in chunks]),
        loaded.trajectories.point_counts,
    )
    assert np.allclose(
        np.concatenate([points for points, _ in chunks]),
        loaded.trajectories.all_points,
        atol=1e-3,
    )

    streamed = CoverageIndex.from_trajectory_chunks(
        loaded.billboards, iter_trajectory_chunks(directory, chunk_size)
    )
    single = CoverageIndex(loaded.billboards, loaded.trajectories)
    for billboard_id in range(len(loaded.billboards)):
        assert np.array_equal(
            streamed.covered_by(billboard_id), single.covered_by(billboard_id)
        )


def test_iter_trajectory_chunks_rejects_scrambled_ids(tmp_path):
    city = generate_nyc(n_billboards=5, n_trajectories=5, seed=0)
    directory = save_city(city, tmp_path / "bad_stream")
    trajectory_file = directory / "trajectories.csv"
    lines = trajectory_file.read_text().splitlines()
    header, rows = lines[0], lines[1:]
    trajectory_file.write_text("\n".join([header] + rows[::-1]) + "\n")
    with pytest.raises(ValueError, match="dense"):
        list(iter_trajectory_chunks(directory, 2))


def test_load_rejects_scrambled_ids(tmp_path):
    city = generate_nyc(n_billboards=5, n_trajectories=5, seed=0)
    directory = save_city(city, tmp_path / "bad")
    billboard_file = directory / "billboards.csv"
    lines = billboard_file.read_text().splitlines()
    lines[1], lines[2] = lines[2], lines[1]
    billboard_file.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="dense"):
        load_city(directory)
