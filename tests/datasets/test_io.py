"""Round-trip tests for city persistence."""

import numpy as np
import pytest

from repro.datasets.io import load_city, save_city
from repro.datasets.nyc import generate_nyc


def test_round_trip(tmp_path):
    city = generate_nyc(n_billboards=15, n_trajectories=30, seed=2)
    directory = save_city(city, tmp_path / "nyc_small")
    loaded = load_city(directory, name="NYC")

    assert len(loaded.billboards) == len(city.billboards)
    assert len(loaded.trajectories) == len(city.trajectories)
    assert np.allclose(
        loaded.billboards.locations, city.billboards.locations, atol=1e-3
    )
    for trajectory_id in range(len(city.trajectories)):
        assert np.allclose(
            loaded.trajectories.points_of(trajectory_id),
            city.trajectories.points_of(trajectory_id),
            atol=1e-3,
        )
    assert np.allclose(
        loaded.trajectories.travel_times, city.trajectories.travel_times, atol=1e-3
    )


def test_round_trip_preserves_coverage(tmp_path):
    city = generate_nyc(n_billboards=15, n_trajectories=30, seed=4)
    loaded = load_city(save_city(city, tmp_path / "city"))
    original = city.coverage(100.0)
    restored = loaded.coverage(100.0)
    for billboard_id in range(len(city.billboards)):
        assert np.array_equal(
            original.covered_by(billboard_id), restored.covered_by(billboard_id)
        )


def test_default_name_is_directory(tmp_path):
    city = generate_nyc(n_billboards=5, n_trajectories=5, seed=0)
    loaded = load_city(save_city(city, tmp_path / "mytown"))
    assert loaded.name == "mytown"


def test_labels_round_trip(tmp_path):
    from repro.datasets.sg import generate_sg

    city = generate_sg(n_billboards=40, n_trajectories=10, seed=1)
    loaded = load_city(save_city(city, tmp_path / "sg"))
    assert loaded.billboards[0].label == city.billboards[0].label


def test_load_rejects_scrambled_ids(tmp_path):
    city = generate_nyc(n_billboards=5, n_trajectories=5, seed=0)
    directory = save_city(city, tmp_path / "bad")
    billboard_file = directory / "billboards.csv"
    lines = billboard_file.read_text().splitlines()
    lines[1], lines[2] = lines[2], lines[1]
    billboard_file.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="dense"):
        load_city(directory)
